//! §VI-B / §VII reproduction: three-coloring scales because it is locally
//! correctable — no SCC ever forms outside `I`, so synthesis reaches 40
//! processes (3⁴⁰ ≈ 1.2 · 10¹⁹ states) on a desktop.
//!
//! ```text
//! cargo run --release --example coloring_scale [max_k]
//! ```

use stsyn_repro::cases::coloring;
use stsyn_repro::synth::analysis::{local_correctability, LocalCorrectability};
use stsyn_repro::synth::{AddConvergence, Options};

fn main() {
    let max_k: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(40);

    // The structural reason it scales (checked on a small instance).
    let (p5, i5) = coloring(5);
    assert_eq!(local_correctability(&p5, &i5), LocalCorrectability::Yes);
    println!("coloring is locally correctable — expecting zero SCCs during synthesis\n");
    println!(
        "{:>4} {:>14} {:>12} {:>12} {:>8} {:>10}",
        "K", "states", "total", "scc time", "SCCs", "verified"
    );

    let mut k = 5;
    while k <= max_k {
        let (p, i) = coloring(k);
        let states = format!("3^{k}");
        let problem = AddConvergence::new(p, i).unwrap();
        let mut outcome = problem.synthesize(&Options::default()).unwrap();
        let verified = outcome.verify_strong();
        println!(
            "{:>4} {:>14} {:>12.3?} {:>12.3?} {:>8} {:>10}",
            k,
            states,
            outcome.stats.total_time,
            outcome.stats.scc_time,
            outcome.stats.sccs_found,
            verified,
        );
        k += 5;
    }

    // Show the synthesized actions for a small ring: each process picks a
    // color different from both neighbours (the paper's `other(...)`
    // presented as explicit per-color guarded commands).
    let (p, i) = coloring(5);
    let problem = AddConvergence::new(p, i).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    println!("\nsynthesized recovery for K = 5, process P2:");
    for line in outcome.describe_recovery().lines() {
        if line.starts_with("R2") {
            println!("  {line}");
        }
    }
}
