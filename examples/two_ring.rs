//! §VI-C reproduction: add convergence to the Two-Ring Token Ring (TR²) —
//! the paper's demonstration that the method handles richer topologies
//! than a single ring.
//!
//! ```text
//! cargo run --release --example two_ring [ring_size] [domain]
//! ```

use stsyn_repro::cases::two_ring;
use stsyn_repro::synth::{AddConvergence, Options};

fn main() {
    let r: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let d: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);

    let (p, i) = two_ring(r, d);
    println!(
        "TR²: {} processes on two coupled rings, |D| = {d}, |S| = {} states",
        2 * r,
        p.space().size()
    );
    let problem = AddConvergence::new(p, i).unwrap();
    let mut outcome = problem.synthesize(&Options::default()).expect("synthesis succeeds");
    println!("  schedule       : {}", outcome.schedule);
    println!("  total time     : {:.2?}", outcome.stats.total_time);
    println!(
        "  SCC time       : {:.2?} ({} SCCs)",
        outcome.stats.scc_time, outcome.stats.sccs_found
    );
    println!("  groups added   : {}", outcome.stats.groups_added);
    println!("  finished pass  : {}", outcome.stats.finished_in_pass);
    println!("  verified       : {}", outcome.verify_strong());

    // A short fault-recovery demo: perturb a legitimate state, then run
    // the synthesized protocol until it re-stabilizes.
    let pss = outcome.extract_protocol();
    let mut s: Vec<u32> = vec![0; 2 * r + 1];
    s[2 * r] = 1; // turn = A; all counters zero — legitimate.
    s[1] = (d - 1) % d; // transient fault corrupts a1
    s[r + 1] = 1 % d; // …and b1
    println!("\nfaulty start state: {s:?}");
    let mut steps = 0;
    let i_expr = two_ring(r, d).1;
    while !i_expr.holds(&s) {
        let succs = pss.successors(&s);
        assert!(!succs.is_empty(), "synthesized protocol cannot deadlock outside I");
        s = succs.into_iter().next().unwrap();
        steps += 1;
        assert!(steps < 10_000, "must converge");
    }
    println!("recovered to a legitimate state in {steps} steps: {s:?}");
}
