//! Fault injection: hammer a synthesized protocol with transient faults
//! and watch it recover — the operational face of self-stabilization the
//! paper's introduction motivates (soft errors, loss of coordination, bad
//! initialization).
//!
//! ```text
//! cargo run --release --example fault_injection [trials]
//! ```

use stsyn_repro::cases::{coloring, token_ring};
use stsyn_repro::protocol::sim::Simulator;
use stsyn_repro::synth::{AddConvergence, Options};

fn main() {
    let trials: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(500);

    // Token ring: synthesize, then batter it.
    let (p, s1) = token_ring(4, 3);
    let problem = AddConvergence::new(p, s1.clone()).unwrap();
    let outcome = problem.synthesize(&Options::default()).unwrap();
    let pss = outcome.extract_protocol();
    let mut sim = Simulator::new(&pss, 0xD13Cu64);
    let stats = sim.convergence_experiment(&s1, trials, 2_000);
    println!("synthesized token ring (4 processes, |D| = 3):");
    println!(
        "  {}/{} random starts converged; mean {:.1} steps, worst {}",
        stats.converged, stats.trials, stats.mean_steps, stats.max_steps
    );

    // Perturb-and-recover: single-variable faults from a legitimate state.
    let mut worst = 0usize;
    let mut total = 0usize;
    for _ in 0..trials {
        let steps = sim
            .fault_recovery(vec![1, 1, 1, 1], &s1, 1, 2_000)
            .expect("verified protocol must recover");
        worst = worst.max(steps);
        total += steps;
    }
    println!(
        "  single-variable faults: mean {:.1} steps to recover, worst {}",
        total as f64 / trials as f64,
        worst
    );

    // Coloring: recovery is local, so recovery times stay flat as the
    // ring grows.
    println!("\nsynthesized coloring rings (random starts, {trials} trials each):");
    for k in [4usize, 6, 8] {
        let (p, ic) = coloring(k);
        let problem = AddConvergence::new(p, ic.clone()).unwrap();
        let outcome = problem.synthesize(&Options::default()).unwrap();
        let pss = outcome.extract_protocol();
        let mut sim = Simulator::new(&pss, k as u64);
        let stats = sim.convergence_experiment(&ic, trials, 5_000);
        println!(
            "  K = {k}: {}/{} converged; mean {:.1} steps, worst {}",
            stats.converged, stats.trials, stats.mean_steps, stats.max_steps
        );
    }
}
