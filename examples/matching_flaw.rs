//! §VI-A reproduction: synthesize maximal matching on a 5-ring, then
//! expose the non-progress cycle in the *manually designed* protocol of
//! Gouda & Acharya that the paper's tool discovered.
//!
//! ```text
//! cargo run --release --example matching_flaw
//! ```

use stsyn_repro::cases::{gouda_acharya_matching, matching, MATCH_LEFT, MATCH_SELF};
use stsyn_repro::protocol::explicit::{predicate_states, ExplicitGraph};
use stsyn_repro::synth::{AddConvergence, Options};

fn name(v: u32) -> &'static str {
    ["left", "right", "self"][v as usize]
}

fn main() {
    // 1. Automatic synthesis from the *empty* protocol.
    let (p, i_mm) = matching(5);
    println!("synthesizing maximal matching, K = 5 (|S| = {} states)…", p.space().size());
    let problem = AddConvergence::new(p, i_mm).unwrap();
    let mut outcome = problem.synthesize(&Options::default()).unwrap();
    let verified = outcome.verify_strong();
    println!(
        "  done in {:.2?} (pass {}, {} groups, {} SCCs resolved), verified: {}",
        outcome.stats.total_time,
        outcome.stats.finished_in_pass,
        outcome.stats.groups_added,
        outcome.stats.sccs_found,
        verified,
    );
    println!("\nsynthesized actions of P0 (asymmetric, unlike the manual design):");
    for line in outcome.describe_recovery().lines() {
        if line.starts_with("R0") {
            println!("  {line}");
        }
    }

    // 2. The flaw in the manual design.
    let (ga, i_mm) = gouda_acharya_matching(5);
    let i_set = predicate_states(&ga, &i_mm);
    let not_i = i_set.complement();
    let graph = ExplicitGraph::of_protocol(&ga);
    let restricted = graph.restrict(&not_i);
    let cycle = restricted.find_cycle().expect("the published flaw");
    println!(
        "\nGouda–Acharya manual protocol: found a non-progress cycle of length {} outside I_MM:",
        cycle.len()
    );
    for sid in &cycle {
        let s = ga.space().decode(*sid);
        let pretty: Vec<&str> = s.iter().map(|&v| name(v)).collect();
        println!("  ⟨{}⟩", pretty.join(", "));
    }
    let witness =
        ga.space().encode(&vec![MATCH_LEFT, MATCH_SELF, MATCH_LEFT, MATCH_SELF, MATCH_LEFT]);
    let cyc = restricted.cyclic_states();
    println!(
        "\npaper's witness ⟨left,self,left,self,left⟩ lies on a ¬I cycle: {}",
        cyc.contains(witness)
    );
}
