//! Dynamic variable reordering in action: build the token-ring transition
//! relation under a deliberately bad (blocked) variable order, then let
//! Rudell's sifting recover the compact order automatically — the remedy
//! for the "BDDs not effectively optimized" irregularities §VII of the
//! paper reports.
//!
//! ```text
//! cargo run --release --example reordering
//! ```

use std::time::Instant;
use stsyn_repro::cases::dijkstra_token_ring;
use stsyn_repro::symbolic::{SymbolicContext, VarOrder};

fn main() {
    println!(
        "{:<10} {:<13} {:>14} {:>12} {:>10}",
        "instance", "order", "relation size", "after sift", "time"
    );
    for (n, d) in [(4usize, 3u32), (5, 4), (6, 4)] {
        for order in [VarOrder::Interleaved, VarOrder::Blocked] {
            let (p, _) = dijkstra_token_ring(n, d);
            let mut ctx = SymbolicContext::with_order(p, order);
            let t = ctx.protocol_relation();
            let before = ctx.mgr_ref().node_count(t);
            let start = Instant::now();
            let (_, after) = ctx.mgr().sift(&[t]);
            println!(
                "{:<10} {:<13} {:>14} {:>12} {:>10.1?}",
                format!("TR({n},{d})"),
                format!("{order:?}"),
                before,
                after,
                start.elapsed()
            );
        }
    }
    println!(
        "\nsifting recovers the interleaved order's compactness from the blocked\n\
         layout without any knowledge of the protocol structure — handles stay\n\
         valid, functions are preserved (property-tested), and only interned\n\
         varsets/rename maps must be re-created afterwards."
    );
}
