//! Theorem IV.1 in action: `ComputeRanks` is a sound **and complete**
//! decision procedure for weak stabilization. This example contrasts the
//! weak and strong synthesis paths on the token ring, and shows the
//! completeness side on an impossible instance.
//!
//! ```text
//! cargo run --release --example weak_stabilization
//! ```

use stsyn_repro::cases::token_ring;
use stsyn_repro::protocol::topology::{ProcessDecl, VarDecl, VarIdx};
use stsyn_repro::protocol::{Expr, Protocol};
use stsyn_repro::synth::{AddConvergence, Options, SynthesisError};

fn main() {
    // Weak synthesis: the maximal candidate protocol p_im is itself a
    // weakly stabilizing version whenever no state has rank ∞.
    let (p, s1) = token_ring(4, 3);
    let problem = AddConvergence::new(p, s1).unwrap();
    let mut weak = problem.synthesize_weak().unwrap();
    let weak_ok = weak.verify_weak();
    let weak_strong = weak.verify_strong();
    println!("token ring (4 processes, |D| = 3):");
    println!(
        "  weak version  : {} candidate groups, verified weak: {}",
        weak.stats.candidates, weak_ok
    );
    println!("  …but strong?  : {}", weak_strong);

    let mut strong = problem.synthesize(&Options::default()).unwrap();
    let strong_ok = strong.verify_strong();
    println!(
        "  strong version: {} groups added, verified strong: {}",
        strong.stats.groups_added, strong_ok
    );

    // Completeness: pin a variable no process can write. Theorem IV.1
    // rejects the instance — *no* stabilizing version exists, so the tool
    // proves a negative rather than timing out.
    let vars = vec![VarDecl::new("x", 2), VarDecl::new("frozen", 2)];
    let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap()];
    let p = Protocol::new(vars, procs, vec![]).unwrap();
    let i = Expr::var(VarIdx(1)).eq(Expr::int(0)).and(Expr::var(VarIdx(0)).eq(Expr::int(0)));
    let problem = AddConvergence::new(p, i).unwrap();
    match problem.synthesize_weak() {
        Err(SynthesisError::NoStabilizingVersion { unreachable_states }) => {
            println!("\nimpossible instance correctly rejected:");
            println!("  {unreachable_states} states can never reach I (rank ∞) — Theorem IV.1");
        }
        other => panic!("expected NoStabilizingVersion, got {:?}", other.map(|_| "success")),
    }
}
