//! Quickstart: add convergence to the paper's running example — the
//! 4-process token ring — and print the synthesized recovery.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stsyn_repro::cases::token_ring;
use stsyn_repro::synth::{AddConvergence, Options};

fn main() {
    // The non-stabilizing token ring of §II: 4 processes, domain {0,1,2},
    // legitimate states S1 (exactly one token, in step form).
    let (protocol, s1) = token_ring(4, 3);
    println!(
        "input: token ring, |S| = {} states, {} actions",
        protocol.space().size(),
        protocol.actions().len()
    );

    let problem = AddConvergence::new(protocol, s1).expect("well-typed invariant");
    let mut outcome = problem.synthesize(&Options::default()).expect("synthesis succeeds");

    println!("schedule      : {}", outcome.schedule);
    println!("finished pass : {}", outcome.stats.finished_in_pass);
    println!("groups added  : {}", outcome.stats.groups_added);
    println!("verified      : {}", outcome.verify_strong());
    println!("\nsynthesized recovery actions:");
    print!("{}", outcome.describe_recovery());
    println!("\n(the union with the input actions is exactly Dijkstra's 1974 protocol)");
}
