//! Maximal Matching (MM) on a bidirectional ring (§VI-A), after Gouda &
//! Acharya (2009).
//!
//! `K` processes in a ring; each `P_i` owns `m_i ∈ {left, right, self}`
//! and reads both neighbours' variables. Neighbours are *matched* when
//! they point at each other. The legitimate states are
//!
//! ```text
//! I_MM = ∀i: (m_i = left  ⇒ m_{i-1} = right) ∧
//!            (m_i = right ⇒ m_{i+1} = left)  ∧
//!            (m_i = self  ⇒ m_{i-1} = left ∧ m_{i+1} = right)
//! ```
//!
//! The non-stabilizing input protocol is **empty** — synthesis must invent
//! all behaviour. The module also builds the manually designed protocol of
//! Gouda & Acharya, whose non-progress cycle (from
//! `⟨left, self, left, self, left⟩` under the schedule `(P0 … P4)²`) the
//! paper's tool exposed; the integration tests reproduce that flaw.

use stsyn_protocol::action::Action;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
use stsyn_protocol::Protocol;

/// Encoded value of `left`.
pub const MATCH_LEFT: u32 = 0;
/// Encoded value of `right`.
pub const MATCH_RIGHT: u32 = 1;
/// Encoded value of `self`.
pub const MATCH_SELF: u32 = 2;

fn ring_topology(k: usize) -> (Vec<VarDecl>, Vec<ProcessDecl>) {
    assert!(k >= 3, "matching ring needs at least three processes");
    let vars: Vec<VarDecl> =
        (0..k).map(|i| VarDecl::with_names(format!("m{i}"), &["left", "right", "self"])).collect();
    let procs: Vec<ProcessDecl> = (0..k)
        .map(|i| {
            let left = (i + k - 1) % k;
            let right = (i + 1) % k;
            ProcessDecl::new(
                format!("P{i}"),
                vec![VarIdx(left), VarIdx(i), VarIdx(right)],
                vec![VarIdx(i)],
            )
            .unwrap()
        })
        .collect();
    (vars, procs)
}

/// The local conjunct `LC_i` of `I_MM`.
pub fn local_conjunct(k: usize, i: usize) -> Expr {
    let m = |j: usize| Expr::var(VarIdx(j % k));
    let left = (i + k - 1) % k;
    let right = (i + 1) % k;
    let lit = |v: u32| Expr::int(v as i64);
    Expr::conj(vec![
        m(i).eq(lit(MATCH_LEFT)).implies(m(left).eq(lit(MATCH_RIGHT))),
        m(i).eq(lit(MATCH_RIGHT)).implies(m(right).eq(lit(MATCH_LEFT))),
        m(i).eq(lit(MATCH_SELF))
            .implies(m(left).eq(lit(MATCH_LEFT)).and(m(right).eq(lit(MATCH_RIGHT)))),
    ])
}

/// `I_MM` for a `k`-ring.
pub fn legitimate(k: usize) -> Expr {
    Expr::conj((0..k).map(|i| local_conjunct(k, i)).collect())
}

/// The **empty** non-stabilizing matching instance: `(protocol, I_MM)`.
pub fn matching(k: usize) -> (Protocol, Expr) {
    let (vars, procs) = ring_topology(k);
    let p = Protocol::new(vars, procs, vec![]).unwrap();
    (p, legitimate(k))
}

/// The manually designed protocol from Gouda & Acharya (2009), §VI-A:
///
/// ```text
/// m_i = left  ∧ m_{i-1} = left   → m_i := self
/// m_i = right ∧ m_{i+1} = right  → m_i := self
/// m_i = self  ∧ m_{i-1} = left   → m_i := left
/// m_i = self  ∧ m_{i+1} = right  → m_i := right
/// ```
///
/// The paper found this protocol **flawed**: it has a non-progress cycle
/// outside `I_MM`.
pub fn gouda_acharya_matching(k: usize) -> (Protocol, Expr) {
    let (vars, procs) = ring_topology(k);
    let m = |j: usize| Expr::var(VarIdx(j % k));
    let lit = |v: u32| Expr::int(v as i64);
    let mut actions = Vec::new();
    for i in 0..k {
        let left = (i + k - 1) % k;
        let right = (i + 1) % k;
        actions.push(Action::labeled(
            format!("G{i}a"),
            ProcIdx(i),
            m(i).eq(lit(MATCH_LEFT)).and(m(left).eq(lit(MATCH_LEFT))),
            vec![(VarIdx(i), lit(MATCH_SELF))],
        ));
        actions.push(Action::labeled(
            format!("G{i}b"),
            ProcIdx(i),
            m(i).eq(lit(MATCH_RIGHT)).and(m(right).eq(lit(MATCH_RIGHT))),
            vec![(VarIdx(i), lit(MATCH_SELF))],
        ));
        actions.push(Action::labeled(
            format!("G{i}c"),
            ProcIdx(i),
            m(i).eq(lit(MATCH_SELF)).and(m(left).eq(lit(MATCH_LEFT))),
            vec![(VarIdx(i), lit(MATCH_LEFT))],
        ));
        actions.push(Action::labeled(
            format!("G{i}d"),
            ProcIdx(i),
            m(i).eq(lit(MATCH_SELF)).and(m(right).eq(lit(MATCH_RIGHT))),
            vec![(VarIdx(i), lit(MATCH_RIGHT))],
        ));
    }
    let p = Protocol::new(vars, procs, actions).unwrap();
    (p, legitimate(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::explicit::{predicate_states, ExplicitGraph};

    #[test]
    fn legitimate_states_exist_and_are_maximal_matchings() {
        let (p, i) = matching(5);
        let set = predicate_states(&p, &i);
        assert!(set.count() > 0);
        // Spot-check: alternate right/left pairs with one self.
        // m = (right, left, right, left, self): P0–P1 matched, P2–P3
        // matched, P4 points to itself with m3 = left… LC_4 requires
        // m3 = left ✓ and m0 = right ✓.
        let s = vec![MATCH_RIGHT, MATCH_LEFT, MATCH_RIGHT, MATCH_LEFT, MATCH_SELF];
        assert!(i.holds(&s));
        // All-self is illegitimate (self needs left/right neighbours
        // pointing away).
        let all_self = vec![MATCH_SELF; 5];
        assert!(!i.holds(&all_self));
    }

    #[test]
    fn empty_input_protocol() {
        let (p, _) = matching(5);
        assert!(p.actions().is_empty());
        assert_eq!(p.space().size(), 243);
    }

    #[test]
    fn gouda_acharya_cycle_exists() {
        // The paper's discovery (§VI-A): the manually designed protocol
        // has a non-progress cycle outside I_MM passing through
        // ⟨left, self, left, self, left⟩. Our model checker confirms that
        // state lies on a cycle of δ|¬I.
        let (p, i) = gouda_acharya_matching(5);
        let space = p.space();
        let start = vec![MATCH_LEFT, MATCH_SELF, MATCH_LEFT, MATCH_SELF, MATCH_LEFT];
        assert!(!i.holds(&start));
        let i_set = predicate_states(&p, &i);
        let not_i = i_set.complement();
        let graph = ExplicitGraph::of_protocol(&p);
        let restricted = graph.restrict(&not_i);
        let cyc = restricted.cyclic_states();
        assert!(
            cyc.contains(space.encode(&start)),
            "paper's cycle witness state must lie on a ¬I cycle"
        );
        // The flawed protocol is therefore not strongly stabilizing.
        assert!(restricted.find_cycle().is_some());
    }

    #[test]
    fn gouda_acharya_protocol_is_flawed_beyond_the_cycle() {
        // Reproducing the paper's verbatim action list, our checker finds
        // the flaw runs deeper than the reported non-progress cycle: the
        // actions can even leave I_MM (e.g. `m_i = self ∧ m_{i-1} = left →
        // m_i := left` fires in the legitimate state ⟨self,right,left,
        // right,left⟩ and breaks LC_0). Recorded as an observation in
        // EXPERIMENTS.md.
        let (p, i) = gouda_acharya_matching(5);
        assert!(!stsyn_protocol::explicit::is_closed(&p, &i));
        let s = vec![MATCH_SELF, MATCH_RIGHT, MATCH_LEFT, MATCH_RIGHT, MATCH_LEFT];
        assert!(i.holds(&s));
        let succs = p.successors(&s);
        assert!(succs.iter().any(|t| !i.holds(t)), "an action escapes I from {s:?}");
    }

    #[test]
    fn local_conjuncts_compose_to_invariant() {
        let (p, i) = matching(5);
        for s in p.space().states() {
            let all_local = (0..5).all(|j| local_conjunct(5, j).holds(&s));
            assert_eq!(all_local, i.holds(&s));
        }
    }
}
