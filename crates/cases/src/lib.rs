//! # stsyn-cases — the paper's case-study protocols
//!
//! Parametric builders for every protocol in §II and §VI:
//!
//! * [`token_ring`] — Dijkstra-style token ring, *non-stabilizing* input
//!   (the paper's running example, §II), plus the published manually
//!   designed stabilizing version [`dijkstra_token_ring`] for comparison.
//! * [`matching`] — maximal matching on a bidirectional ring (§VI-A); the
//!   non-stabilizing input is empty. [`gouda_acharya_matching`] builds the
//!   *manually designed* protocol from Gouda & Acharya (2009) in which the
//!   paper discovered a non-progress cycle.
//! * [`coloring`] — three-coloring of a ring (§VI-B); empty input.
//! * [`two_ring`] — the Two-Ring Token Ring TR² (§VI-C): two token rings
//!   coupled through their zero-processes and a `turn` variable.
//! * [`mis`] — maximal independent set on a ring: an *additional*
//!   non-locally-correctable workload beyond the paper's four, showing the
//!   method generalizes.
//!
//! Every builder returns `(protocol, legitimate-state predicate)` ready to
//! feed `stsyn_core::AddConvergence`.

#![warn(missing_docs)]

pub mod coloring;
pub mod matching;
pub mod mis;
pub mod token_ring;
pub mod two_ring;

pub use coloring::coloring;
pub use matching::{gouda_acharya_matching, matching, MATCH_LEFT, MATCH_RIGHT, MATCH_SELF};
pub use mis::mis;
pub use token_ring::{dijkstra_token_ring, token_ring};
pub use two_ring::two_ring;
