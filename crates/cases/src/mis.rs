//! Maximal Independent Set (MIS) on a ring — an additional demonstration
//! beyond the paper's four case studies.
//!
//! Each process owns a bit `x_i` (in/out of the set), reads both
//! neighbours, writes its own bit. Legitimate states are the maximal
//! independent sets:
//!
//! ```text
//! I_MIS = ∀i: (x_i = 1 ⇒ x_{i-1} = 0 ∧ x_{i+1} = 0)      (independence)
//!           ∧ (x_i = 0 ⇒ x_{i-1} = 1 ∨ x_{i+1} = 1)      (maximality)
//! ```
//!
//! Like matching, the maximality conjunct couples neighbours (a node may
//! only leave the set if a neighbour covers it), so local repairs
//! interfere and the synthesizer must do real cycle resolution — a good
//! stress test that the method generalizes past the paper's benchmarks.

use stsyn_protocol::expr::Expr;
use stsyn_protocol::topology::{ProcessDecl, VarDecl, VarIdx};
use stsyn_protocol::Protocol;

/// The local conjunct of `I_MIS` for process `i`.
pub fn local_conjunct(k: usize, i: usize) -> Expr {
    let x = |j: usize| Expr::var(VarIdx(j % k));
    let left = (i + k - 1) % k;
    let right = (i + 1) % k;
    let independent =
        x(i).eq(Expr::int(1)).implies(x(left).eq(Expr::int(0)).and(x(right).eq(Expr::int(0))));
    let maximal =
        x(i).eq(Expr::int(0)).implies(x(left).eq(Expr::int(1)).or(x(right).eq(Expr::int(1))));
    independent.and(maximal)
}

/// `I_MIS` for a `k`-ring.
pub fn legitimate(k: usize) -> Expr {
    Expr::conj((0..k).map(|i| local_conjunct(k, i)).collect())
}

/// The empty non-stabilizing MIS instance: `(protocol, I_MIS)`.
pub fn mis(k: usize) -> (Protocol, Expr) {
    assert!(k >= 3, "MIS ring needs at least three processes");
    let vars: Vec<VarDecl> = (0..k).map(|i| VarDecl::new(format!("x{i}"), 2)).collect();
    let procs: Vec<ProcessDecl> = (0..k)
        .map(|i| {
            let left = (i + k - 1) % k;
            let right = (i + 1) % k;
            ProcessDecl::new(
                format!("P{i}"),
                vec![VarIdx(left), VarIdx(i), VarIdx(right)],
                vec![VarIdx(i)],
            )
            .unwrap()
        })
        .collect();
    let p = Protocol::new(vars, procs, vec![]).unwrap();
    (p, legitimate(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::explicit::predicate_states;

    #[test]
    fn legitimate_states_are_maximal_independent_sets() {
        for k in [3usize, 4, 5, 6, 7] {
            let (p, i) = mis(k);
            let set = predicate_states(&p, &i);
            assert!(set.count() > 0, "k = {k}: no MIS states");
            for sid in set.iter() {
                let s = p.space().decode(sid);
                // Independence: no two adjacent 1s.
                for j in 0..k {
                    if s[j] == 1 {
                        assert_eq!(s[(j + 1) % k], 0, "k={k} state {s:?}");
                    }
                }
                // Maximality: every 0 has a 1-neighbour.
                for j in 0..k {
                    if s[j] == 0 {
                        assert!(
                            s[(j + 1) % k] == 1 || s[(j + k - 1) % k] == 1,
                            "k={k} state {s:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn known_examples() {
        let (_, i) = mis(5);
        assert!(i.holds(&vec![1, 0, 1, 0, 0]));
        assert!(!i.holds(&vec![1, 1, 0, 0, 0])); // adjacent members
        assert!(!i.holds(&vec![1, 0, 0, 0, 0])); // not maximal
        assert!(!i.holds(&vec![0, 0, 0, 0, 0])); // empty set, not maximal
    }

    #[test]
    fn mis_count_matches_lucas_like_recurrence() {
        // Number of maximal independent sets of a cycle C_k satisfies the
        // known recurrence m(k) = m(k-2) + m(k-3) with m(3)=3, m(4)=2,
        // m(5)=5 (OEIS A001608, the Perrin sequence).
        let mut expected = std::collections::HashMap::new();
        expected.insert(3usize, 3usize);
        expected.insert(4, 2);
        expected.insert(5, 5);
        expected.insert(6, 5);
        expected.insert(7, 7);
        expected.insert(8, 10);
        for (k, count) in expected {
            let (p, i) = mis(k);
            assert_eq!(predicate_states(&p, &i).count(), count, "k = {k}");
        }
    }
}
