//! Three-Coloring (TC) of a ring (§VI-B), adapted from Gouda & Acharya.
//!
//! `K` processes in a ring, each owning a color `c_i` with three values;
//! `P_i` reads `c_{i-1}, c_i, c_{i+1}` and writes `c_i`. The
//! non-stabilizing input is empty; the target predicate is proper
//! coloring:
//!
//! ```text
//! I_coloring = ∀i: c_{i-1} ≠ c_i
//! ```
//!
//! This is the paper's *locally correctable* case study — each process can
//! establish its own conjunct by picking a color different from both
//! neighbours without disturbing them — and consequently its most scalable
//! one (synthesized up to 40 processes / 3⁴⁰ states).

use stsyn_protocol::expr::Expr;
use stsyn_protocol::topology::{ProcessDecl, VarDecl, VarIdx};
use stsyn_protocol::Protocol;

/// `I_coloring` for a `k`-ring.
pub fn legitimate(k: usize) -> Expr {
    Expr::conj(
        (0..k)
            .map(|i| {
                let prev = (i + k - 1) % k;
                Expr::var(VarIdx(prev)).ne(Expr::var(VarIdx(i)))
            })
            .collect(),
    )
}

/// The empty non-stabilizing coloring instance: `(protocol, I_coloring)`.
pub fn coloring(k: usize) -> (Protocol, Expr) {
    assert!(k >= 3, "coloring ring needs at least three processes");
    let vars: Vec<VarDecl> = (0..k).map(|i| VarDecl::new(format!("c{i}"), 3)).collect();
    let procs: Vec<ProcessDecl> = (0..k)
        .map(|i| {
            let left = (i + k - 1) % k;
            let right = (i + 1) % k;
            ProcessDecl::new(
                format!("P{i}"),
                vec![VarIdx(left), VarIdx(i), VarIdx(right)],
                vec![VarIdx(i)],
            )
            .unwrap()
        })
        .collect();
    let p = Protocol::new(vars, procs, vec![]).unwrap();
    (p, legitimate(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::explicit::predicate_states;

    #[test]
    fn proper_colorings_counted() {
        // Number of proper 3-colorings of a cycle C_k is (3-1)^k + (-1)^k (3-1)
        // = 2^k + 2·(-1)^k.
        for k in [3usize, 4, 5, 6] {
            let (p, i) = coloring(k);
            let set = predicate_states(&p, &i);
            let expect = (1i64 << k) + if k % 2 == 0 { 2 } else { -2 };
            assert_eq!(set.count() as i64, expect, "k = {k}");
        }
    }

    #[test]
    fn reads_cover_both_neighbours() {
        let (p, _) = coloring(5);
        let proc = &p.processes()[2];
        assert_eq!(proc.reads, vec![VarIdx(1), VarIdx(2), VarIdx(3)]);
        assert_eq!(proc.writes, vec![VarIdx(2)]);
        // Ring wrap-around.
        let p0 = &p.processes()[0];
        assert_eq!(p0.reads, vec![VarIdx(0), VarIdx(1), VarIdx(4)]);
    }

    #[test]
    fn legitimate_examples() {
        let (_, i) = coloring(4);
        assert!(i.holds(&vec![0, 1, 0, 1]));
        assert!(!i.holds(&vec![0, 0, 1, 2]));
        assert!(!i.holds(&vec![0, 1, 2, 0])); // c3 == c0 wraps around
    }
}
