//! Two-Ring Token Ring (TR², §VI-C).
//!
//! Eight processes on two coupled rings A and B (four each), every
//! `PA_i`/`PB_i` owning `a_i`/`b_i` with domain `0..d` (the paper uses
//! `d = 4`), plus a boolean `turn` arbitrating which ring's zero-process
//! may inject. Token conditions follow the paper:
//!
//! * `PA_i` (i ≥ 1) has the token iff `a_{i-1} = a_i ⊕ 1`;
//! * `PA_0` has the token iff `a_0 = a_3 ∧ b_0 = b_3 ∧ a_0 = b_0` (and
//!   `turn = A`);
//! * `PB_0` has the token iff `b_0 = b_3 ∧ a_0 = a_3 ∧ b_0 ⊕ 1 = a_0`
//!   (and `turn = B`);
//! * `PB_i` (i ≥ 1) has the token iff `b_{i-1} = b_i ⊕ 1`.
//!
//! Fault-free behaviour: the token circulates ring A, `PA_0` injects a new
//! value and hands `turn` to ring B, whose circulation completes before
//! `PB_0` catches up and hands `turn` back — at most one token exists in
//! both rings. The paper omits the full action list for space; this
//! reconstruction preserves the token conditions and the `turn` policy and
//! is validated closed + non-stabilizing by the tests, exactly like the
//! other inputs.
//!
//! Variable layout: `a0..a(r-1)` then `b0..b(r-1)` then `turn`
//! (`turn = 1` means ring A's injector may fire).

use stsyn_protocol::action::Action;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
use stsyn_protocol::Protocol;

/// Does process `proc` (0..2r, ring A first) hold a token? Used by the
/// invariant definition, the tests and the benchmark harness.
pub fn token(r: usize, d: u32, proc: usize) -> Expr {
    let a = |i: usize| Expr::var(VarIdx(i));
    let b = |i: usize| Expr::var(VarIdx(r + i));
    let turn = Expr::var(VarIdx(2 * r));
    let md = |e: Expr| e.modulo(Expr::int(d as i64));
    if proc == 0 {
        // PA_0
        a(0).eq(a(r - 1)).and(b(0).eq(b(r - 1))).and(a(0).eq(b(0))).and(turn.eq(Expr::int(1)))
    } else if proc < r {
        // PA_i, i ≥ 1: a_{i-1} = a_i ⊕ 1
        let i = proc;
        md(a(i).add(Expr::int(1))).eq(a(i - 1))
    } else if proc == r {
        // PB_0
        b(0).eq(b(r - 1))
            .and(a(0).eq(a(r - 1)))
            .and(md(b(0).add(Expr::int(1))).eq(a(0)))
            .and(turn.eq(Expr::int(0)))
    } else {
        // PB_i, i ≥ 1
        let i = proc - r;
        md(b(i).add(Expr::int(1))).eq(b(i - 1))
    }
}

/// `I_TR²`: the legitimate *phase configurations* of the coupled rings —
/// each a step (or uniform) configuration per ring with the `turn` and the
/// inter-ring value coupling consistent. Four phases:
///
/// 1. both rings uniform, `a0 = b0`, `turn = A` — `PA_0` injects next;
/// 2. ring A stepped at `j`, ring B uniform with `b0 = a_{r−1}`,
///    `turn = B` — the token circulates ring A as `PA_j`;
/// 3. both rings uniform, `b0 ⊕ 1 = a0`, `turn = B` — `PB_0` injects next;
/// 4. ring A uniform, ring B stepped at `j` with `a0 = b0`, `turn = A` —
///    the token circulates ring B.
///
/// Every such state holds exactly one token (checked in the tests), and
/// the set is closed under the protocol.
pub fn legitimate(r: usize, d: u32) -> Expr {
    let a = |i: usize| Expr::var(VarIdx(i));
    let b = |i: usize| Expr::var(VarIdx(r + i));
    let turn = || Expr::var(VarIdx(2 * r));
    let md = |e: Expr| e.modulo(Expr::int(d as i64));
    let uniform = |f: &dyn Fn(usize) -> Expr| -> Vec<Expr> {
        (0..r - 1).map(|i| f(i).eq(f(i + 1))).collect()
    };
    let step = |f: &dyn Fn(usize) -> Expr, j: usize| -> Vec<Expr> {
        let mut conj: Vec<Expr> = (0..j.saturating_sub(1)).map(|i| f(i).eq(f(i + 1))).collect();
        conj.extend((j..r - 1).map(|i| f(i).eq(f(i + 1))));
        conj.push(md(f(j).add(Expr::int(1))).eq(f(j - 1)));
        conj
    };
    let mut disj = Vec::new();
    // Phase 1.
    {
        let mut c = uniform(&a);
        c.extend(uniform(&b));
        c.push(a(0).eq(b(0)));
        c.push(turn().eq(Expr::int(1)));
        disj.push(Expr::conj(c));
    }
    // Phase 2: step in ring A at j = 1..r−1.
    for j in 1..r {
        let mut c = step(&a, j);
        c.extend(uniform(&b));
        c.push(b(0).eq(a(r - 1)));
        c.push(turn().eq(Expr::int(0)));
        disj.push(Expr::conj(c));
    }
    // Phase 3.
    {
        let mut c = uniform(&a);
        c.extend(uniform(&b));
        c.push(md(b(0).add(Expr::int(1))).eq(a(0)));
        c.push(turn().eq(Expr::int(0)));
        disj.push(Expr::conj(c));
    }
    // Phase 4: step in ring B at j = 1..r−1.
    for j in 1..r {
        let mut c = uniform(&a);
        c.extend(step(&b, j));
        c.push(a(0).eq(b(0)));
        c.push(turn().eq(Expr::int(1)));
        disj.push(Expr::conj(c));
    }
    Expr::disj(disj)
}

/// Build TR² with `r` processes per ring and domain `d`:
/// `(protocol, I_TR²)`. The paper's instance is `two_ring(4, 4)`
/// (8 processes); smaller `r`/`d` keep the tests fast.
pub fn two_ring(r: usize, d: u32) -> (Protocol, Expr) {
    assert!(r >= 2 && d >= 2);
    let mut vars: Vec<VarDecl> = (0..r).map(|i| VarDecl::new(format!("a{i}"), d)).collect();
    vars.extend((0..r).map(|i| VarDecl::new(format!("b{i}"), d)));
    vars.push(VarDecl::new("turn", 2));
    let turn_idx = VarIdx(2 * r);

    let a_idx = |i: usize| VarIdx(i);
    let b_idx = |i: usize| VarIdx(r + i);
    let a = |i: usize| Expr::var(a_idx(i));
    let b = |i: usize| Expr::var(b_idx(i));
    let turn = Expr::var(turn_idx);
    let md = |e: Expr| e.modulo(Expr::int(d as i64));

    let mut procs = Vec::new();
    let mut actions = Vec::new();

    // Ring A.
    for i in 0..r {
        if i == 0 {
            procs.push(
                ProcessDecl::new(
                    "PA0",
                    vec![a_idx(0), a_idx(r - 1), b_idx(0), b_idx(r - 1), turn_idx],
                    vec![a_idx(0), turn_idx],
                )
                .unwrap(),
            );
            actions.push(Action::labeled(
                "AA0",
                ProcIdx(0),
                token(r, d, 0),
                vec![(a_idx(0), md(a(r - 1).add(Expr::int(1)))), (turn_idx, Expr::int(0))],
            ));
        } else {
            procs.push(
                ProcessDecl::new(format!("PA{i}"), vec![a_idx(i - 1), a_idx(i)], vec![a_idx(i)])
                    .unwrap(),
            );
            actions.push(Action::labeled(
                format!("AA{i}"),
                ProcIdx(i),
                token(r, d, i),
                vec![(a_idx(i), a(i - 1))],
            ));
        }
    }
    // Ring B.
    for i in 0..r {
        let pidx = ProcIdx(r + i);
        if i == 0 {
            procs.push(
                ProcessDecl::new(
                    "PB0",
                    vec![b_idx(0), b_idx(r - 1), a_idx(0), a_idx(r - 1), turn_idx],
                    vec![b_idx(0), turn_idx],
                )
                .unwrap(),
            );
            actions.push(Action::labeled(
                "AB0",
                pidx,
                token(r, d, r),
                vec![(b_idx(0), md(b(r - 1).add(Expr::int(1)))), (turn_idx, Expr::int(1))],
            ));
        } else {
            procs.push(
                ProcessDecl::new(format!("PB{i}"), vec![b_idx(i - 1), b_idx(i)], vec![b_idx(i)])
                    .unwrap(),
            );
            actions.push(Action::labeled(
                format!("AB{i}"),
                pidx,
                token(r, d, r + i),
                vec![(b_idx(i), b(i - 1))],
            ));
        }
    }
    let _ = turn;
    let p = Protocol::new(vars, procs, actions).unwrap();
    (p, legitimate(r, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::explicit::{check_convergence, is_closed, predicate_states};

    #[test]
    fn legitimate_run_alternates_rings() {
        let (p, i) = two_ring(3, 3);
        // All-zero with turn = A: PA0 holds the only token.
        let mut s = vec![0, 0, 0, 0, 0, 0, 1];
        assert!(i.holds(&s));
        // Run 60 deterministic steps; exactly one action enabled each time.
        for step in 0..60 {
            let succs = p.successors(&s);
            assert_eq!(succs.len(), 1, "step {step}: state {s:?}");
            s = succs.into_iter().next().unwrap();
            assert!(i.holds(&s), "left I at step {step}: {s:?}");
        }
    }

    #[test]
    fn closed_but_not_stabilizing() {
        let (p, i) = two_ring(2, 3);
        assert!(is_closed(&p, &i));
        let report = check_convergence(&p, &i);
        assert!(!report.strongly_converges());
        assert!(!report.deadlocks_outside.is_empty());
    }

    #[test]
    fn paper_instance_shape() {
        let (p, _) = two_ring(4, 4);
        assert_eq!(p.num_processes(), 8);
        assert_eq!(p.num_vars(), 9); // 8 ring variables + turn
        assert_eq!(p.space().size(), 4u64.pow(8) * 2);
    }

    #[test]
    fn legitimate_states_nonempty() {
        let (p, i) = two_ring(2, 2);
        let set = predicate_states(&p, &i);
        assert!(set.count() > 0);
    }

    #[test]
    fn legitimate_states_hold_exactly_one_token() {
        let (p, i) = two_ring(3, 3);
        let set = predicate_states(&p, &i);
        assert!(set.count() > 0);
        for sid in set.iter() {
            let s = p.space().decode(sid);
            let tokens = (0..6).filter(|&j| token(3, 3, j).holds(&s)).count();
            assert_eq!(tokens, 1, "state {s:?}");
        }
    }
}
