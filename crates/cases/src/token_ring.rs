//! Token Ring (TR) — the paper's running example (§II), adapted from
//! Dijkstra's 1974 protocol.
//!
//! `n` processes `P0 … P(n-1)` hold one variable each (`x_j`, domain
//! `0..d`). Process `P_j` (j ≥ 1) reads `x_{j-1}, x_j` and writes `x_j`;
//! `P0` reads `x_{n-1}, x0` and writes `x0`.
//!
//! * `P0` has a token iff `x0 == x_{n-1}`; its action increments:
//!   `x0 := (x_{n-1} + 1) % d`.
//! * `P_j` (j ≥ 1) has a token iff `x_j + 1 ≡ x_{j-1}`; the
//!   **non-stabilizing** input copies only in that case:
//!   `x_j := x_{j-1}`.
//!
//! The legitimate states `S1` are those with exactly one token. The
//! non-stabilizing version deadlocks from states like `⟨0,0,1,2⟩`;
//! Dijkstra's stabilizing version strengthens the copy action to
//! `x_j ≠ x_{j-1} → x_j := x_{j-1}` — which is exactly what STSyn's
//! Pass 2 re-derives (§V).

use stsyn_protocol::action::Action;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
use stsyn_protocol::Protocol;

fn ring_topology(n: usize, d: u32) -> (Vec<VarDecl>, Vec<ProcessDecl>) {
    assert!(n >= 2, "token ring needs at least two processes");
    assert!(d >= 2, "token ring needs a domain of at least two values");
    let vars: Vec<VarDecl> = (0..n).map(|i| VarDecl::new(format!("x{i}"), d)).collect();
    let procs: Vec<ProcessDecl> = (0..n)
        .map(|j| {
            let prev = (j + n - 1) % n;
            ProcessDecl::new(format!("P{j}"), vec![VarIdx(prev), VarIdx(j)], vec![VarIdx(j)])
                .unwrap()
        })
        .collect();
    (vars, procs)
}

/// Does `P_j` hold the token? (`P0`: `x0 == x_{n-1}`; `P_j`:
/// `x_j + 1 ≡ x_{j-1}`.)
pub fn token(n: usize, d: u32, j: usize) -> Expr {
    let x = |i: usize| Expr::var(VarIdx(i));
    if j == 0 {
        x(0).eq(x(n - 1))
    } else {
        x(j).add(Expr::int(1)).modulo(Expr::int(d as i64)).eq(x(j - 1))
    }
}

/// The predicate `S1`: the single-token *step configurations* — either all
/// variables equal (token at `P0`) or a prefix holding `v` and a suffix
/// holding `v − 1` with the step at position `j` (token at `P_j`). For
/// `n = 4` this is verbatim the paper's four-disjunct `S1`. (The naive
/// "exactly one token" predicate is strictly weaker and is *not* closed in
/// the protocol — e.g. `⟨1,0,1,2⟩` has one token but steps to a
/// zero-token state.)
pub fn legitimate(n: usize, d: u32) -> Expr {
    let x = |i: usize| Expr::var(VarIdx(i));
    let eq_run = |range: std::ops::Range<usize>| -> Vec<Expr> {
        range.clone().zip(range.skip(1)).map(|(i, j)| x(i).eq(x(j))).collect()
    };
    let mut disj = Vec::new();
    // Token at P0: all equal.
    disj.push(Expr::conj(eq_run(0..n)));
    // Token at P_j (1 ≤ j ≤ n−1): x0=…=x_{j−1}, x_j=…=x_{n−1}, and
    // x_j + 1 ≡ x_{j−1}.
    for j in 1..n {
        let mut conj = eq_run(0..j);
        conj.extend(eq_run(j..n));
        conj.push(x(j).add(Expr::int(1)).modulo(Expr::int(d as i64)).eq(x(j - 1)));
        disj.push(Expr::conj(conj));
    }
    Expr::disj(disj)
}

/// The **non-stabilizing** token ring of §II: `(protocol, S1)`.
pub fn token_ring(n: usize, d: u32) -> (Protocol, Expr) {
    let (vars, procs) = ring_topology(n, d);
    let x = |i: usize| Expr::var(VarIdx(i));
    let mut actions = Vec::new();
    for j in 0..n {
        let prev = (j + n - 1) % n;
        let (guard, rhs) = if j == 0 {
            (x(0).eq(x(prev)), x(prev).add(Expr::int(1)).modulo(Expr::int(d as i64)))
        } else {
            (x(j).add(Expr::int(1)).modulo(Expr::int(d as i64)).eq(x(prev)), x(prev))
        };
        actions.push(Action::labeled(format!("A{j}"), ProcIdx(j), guard, vec![(VarIdx(j), rhs)]));
    }
    let p = Protocol::new(vars, procs, actions).unwrap();
    (p, legitimate(n, d))
}

/// Dijkstra's manually designed **stabilizing** token ring: `P0`
/// increments on equality, every other process copies on *any*
/// difference. Returned for relation-level comparison with the
/// synthesized protocol.
pub fn dijkstra_token_ring(n: usize, d: u32) -> (Protocol, Expr) {
    let (vars, procs) = ring_topology(n, d);
    let x = |i: usize| Expr::var(VarIdx(i));
    let mut actions = Vec::new();
    for j in 0..n {
        let prev = (j + n - 1) % n;
        let (guard, rhs) = if j == 0 {
            (x(0).eq(x(prev)), x(prev).add(Expr::int(1)).modulo(Expr::int(d as i64)))
        } else {
            (x(j).ne(x(prev)), x(prev))
        };
        actions.push(Action::labeled(format!("D{j}"), ProcIdx(j), guard, vec![(VarIdx(j), rhs)]));
    }
    let p = Protocol::new(vars, procs, actions).unwrap();
    (p, legitimate(n, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::explicit::{check_convergence, is_closed, predicate_states};

    #[test]
    fn s1_states_have_exactly_one_token() {
        let (p, i) = token_ring(4, 3);
        let set = predicate_states(&p, &i);
        // n·d step configurations: d all-equal + (n−1)·d stepped.
        assert_eq!(set.count(), 4 * 3);
        for sid in set.iter() {
            let s = p.space().decode(sid);
            let tokens = (0..4).filter(|&j| token(4, 3, j).holds(&s)).count();
            assert_eq!(tokens, 1, "state {s:?}");
        }
    }

    #[test]
    fn paper_example_states() {
        let (_, i) = token_ring(4, 3);
        // ⟨1,0,0,0⟩ ∈ S1 (P1 has the token) — paper §II.
        assert!(i.holds(&vec![1, 0, 0, 0]));
        // ⟨0,0,1,2⟩ is illegitimate (and a deadlock of the input).
        assert!(!i.holds(&vec![0, 0, 1, 2]));
    }

    #[test]
    fn input_is_closed_but_not_stabilizing() {
        let (p, i) = token_ring(4, 3);
        assert!(is_closed(&p, &i));
        let report = check_convergence(&p, &i);
        assert!(!report.strongly_converges());
        // The paper: ⟨0,0,1,2⟩ is a deadlock state.
        let sid = p.space().encode(&vec![0, 0, 1, 2]);
        assert!(report.deadlocks_outside.contains(&sid));
    }

    #[test]
    fn dijkstra_version_is_strongly_stabilizing() {
        for (n, d) in [(3usize, 3u32), (4, 3), (4, 4), (5, 5)] {
            let (p, i) = dijkstra_token_ring(n, d);
            assert!(is_closed(&p, &i), "closure n={n} d={d}");
            let report = check_convergence(&p, &i);
            assert!(report.strongly_converges(), "convergence n={n} d={d}");
        }
    }

    #[test]
    fn dijkstra_needs_enough_values() {
        // Classical fact: with n processes Dijkstra's ring needs d ≥ n-1
        // (for the unidirectional K-state ring, d ≥ n suffices and d = n-1
        // is the tight bound for this variant; d == 2, n == 4 fails).
        let (p, i) = dijkstra_token_ring(4, 2);
        let report = check_convergence(&p, &i);
        assert!(!report.strongly_converges());
    }

    #[test]
    fn token_uniqueness_is_preserved_in_runs() {
        let (p, i) = dijkstra_token_ring(5, 4);
        // Random legitimate start, run 100 steps, stay in S1.
        let mut s = vec![2, 2, 2, 2, 2];
        assert!(i.holds(&s));
        for _ in 0..100 {
            let succs = p.successors(&s);
            assert_eq!(succs.len(), 1, "exactly one enabled process in S1");
            s = succs.into_iter().next().unwrap();
            assert!(i.holds(&s));
        }
    }
}
