//! BDD dump/load round-trips on every case study's real symbolic state:
//! the invariant, the protocol relation and the full rank layering. The
//! reloaded manager must preserve semantics, variable order and node
//! counts exactly — checked structurally (a canonical ROBDD under the same
//! order re-dumps to the identical byte string) and by evaluation.

use stsyn_bdd::Manager;
use stsyn_cases::{coloring, matching, mis, token_ring, two_ring};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::Protocol;
use stsyn_symbolic::{compute_ranks, SymbolicContext};

/// Deterministic pseudo-random assignments (xorshift — no external crates,
/// no process entropy) for evaluation spot checks.
fn assignments(num_vars: usize, count: usize) -> Vec<Vec<bool>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut a = Vec::with_capacity(num_vars);
        for _ in 0..num_vars {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            a.push(state & 1 == 1);
        }
        out.push(a);
    }
    out
}

fn round_trip(name: &str, p: Protocol, i: Expr) {
    let mut ctx = SymbolicContext::new(p);
    let i_bdd = ctx.compile(&i);
    let t = ctx.protocol_relation();
    let table = compute_ranks(&mut ctx, t, i_bdd);
    let mut roots = vec![i_bdd, t, table.explored, table.infinite];
    roots.extend(table.ranks.iter().copied());

    let mgr = ctx.mgr_ref();
    let dump = mgr.dump_bdds_to_vec(&roots);
    let (loaded_mgr, loaded) =
        Manager::load_bdds(&mut &dump[..]).unwrap_or_else(|e| panic!("{name}: load failed: {e}"));

    assert_eq!(loaded.len(), roots.len(), "{name}: root count differs");
    assert_eq!(
        mgr.current_order(),
        loaded_mgr.current_order(),
        "{name}: variable order not preserved"
    );
    assert_eq!(
        mgr.node_count_many(&roots),
        loaded_mgr.node_count_many(&loaded),
        "{name}: shared node count differs"
    );
    for (k, (&orig, &new)) in roots.iter().zip(&loaded).enumerate() {
        assert_eq!(
            mgr.node_count(orig),
            loaded_mgr.node_count(new),
            "{name}: node count of root {k} differs"
        );
    }
    // Semantic equality on a deterministic sample of assignments.
    for a in assignments(mgr.num_vars() as usize, 200) {
        for (k, (&orig, &new)) in roots.iter().zip(&loaded).enumerate() {
            assert_eq!(
                mgr.eval(orig, &a),
                loaded_mgr.eval(new, &a),
                "{name}: root {k} disagrees on {a:?}"
            );
        }
    }
    // Canonicity: the reloaded DAG re-dumps to the identical byte string.
    let redump = loaded_mgr.dump_bdds_to_vec(&loaded);
    assert_eq!(dump, redump, "{name}: re-dump is not byte-identical");
}

#[test]
fn token_ring_state_round_trips() {
    let (p, i) = token_ring::token_ring(3, 2);
    round_trip("token_ring(3,2)", p, i);
}

#[test]
fn matching_state_round_trips() {
    let (p, i) = matching::matching(3);
    round_trip("matching(3)", p, i);
}

#[test]
fn coloring_state_round_trips() {
    let (p, i) = coloring::coloring(3);
    round_trip("coloring(3)", p, i);
}

#[test]
fn two_ring_state_round_trips() {
    let (p, i) = two_ring::two_ring(2, 2);
    round_trip("two_ring(2,2)", p, i);
}

#[test]
fn mis_state_round_trips() {
    let (p, i) = mis::mis(3);
    round_trip("mis(3)", p, i);
}
