//! An enormous-but-finite budget must be observationally free: the
//! synthesized protocol, the recovery description and the deterministic
//! statistics must be identical to an unbudgeted run on every case study.
//! (Only timings, tick counters and GC-sensitive peaks may differ.)

use stsyn_bdd::Budget;
use stsyn_cases::{coloring, matching, mis, token_ring, two_ring};
use stsyn_core::{AddConvergence, Options, Outcome};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::group::GroupDesc;
use stsyn_protocol::Protocol;

/// Everything deterministic about an outcome, in comparable form.
struct Fingerprint {
    added: Vec<GroupDesc>,
    recovery: String,
    extracted: String,
    candidates: usize,
    groups_added: usize,
    max_rank: usize,
    finished_in_pass: u8,
    program_nodes: usize,
}

fn fingerprint(outcome: &Outcome) -> Fingerprint {
    Fingerprint {
        added: outcome.added.clone(),
        recovery: outcome.describe_recovery(),
        extracted: format!("{:?}", outcome.extract_protocol()),
        candidates: outcome.stats.candidates,
        groups_added: outcome.stats.groups_added,
        max_rank: outcome.stats.max_rank,
        finished_in_pass: outcome.stats.finished_in_pass,
        program_nodes: outcome.stats.program_nodes,
    }
}

fn huge_budget() -> Budget {
    Budget::unlimited()
        .with_max_ticks(u64::MAX >> 1)
        .with_max_nodes(usize::MAX >> 1)
        .with_timeout(std::time::Duration::from_secs(3600))
}

fn assert_budget_free(name: &str, p: Protocol, i: Expr) {
    let plain = AddConvergence::new(p.clone(), i.clone())
        .unwrap()
        .synthesize(&Options::default())
        .unwrap_or_else(|e| panic!("{name}: unbudgeted synthesis failed: {e}"));
    let budgeted_opts = Options { budget: Some(huge_budget()), ..Options::default() };
    let budgeted = AddConvergence::new(p, i)
        .unwrap()
        .synthesize(&budgeted_opts)
        .unwrap_or_else(|e| panic!("{name}: budgeted synthesis failed: {e}"));
    assert!(budgeted.stats.bdd_ticks > 0, "{name}: tick accounting missing");

    let a = fingerprint(&plain);
    let b = fingerprint(&budgeted);
    assert_eq!(a.added, b.added, "{name}: added groups differ");
    assert_eq!(a.recovery, b.recovery, "{name}: recovery description differs");
    assert_eq!(a.extracted, b.extracted, "{name}: extracted protocol differs");
    assert_eq!(a.candidates, b.candidates, "{name}: candidate count differs");
    assert_eq!(a.groups_added, b.groups_added, "{name}: group count differs");
    assert_eq!(a.max_rank, b.max_rank, "{name}: rank count differs");
    assert_eq!(a.finished_in_pass, b.finished_in_pass, "{name}: pass differs");
    assert_eq!(a.program_nodes, b.program_nodes, "{name}: program size differs");
}

#[test]
fn token_ring_is_budget_free() {
    let (p, i) = token_ring(3, 2);
    assert_budget_free("token_ring(3,2)", p, i);
}

#[test]
fn matching_is_budget_free() {
    let (p, i) = matching(3);
    assert_budget_free("matching(3)", p, i);
}

#[test]
fn coloring_is_budget_free() {
    let (p, i) = coloring(3);
    assert_budget_free("coloring(3)", p, i);
}

#[test]
fn two_ring_is_budget_free() {
    let (p, i) = two_ring(2, 2);
    assert_budget_free("two_ring(2,2)", p, i);
}

#[test]
fn mis_is_budget_free() {
    let (p, i) = mis(3);
    assert_budget_free("mis(3)", p, i);
}

#[test]
fn weak_synthesis_is_budget_free() {
    let (p, i) = matching(3);
    let plain = AddConvergence::new(p.clone(), i.clone()).unwrap().synthesize_weak().unwrap();
    let opts = Options { budget: Some(huge_budget()), ..Options::default() };
    let budgeted = AddConvergence::new(p, i).unwrap().synthesize_weak_with(&opts).unwrap();
    assert_eq!(plain.added, budgeted.added);
    assert_eq!(plain.stats.max_rank, budgeted.stats.max_rank);
    assert_eq!(plain.stats.program_nodes, budgeted.stats.program_nodes);
}
