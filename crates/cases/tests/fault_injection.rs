//! Deterministic fault-injection harness for the resource-budget layer.
//!
//! `Budget::with_fail_at_tick(n)` forces a synthetic `BudgetExhausted`
//! error at the n-th BDD operation. Because the tick counter is a
//! deterministic coordinate system over a synthesis run, sweeping `n`
//! across the full run exercises an abort at every phase of the pipeline:
//! compilation, preprocessing, candidate construction, ranking, each
//! recovery pass, and verification. At every injection point the run must
//!
//! 1. not panic,
//! 2. surface `SynthesisError::ResourceExhausted` with the injected cause,
//! 3. leave the BDD manager's invariants intact (checked via the
//!    consistency snapshot embedded in the partial-progress report).

use stsyn_bdd::{Budget, Resource};
use stsyn_cases::{coloring, matching, token_ring};
use stsyn_core::{AddConvergence, Options, Phase, SynthesisError};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::Protocol;

/// Run one unlimited-but-budgeted synthesis to learn the total tick count
/// of the run — the sweep's coordinate range.
fn learn_total_ticks(p: &Protocol, i: &Expr) -> u64 {
    let opts = Options {
        budget: Some(Budget::unlimited().with_max_ticks(u64::MAX >> 1)),
        ..Options::default()
    };
    let outcome = AddConvergence::new(p.clone(), i.clone())
        .unwrap()
        .synthesize(&opts)
        .expect("huge budget must not interrupt synthesis");
    let total = outcome.stats.bdd_ticks;
    assert!(total > 0, "a synthesis run must consume ticks");
    total
}

/// Sweep ~`points` distinct injection ticks over a full synthesis run.
/// Returns the number of distinct points actually exercised.
fn sweep(p: &Protocol, i: &Expr, points: u64) -> u64 {
    let total = learn_total_ticks(p, i);
    let step = (total / points).max(1);
    let mut exercised = 0;
    let mut n = 1;
    while n <= total {
        let opts = Options {
            budget: Some(Budget::unlimited().with_fail_at_tick(n)),
            ..Options::default()
        };
        let result = AddConvergence::new(p.clone(), i.clone()).unwrap().synthesize(&opts);
        match result {
            Err(SynthesisError::ResourceExhausted { phase, cause, partial }) => {
                assert_eq!(
                    cause.resource(),
                    Resource::Injected,
                    "tick {n}: wrong exhaustion cause"
                );
                assert!(
                    partial.manager_consistent,
                    "tick {n} ({phase}): manager invariants violated after abort"
                );
                // The salvaged group list only ever names fully-committed
                // groups, so it can never exceed the unlimited run's total.
                if phase == Phase::Setup {
                    assert!(partial.groups_added.is_empty());
                    assert_eq!(partial.ranks_layered, 0);
                }
            }
            Ok(_) => panic!("injection at tick {n} (≤ total {total}) did not fire"),
            Err(e) => panic!("tick {n}: expected ResourceExhausted, got: {e}"),
        }
        exercised += 1;
        n += step;
    }
    exercised
}

#[test]
fn fault_sweep_matching() {
    let (p, i) = matching(3);
    let exercised = sweep(&p, &i, 120);
    assert!(exercised >= 100, "only {exercised} injection points exercised");
}

#[test]
fn fault_sweep_coloring() {
    let (p, i) = coloring(3);
    let exercised = sweep(&p, &i, 120);
    assert!(exercised >= 100, "only {exercised} injection points exercised");
}

#[test]
fn fault_sweep_token_ring() {
    let (p, i) = token_ring(3, 2);
    let exercised = sweep(&p, &i, 20);
    assert!(exercised >= 15, "only {exercised} injection points exercised");
}

#[test]
fn zero_tick_budget_returns_immediately_with_empty_partial() {
    let (p, i) = matching(3);
    let opts =
        Options { budget: Some(Budget::unlimited().with_max_ticks(0)), ..Options::default() };
    match AddConvergence::new(p, i).unwrap().synthesize(&opts) {
        Err(SynthesisError::ResourceExhausted { phase, cause, partial }) => {
            assert_eq!(phase, Phase::Setup);
            assert_eq!(cause.resource(), Resource::Ticks);
            assert_eq!(partial.ranks_layered, 0);
            assert!(partial.groups_added.is_empty());
            assert!(partial.manager_consistent);
        }
        Ok(_) => panic!("expected immediate ResourceExhausted, got success"),
        Err(e) => panic!("expected immediate ResourceExhausted, got {e}"),
    }
}

#[test]
fn cooperative_cancel_aborts_synthesis() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let flag = Arc::new(AtomicBool::new(true)); // pre-cancelled
    let (p, i) = coloring(3);
    let opts = Options {
        budget: Some(Budget::unlimited().with_cancel(Arc::clone(&flag))),
        ..Options::default()
    };
    match AddConvergence::new(p, i).unwrap().synthesize(&opts) {
        Err(SynthesisError::ResourceExhausted { cause, partial, .. }) => {
            assert_eq!(cause.resource(), Resource::Cancelled);
            assert!(partial.manager_consistent);
        }
        Ok(_) => panic!("expected cancellation, got success"),
        Err(e) => panic!("expected cancellation, got {e}"),
    }
    flag.store(false, Ordering::Relaxed);
}
