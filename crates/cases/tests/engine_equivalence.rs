//! The partitioned and saturation engines must be observationally
//! invisible: every symbolic operator (image, preimage, enabledness,
//! closures), the full rank table and the synthesized protocol text must
//! be identical — canonical BDD for canonical BDD, byte for byte — to
//! the monolithic engine on every case study. This is what makes
//! `--engine` a pure performance knob.

use stsyn_cases::{coloring, matching, mis, token_ring, two_ring};
use stsyn_core::job::JobSpec;
use stsyn_core::Engine;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::group::groups_of_protocol;
use stsyn_protocol::Protocol;
use stsyn_symbolic::ranks::{compute_ranks, compute_ranks_parts};
use stsyn_symbolic::SymbolicContext;

fn all_cases() -> Vec<(&'static str, Protocol, Expr)> {
    let mut out = Vec::new();
    let (p, i) = token_ring(3, 2);
    out.push(("token_ring(3,2)", p, i));
    let (p, i) = matching(3);
    out.push(("matching(3)", p, i));
    let (p, i) = coloring(3);
    out.push(("coloring(3)", p, i));
    let (p, i) = two_ring(2, 2);
    out.push(("two_ring(2,2)", p, i));
    let (p, i) = mis(3);
    out.push(("mis(3)", p, i));
    out
}

/// Compare every partitioned operator against its monolithic twin on a
/// spread of operand predicates: `I`, `¬I`, all states, and the
/// frontier sets a closure actually walks through.
#[test]
fn operators_agree_with_monolithic_on_every_case_study() {
    for (name, p, i_expr) in all_cases() {
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i = ctx.compile(&i_expr);
        let parts = ctx.partitioned_relation(&groups_of_protocol(&p));

        let tt = ctx.mgr().one();
        let not_i = ctx.mgr().not(i);
        let one_step = ctx.img(t, i);
        let operands = [i, not_i, tt, one_step];
        for x in operands {
            assert_eq!(ctx.img(t, x), ctx.img_parts(&parts, x), "{name}: img");
            assert_eq!(ctx.pre(t, x), ctx.pre_parts(&parts, x), "{name}: pre");
            for engine in [Engine::Partitioned, Engine::Saturation] {
                assert_eq!(
                    ctx.forward_closure(t, x),
                    ctx.forward_closure_parts(engine, &parts, x),
                    "{name}: forward closure under {engine}"
                );
                assert_eq!(
                    ctx.backward_closure(t, x),
                    ctx.backward_closure_parts(engine, &parts, x),
                    "{name}: backward closure under {engine}"
                );
            }
        }
        assert_eq!(ctx.enabled(t), ctx.enabled_parts(&parts), "{name}: enabled");
    }
}

/// The clustered builder collapses to the monolithic relation when the
/// node cap admits a single cluster — on real case studies, not just
/// the toy protocols of the unit tests.
#[test]
fn single_cluster_equals_monolithic_relation() {
    for (name, p, _) in all_cases() {
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let descs = groups_of_protocol(&p);
        let merged = ctx
            .try_partitioned_relation_capped(&descs, usize::MAX)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if descs.is_empty() {
            // Some seeds (e.g. matching) start with no actions at all.
            assert!(t.is_false(), "{name}: actionless seed with non-empty relation");
            assert!(merged.is_empty(), "{name}: partitions out of thin air");
            continue;
        }
        assert_eq!(merged.len(), 1, "{name}: cap ∞ must merge everything");
        assert_eq!(merged.parts()[0].relation(), t, "{name}: merged ≠ monolithic");
    }
}

/// `ComputeRanks` walks the same BFS layers regardless of engine: the
/// rank table must match layer by layer, not just in summary.
#[test]
fn rank_tables_are_identical_layer_by_layer() {
    for (name, p, i_expr) in all_cases() {
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i = ctx.compile(&i_expr);
        let parts = ctx.partitioned_relation(&groups_of_protocol(&p));
        let mono = compute_ranks(&mut ctx, t, i);
        let part = compute_ranks_parts(&mut ctx, &parts, i);
        assert_eq!(mono.ranks, part.ranks, "{name}: rank layers differ");
        assert_eq!(mono.explored, part.explored, "{name}: explored sets differ");
        assert_eq!(mono.infinite, part.infinite, "{name}: infinite sets differ");
    }
}

/// End-to-end: all three engines must synthesize byte-identical
/// protocol text (and all verify) on every case study, strong and weak.
#[test]
fn synthesized_dsl_is_byte_identical_across_engines() {
    for (name, p, i_expr) in all_cases() {
        for weak in [false, true] {
            let run = |engine: Engine| {
                let mut job = JobSpec::new(name.to_string(), p.clone(), i_expr.clone());
                job.engine = engine;
                if weak {
                    job.mode = stsyn_core::JobMode::Weak;
                }
                job.run().unwrap_or_else(|e| panic!("{name} [{engine}, weak={weak}]: {e}"))
            };
            let mono = run(Engine::Monolithic);
            assert!(mono.verified, "{name}: monolithic run failed verification");
            for engine in [Engine::Partitioned, Engine::Saturation] {
                let other = run(engine);
                assert!(other.verified, "{name} [{engine}]: verification failed");
                assert_eq!(
                    mono.emitted_dsl, other.emitted_dsl,
                    "{name} [{engine}, weak={weak}]: synthesized text differs"
                );
            }
        }
    }
}
