//! Crash-injection sweep for checkpoint/resume: kill a checkpointed
//! synthesis at many points across the run, resume each from its journal,
//! and require the resumed outcome to be **bit-identical** to an
//! uninterrupted run (same printed protocol text) and to re-pass the
//! independent strong-convergence model check.
//!
//! `Budget::with_fail_at_tick(n)` is the crash: journaling itself performs
//! no BDD operations, so the tick coordinate system of a checkpointed run
//! matches a plain one and a single reference run calibrates the sweep.
//!
//! The full sweep covers ≥100 injection points across three case studies;
//! CI sets `CRASH_SWEEP_POINTS` to run a reduced sweep.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use stsyn_bdd::Budget;
use stsyn_cases::{coloring, matching, token_ring};
use stsyn_core::{AddConvergence, Options, Outcome, SynthesisError};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::Protocol;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("stsyn-crash-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn printed(outcome: &Outcome, invariant: &Expr) -> String {
    stsyn_protocol::printer::to_dsl("out", &outcome.extract_protocol(), invariant)
}

/// Points per case from `CRASH_SWEEP_POINTS` (total across the suite is
/// roughly 2× this per-case figure; the default full sweep is ≥100).
fn points_per_case(default: u64) -> u64 {
    match std::env::var("CRASH_SWEEP_POINTS") {
        Ok(v) => v.parse::<u64>().expect("CRASH_SWEEP_POINTS must be a number").max(1),
        Err(_) => default,
    }
}

/// Reference run: checkpointed under a huge (never-violated) budget so it
/// shares both the tick coordinate system and the journal trajectory with
/// the injected runs. Returns the canonical printed output and the total
/// tick count.
fn reference(tag: &str, p: &Protocol, i: &Expr) -> (String, u64) {
    let dir = temp_dir(&format!("{tag}-ref"));
    let opts = Options {
        budget: Some(Budget::unlimited().with_max_ticks(u64::MAX >> 1)),
        ..Options::default()
    };
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let outcome = problem
        .synthesize_resumable(&opts, &dir)
        .expect("huge budget must not interrupt synthesis");
    let total = outcome.stats.bdd_ticks;
    assert!(total > 0, "{tag}: a synthesis run must consume ticks");
    std::fs::remove_dir_all(&dir).unwrap();
    (printed(&outcome, i), total)
}

/// Kill a checkpointed run at ~`points` distinct ticks, resume each, and
/// compare against the uninterrupted reference. Returns the number of
/// points at which the injection actually fired mid-synthesis.
fn sweep(tag: &str, p: &Protocol, i: &Expr, points: u64) -> u64 {
    let (want, total) = reference(tag, p, i);
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let step = (total / points).max(1);
    let mut crashed_and_resumed = 0;
    let mut n = 1;
    while n <= total {
        let dir = temp_dir(tag);
        let inject = Options {
            budget: Some(Budget::unlimited().with_fail_at_tick(n)),
            ..Options::default()
        };
        match problem.synthesize_resumable(&inject, &dir) {
            Err(SynthesisError::ResourceExhausted { .. }) => {
                // The crash fired; resume from the journal with no budget.
                let mut resumed = problem
                    .synthesize_resumable(&Options::default(), &dir)
                    .unwrap_or_else(|e| panic!("{tag}: tick {n}: resume failed: {e}"));
                assert_eq!(
                    want,
                    printed(&resumed, i),
                    "{tag}: tick {n}: resumed output differs from uninterrupted run"
                );
                assert!(
                    resumed.verify_strong(),
                    "{tag}: tick {n}: resumed protocol failed re-verification"
                );
                crashed_and_resumed += 1;
            }
            Ok(outcome) => {
                // Injection landed after the last BDD op (e.g. in the
                // debug-build verification pass, which replays no ticks in
                // release); the run completed — it must still be correct.
                assert_eq!(want, printed(&outcome, i), "{tag}: tick {n}: output differs");
            }
            Err(e) => panic!("{tag}: tick {n}: unexpected error: {e}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
        n += step;
    }
    crashed_and_resumed
}

#[test]
fn matching_crash_sweep_resumes_bit_identical() {
    let (p, i) = matching::matching(3);
    let points = points_per_case(50);
    let exercised = sweep("matching3", &p, &i, points);
    assert!(exercised > 0, "sweep exercised no crash points");
}

#[test]
fn coloring_crash_sweep_resumes_bit_identical() {
    let (p, i) = coloring::coloring(3);
    let points = points_per_case(35);
    let exercised = sweep("coloring3", &p, &i, points);
    assert!(exercised > 0, "sweep exercised no crash points");
}

#[test]
fn token_ring_crash_sweep_resumes_bit_identical() {
    let (p, i) = token_ring::token_ring(3, 2);
    let points = points_per_case(20);
    let exercised = sweep("tokenring32", &p, &i, points);
    assert!(exercised > 0, "sweep exercised no crash points");
}

/// A run crashed *twice* (injection during the resumed run as well) must
/// still converge to the identical output on the third, uninjected resume.
#[test]
fn double_crash_still_resumes_bit_identical() {
    let (p, i) = matching::matching(3);
    let (want, total) = reference("double", &p, &i);
    let problem = AddConvergence::new(p.clone(), i.clone()).unwrap();
    let dir = temp_dir("double-run");
    let first = Options {
        budget: Some(Budget::unlimited().with_fail_at_tick(total / 3)),
        ..Options::default()
    };
    match problem.synthesize_resumable(&first, &dir) {
        Err(SynthesisError::ResourceExhausted { .. }) => {}
        other => panic!("first injection did not fire: {:?}", other.map(|_| ())),
    }
    // Second crash mid-way through the *resumed* run. Replay skips work,
    // so the resumed run is shorter; a third of the original total lands
    // somewhere inside it (if it completes instead, that's fine too — the
    // output check below still applies).
    let second = Options {
        budget: Some(Budget::unlimited().with_fail_at_tick(total / 3)),
        ..Options::default()
    };
    match problem.synthesize_resumable(&second, &dir) {
        Err(SynthesisError::ResourceExhausted { .. }) => {
            let mut resumed = problem.synthesize_resumable(&Options::default(), &dir).unwrap();
            assert_eq!(want, printed(&resumed, &i));
            assert!(resumed.verify_strong());
        }
        Ok(outcome) => assert_eq!(want, printed(&outcome, &i)),
        Err(e) => panic!("unexpected error: {e}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
