//! A small textual language for protocol descriptions.
//!
//! The `stsyn` command-line tool (in the `stsyn-core` crate) consumes this
//! format, so the synthesizer can be driven without writing Rust. Example —
//! the paper's running token-ring protocol:
//!
//! ```text
//! protocol TokenRing {
//!   var x0 : 0..2;  var x1 : 0..2;  var x2 : 0..2;  var x3 : 0..2;
//!
//!   process P0 reads x3, x0 writes x0 {
//!     A0: when x0 == x3 then x0 := (x3 + 1) % 3;
//!   }
//!   process P1 reads x0, x1 writes x1 {
//!     A1: when (x1 + 1) % 3 == x0 then x1 := x0;
//!   }
//!   // ... P2, P3 alike ...
//!
//!   invariant (x0 == x1 && x1 == x2 && x2 == x3)
//!          || ((x1 + 1) % 3 == x0 && x1 == x2 && x2 == x3);
//! }
//! ```
//!
//! Domains are `0..hi` ranges or named-value enumerations
//! (`var m0 : { left, right, self };`); named values are global integer
//! constants usable in expressions. Operator precedence, loosest first:
//! `<=>`, `=>`, `||`, `&&`, comparisons, `+ -`, `* %`, unary `! -`.

use crate::action::Action;
use crate::expr::{BinOp, Expr, UnOp};
use crate::protocol::Protocol;
use crate::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
use std::collections::HashMap;
use std::fmt;

/// A parsed protocol file: the protocol plus its legitimate-state
/// predicate.
#[derive(Debug, Clone)]
pub struct ParsedProtocol {
    /// Protocol name from the header.
    pub name: String,
    /// The validated protocol.
    pub protocol: Protocol,
    /// The `invariant` expression (the predicate `I` of Problem III.1).
    pub invariant: Expr,
}

/// Parse or validation failure, with a line number when syntactic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token (0 when post-parse validation).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    // punctuation / operators
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    DotDot,
    Assign, // :=
    Plus,
    Minus,
    Star,
    Percent,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Implies, // =>
    Iff,     // <=>
    Bang,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: msg.into() }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() {
                let c = self.src[self.pos];
                if c == b'\n' {
                    self.line += 1;
                    self.pos += 1;
                } else if c.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            // line comments
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'/'
                && self.src[self.pos + 1] == b'/'
            {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, u32), ParseError> {
        self.skip_ws();
        let line = self.line;
        if self.pos >= self.src.len() {
            return Ok((Tok::Eof, line));
        }
        let c = self.src[self.pos];
        let two = |l: &Lexer<'a>| {
            if l.pos + 1 < l.src.len() {
                Some(l.src[l.pos + 1])
            } else {
                None
            }
        };
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'-' => {
                self.pos += 1;
                Tok::Minus
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'%' => {
                self.pos += 1;
                Tok::Percent
            }
            b'!' => {
                if two(self) == Some(b'=') {
                    self.pos += 2;
                    Tok::Ne
                } else {
                    self.pos += 1;
                    Tok::Bang
                }
            }
            b':' => {
                if two(self) == Some(b'=') {
                    self.pos += 2;
                    Tok::Assign
                } else {
                    self.pos += 1;
                    Tok::Colon
                }
            }
            b'.' => {
                if two(self) == Some(b'.') {
                    self.pos += 2;
                    Tok::DotDot
                } else {
                    return Err(self.error("unexpected `.`"));
                }
            }
            b'=' => match two(self) {
                Some(b'=') => {
                    self.pos += 2;
                    Tok::EqEq
                }
                Some(b'>') => {
                    self.pos += 2;
                    Tok::Implies
                }
                _ => return Err(self.error("unexpected `=` (use `==`, `:=`, or `=>`)")),
            },
            b'<' => match two(self) {
                Some(b'=') => {
                    if self.pos + 2 < self.src.len() && self.src[self.pos + 2] == b'>' {
                        self.pos += 3;
                        Tok::Iff
                    } else {
                        self.pos += 2;
                        Tok::Le
                    }
                }
                _ => {
                    self.pos += 1;
                    Tok::Lt
                }
            },
            b'>' => {
                if two(self) == Some(b'=') {
                    self.pos += 2;
                    Tok::Ge
                } else {
                    self.pos += 1;
                    Tok::Gt
                }
            }
            b'&' => {
                if two(self) == Some(b'&') {
                    self.pos += 2;
                    Tok::AndAnd
                } else {
                    return Err(self.error("unexpected `&` (use `&&`)"));
                }
            }
            b'|' => {
                if two(self) == Some(b'|') {
                    self.pos += 2;
                    Tok::OrOr
                } else {
                    return Err(self.error("unexpected `|` (use `||`)"));
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                Tok::Int(text.parse().map_err(|_| self.error("integer overflow"))?)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Tok::Ident(std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string())
            }
            other => return Err(self.error(format!("unexpected character `{}`", other as char))),
        };
        Ok((tok, line))
    }
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
    vars: Vec<VarDecl>,
    var_names: HashMap<String, VarIdx>,
    value_consts: HashMap<String, i64>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: msg.into() }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].1,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(ParseError { line, message: format!("expected `{kw}`, found {other:?}") }),
        }
    }

    fn lookup_var(&self, name: &str) -> Option<VarIdx> {
        self.var_names.get(name).copied()
    }

    // ---- expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_iff()
    }

    fn parse_iff(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_implies()?;
        while *self.peek() == Tok::Iff {
            self.bump();
            let rhs = self.parse_implies()?;
            lhs = Expr::Bin(BinOp::Iff, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_or()?;
        if *self.peek() == Tok::Implies {
            self.bump();
            // right-associative
            let rhs = self.parse_implies()?;
            Ok(Expr::Bin(BinOp::Implies, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_add()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(i) => Ok(Expr::Int(i)),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                _ => {
                    if let Some(v) = self.lookup_var(&name) {
                        Ok(Expr::Var(v))
                    } else if let Some(&c) = self.value_consts.get(&name) {
                        Ok(Expr::Int(c))
                    } else {
                        Err(ParseError { line, message: format!("unknown identifier `{name}`") })
                    }
                }
            },
            other => {
                Err(ParseError { line, message: format!("expected expression, found {other:?}") })
            }
        }
    }

    fn parse_var_list(&mut self) -> Result<Vec<VarIdx>, ParseError> {
        let mut out = Vec::new();
        loop {
            let line = self.line();
            let name = self.expect_ident("variable name")?;
            let v = self
                .lookup_var(&name)
                .ok_or(ParseError { line, message: format!("unknown variable `{name}`") })?;
            out.push(v);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }
}

/// Parse a protocol description arriving as an untrusted payload (e.g. a
/// `stsyn-serve` job submission): the byte size is bounded *before*
/// tokenization, so an oversized submission is rejected in O(1) instead of
/// being lexed. Everything else is [`parse`].
pub fn parse_bounded(src: &str, max_bytes: usize) -> Result<ParsedProtocol, ParseError> {
    if src.len() > max_bytes {
        return Err(ParseError {
            line: 0,
            message: format!(
                "protocol source is {} bytes, exceeding the {max_bytes}-byte payload limit",
                src.len()
            ),
        });
    }
    parse(src)
}

/// Parse a protocol description; see the module docs for the grammar.
pub fn parse(src: &str) -> Result<ParsedProtocol, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let (t, line) = lexer.next()?;
        let eof = t == Tok::Eof;
        toks.push((t, line));
        if eof {
            break;
        }
    }
    let mut p = Parser {
        toks,
        pos: 0,
        vars: Vec::new(),
        var_names: HashMap::new(),
        value_consts: HashMap::new(),
    };

    p.expect_keyword("protocol")?;
    let name = p.expect_ident("protocol name")?;
    p.expect(&Tok::LBrace, "`{`")?;

    let mut processes: Vec<ProcessDecl> = Vec::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut invariant: Option<Expr> = None;

    loop {
        match p.peek().clone() {
            Tok::RBrace => {
                p.bump();
                break;
            }
            Tok::Ident(kw) if kw == "var" => {
                p.bump();
                let line = p.line();
                let vname = p.expect_ident("variable name")?;
                if p.var_names.contains_key(&vname) {
                    return Err(ParseError {
                        line,
                        message: format!("variable `{vname}` declared twice"),
                    });
                }
                p.expect(&Tok::Colon, "`:`")?;
                let decl = match p.peek().clone() {
                    Tok::Int(lo) => {
                        p.bump();
                        if lo != 0 {
                            return Err(ParseError {
                                line,
                                message: "domains must start at 0 (`0..hi`)".into(),
                            });
                        }
                        p.expect(&Tok::DotDot, "`..`")?;
                        let hi = match p.bump() {
                            Tok::Int(h) => h,
                            other => {
                                return Err(ParseError {
                                    line,
                                    message: format!("expected domain bound, found {other:?}"),
                                })
                            }
                        };
                        if hi < 0 || hi > u32::MAX as i64 - 1 {
                            return Err(ParseError { line, message: "bad domain bound".into() });
                        }
                        VarDecl::new(vname.clone(), hi as u32 + 1)
                    }
                    Tok::LBrace => {
                        p.bump();
                        let mut names = Vec::new();
                        loop {
                            let nline = p.line();
                            let n = p.expect_ident("value name")?;
                            let val = names.len() as i64;
                            match p.value_consts.get(&n) {
                                Some(&existing) if existing != val => {
                                    return Err(ParseError {
                                        line: nline,
                                        message: format!(
                                            "value name `{n}` already bound to {existing}"
                                        ),
                                    })
                                }
                                _ => {
                                    p.value_consts.insert(n.clone(), val);
                                }
                            }
                            names.push(n);
                            if *p.peek() == Tok::Comma {
                                p.bump();
                            } else {
                                break;
                            }
                        }
                        p.expect(&Tok::RBrace, "`}`")?;
                        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                        VarDecl::with_names(vname.clone(), &name_refs)
                    }
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!("expected domain, found {other:?}"),
                        })
                    }
                };
                p.expect(&Tok::Semi, "`;`")?;
                p.var_names.insert(vname, VarIdx(p.vars.len()));
                p.vars.push(decl);
            }
            Tok::Ident(kw) if kw == "process" => {
                p.bump();
                let pname = p.expect_ident("process name")?;
                p.expect_keyword("reads")?;
                let reads = p.parse_var_list()?;
                p.expect_keyword("writes")?;
                let writes = p.parse_var_list()?;
                let line = p.line();
                let decl = ProcessDecl::new(pname, reads, writes)
                    .map_err(|e| ParseError { line, message: e.to_string() })?;
                let proc_idx = ProcIdx(processes.len());
                processes.push(decl);
                p.expect(&Tok::LBrace, "`{`")?;
                while *p.peek() != Tok::RBrace {
                    // optional `Label:` prefix — an identifier followed by `:`
                    let mut label: Option<String> = None;
                    if let Tok::Ident(id) = p.peek().clone() {
                        if id != "when" && p.toks.get(p.pos + 1).map(|t| &t.0) == Some(&Tok::Colon)
                        {
                            p.bump();
                            p.bump();
                            label = Some(id);
                        }
                    }
                    p.expect_keyword("when")?;
                    let guard = p.parse_expr()?;
                    p.expect_keyword("then")?;
                    let mut assigns = Vec::new();
                    loop {
                        let aline = p.line();
                        let tname = p.expect_ident("assignment target")?;
                        let target = p.lookup_var(&tname).ok_or(ParseError {
                            line: aline,
                            message: format!("unknown variable `{tname}`"),
                        })?;
                        p.expect(&Tok::Assign, "`:=`")?;
                        let rhs = p.parse_expr()?;
                        assigns.push((target, rhs));
                        if *p.peek() == Tok::Comma {
                            p.bump();
                        } else {
                            break;
                        }
                    }
                    p.expect(&Tok::Semi, "`;`")?;
                    actions.push(Action { process: proc_idx, guard, assigns, label });
                }
                p.expect(&Tok::RBrace, "`}`")?;
            }
            Tok::Ident(kw) if kw == "invariant" => {
                p.bump();
                let e = p.parse_expr()?;
                p.expect(&Tok::Semi, "`;`")?;
                if invariant.is_some() {
                    return Err(p.error("duplicate `invariant`"));
                }
                invariant = Some(e);
            }
            other => {
                return Err(p.error(format!(
                    "expected `var`, `process`, `invariant` or `}}`, found {other:?}"
                )))
            }
        }
    }

    let invariant = invariant
        .ok_or(ParseError { line: 0, message: "missing `invariant` declaration".into() })?;
    match invariant.typecheck() {
        Ok(crate::expr::Ty::Bool) => {}
        _ => {
            return Err(ParseError { line: 0, message: "invariant must be boolean".into() });
        }
    }
    invariant
        .validate_moduli()
        .map_err(|e| ParseError { line: 0, message: format!("invariant: {e}") })?;
    let protocol = Protocol::new(p.vars, processes, actions)
        .map_err(|e| ParseError { line: 0, message: e.to_string() })?;
    Ok(ParsedProtocol { name, protocol, invariant })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOKEN_RING: &str = r#"
        // The paper's running example (4 processes, |D| = 3).
        protocol TokenRing {
          var x0 : 0..2;  var x1 : 0..2;  var x2 : 0..2;  var x3 : 0..2;

          process P0 reads x3, x0 writes x0 {
            A0: when x0 == x3 then x0 := (x3 + 1) % 3;
          }
          process P1 reads x0, x1 writes x1 {
            when (x1 + 1) % 3 == x0 then x1 := x0;
          }
          process P2 reads x1, x2 writes x2 {
            when (x2 + 1) % 3 == x1 then x2 := x1;
          }
          process P3 reads x2, x3 writes x3 {
            when (x3 + 1) % 3 == x2 then x3 := x2;
          }

          invariant (x0 == x1 && x1 == x2 && x2 == x3)
                 || ((x1 + 1) % 3 == x0 && x1 == x2 && x2 == x3)
                 || (x0 == x1 && (x2 + 1) % 3 == x1 && x2 == x3)
                 || (x0 == x1 && x1 == x2 && (x3 + 1) % 3 == x2);
        }
    "#;

    #[test]
    fn parses_token_ring() {
        let parsed = parse(TOKEN_RING).unwrap();
        assert_eq!(parsed.name, "TokenRing");
        assert_eq!(parsed.protocol.num_processes(), 4);
        assert_eq!(parsed.protocol.actions().len(), 4);
        assert_eq!(parsed.protocol.actions()[0].label.as_deref(), Some("A0"));
        assert_eq!(parsed.protocol.space().size(), 81);
        // The invariant holds at ⟨1,0,0,0⟩ (P1 has the token).
        assert!(parsed.invariant.holds(&vec![1, 0, 0, 0]));
        assert!(!parsed.invariant.holds(&vec![0, 0, 1, 2]));
    }

    #[test]
    fn parses_named_values() {
        let src = r#"
            protocol MiniMatch {
              var m0 : { left, right, self };
              var m1 : { left, right, self };
              process P0 reads m0, m1 writes m0 {
                when m0 == self && m1 == left then m0 := right;
              }
              invariant m0 == right => m1 == left;
            }
        "#;
        let parsed = parse(src).unwrap();
        assert_eq!(parsed.protocol.vars()[0].domain, 3);
        assert_eq!(parsed.protocol.vars()[0].value_name(2), "self");
        // m0 == self(2), m1 == left(0) enables the action.
        let succs = parsed.protocol.successors(&vec![2, 0]);
        assert_eq!(succs, vec![vec![1, 0]]);
    }

    #[test]
    fn empty_process_bodies_and_no_actions() {
        let src = r#"
            protocol Empty {
              var c0 : 0..2;  var c1 : 0..2;
              process P0 reads c0, c1 writes c0 { }
              process P1 reads c0, c1 writes c1 { }
              invariant c0 != c1;
            }
        "#;
        let parsed = parse(src).unwrap();
        assert!(parsed.protocol.actions().is_empty());
        assert_eq!(parsed.protocol.num_processes(), 2);
    }

    #[test]
    fn precedence_matches_expectation() {
        let src = r#"
            protocol P {
              var a : 0..3; var b : 0..3;
              process P0 reads a, b writes a { }
              invariant a + 1 % 2 == b || a == b && a < 2;
            }
        "#;
        let parsed = parse(src).unwrap();
        // a + (1 % 2) == b  || ((a == b) && (a < 2))
        assert!(parsed.invariant.holds(&vec![1, 2])); // 1+1==2
        assert!(parsed.invariant.holds(&vec![0, 0])); // a==b && a<2
        assert!(!parsed.invariant.holds(&vec![3, 3])); // a==b but a≥2; 3+1≠3
    }

    #[test]
    fn error_unknown_variable() {
        let src = "protocol P { var a : 0..1; process Q reads a, zz writes a { } invariant true; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("zz"));
    }

    #[test]
    fn error_missing_invariant() {
        let src = "protocol P { var a : 0..1; process Q reads a writes a { } }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("invariant"));
    }

    #[test]
    fn error_w_not_subset_r() {
        let src =
            "protocol P { var a : 0..1; var b : 0..1; process Q reads a writes b { } invariant true; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("w ⊆ r"));
    }

    #[test]
    fn error_duplicate_variable() {
        let src = "protocol P { var a : 0..1; var a : 0..2; process Q reads a writes a { } invariant true; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn error_nonzero_domain_start() {
        let src = "protocol P { var a : 1..3; process Q reads a writes a { } invariant true; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("start at 0"));
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "protocol P {\n  var a : 0..1;\n  var b @ 0..1;\n}";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn implies_is_right_associative() {
        let src = r#"
            protocol P {
              var a : 0..1;
              process P0 reads a writes a { }
              invariant a == 1 => a == 0 => a == 1;
            }
        "#;
        // a==1 => (a==0 => a==1): at a=1: true => (false => ...) = true.
        let parsed = parse(src).unwrap();
        assert!(parsed.invariant.holds(&vec![1]));
        assert!(parsed.invariant.holds(&vec![0]));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// header\nprotocol P { // inline\n var a : 0..1; process Q reads a writes a { } invariant true; }";
        assert!(parse(src).is_ok());
    }
}
