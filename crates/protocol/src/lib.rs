//! # stsyn-protocol — finite-state shared-memory protocols
//!
//! The modelling layer of the STSyn reproduction. It implements §II of the
//! paper ("Preliminaries") verbatim:
//!
//! * **Protocols as non-deterministic finite-state machines** — a protocol
//!   is a tuple ⟨V_p, δ_p, Π_p, T_p⟩ of finite-domain variables, a
//!   transition set (presented as Dijkstra-style guarded commands), a set
//!   of processes, and a topology ([`Protocol`]).
//! * **The distribution model** — per-process read/write restrictions with
//!   `w_j ⊆ r_j` ([`ProcessDecl`]); a process is a set of **transition
//!   groups** induced by its read restriction ([`group::GroupDesc`]): two
//!   transitions are groupmates iff they agree on the readable variables in
//!   source and target, and each leaves the unreadable variables unchanged.
//!   Groups are the atomic unit of the synthesis heuristic — a group is
//!   included or excluded as a whole.
//! * **State predicates, closure, computations** — expression-level
//!   predicates ([`expr::Expr`]) plus an explicit-state engine
//!   ([`explicit`]) providing ground-truth deadlock detection, Tarjan SCC
//!   decomposition, backward BFS ranks and convergence checking for
//!   differential testing of the symbolic engine.
//! * A small **textual DSL** ([`dsl`]) so the `stsyn` command-line tool can
//!   consume protocol descriptions from files.

#![warn(missing_docs)]

pub mod action;
pub mod dsl;
pub mod explicit;
pub mod expr;
pub mod group;
pub mod printer;
pub mod protocol;
pub mod sim;
pub mod state;
pub mod topology;

pub use action::Action;
pub use expr::{BinOp, Expr, Ty, UnOp, Value};
pub use group::GroupDesc;
pub use protocol::{Protocol, ProtocolError};
pub use state::{State, StateId, StateSpace};
pub use topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
