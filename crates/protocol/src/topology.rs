//! Variables, processes and the distribution model (topology).
//!
//! The paper models topological constraints `T_p` as per-process read and
//! write restrictions: process `P_j` may read the variables in `r_j` and
//! write those in `w_j`, with `w_j ⊆ r_j` (a process can read whatever it
//! writes). These restrictions are what give rise to transition *groups* —
//! the atomicity unit of the synthesis problem.

use std::fmt;

/// Index of a variable within a protocol (`V_p` ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarIdx(pub usize);

/// Index of a process within a protocol (`Π_p` ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcIdx(pub usize);

impl fmt::Display for VarIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ProcIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Declaration of one finite-domain variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Human-readable name (used by the DSL and pretty-printers).
    pub name: String,
    /// Domain size: values are `0 .. domain`.
    pub domain: u32,
    /// Optional symbolic names for the values, e.g.
    /// `["left", "right", "self"]` for the matching protocol. Purely
    /// cosmetic; when present, `value_names.len() == domain as usize`.
    pub value_names: Option<Vec<String>>,
}

impl VarDecl {
    /// A plain numeric variable `name : 0..domain-1`.
    pub fn new(name: impl Into<String>, domain: u32) -> Self {
        assert!(domain >= 1, "domain must be non-empty");
        VarDecl { name: name.into(), domain, value_names: None }
    }

    /// A variable whose values carry symbolic names.
    pub fn with_names(name: impl Into<String>, names: &[&str]) -> Self {
        assert!(!names.is_empty());
        VarDecl {
            name: name.into(),
            domain: names.len() as u32,
            value_names: Some(names.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Pretty-print a value of this variable.
    pub fn value_name(&self, v: u32) -> String {
        match &self.value_names {
            Some(ns) => ns[v as usize].clone(),
            None => v.to_string(),
        }
    }
}

/// Declaration of one process: its name and its locality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessDecl {
    /// Human-readable name (e.g. `P0`).
    pub name: String,
    /// Readable variables `r_j`, sorted ascending.
    pub reads: Vec<VarIdx>,
    /// Writable variables `w_j ⊆ r_j`, sorted ascending.
    pub writes: Vec<VarIdx>,
}

/// Errors raised when a process declaration violates the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A written variable was not also readable (`w_j ⊄ r_j`).
    WriteNotReadable {
        /// Name of the offending process.
        process: String,
        /// The written-but-unreadable variable.
        var: VarIdx,
    },
    /// A read or write set mentions the same variable twice.
    DuplicateVar {
        /// Name of the offending process.
        process: String,
        /// The duplicated variable.
        var: VarIdx,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::WriteNotReadable { process, var } => {
                write!(
                    f,
                    "process {process}: written variable {var} is not readable (w ⊆ r violated)"
                )
            }
            TopologyError::DuplicateVar { process, var } => {
                write!(f, "process {process}: variable {var} listed twice")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl ProcessDecl {
    /// Build a process declaration; read/write sets are sorted and
    /// validated (`w ⊆ r`, no duplicates).
    pub fn new(
        name: impl Into<String>,
        reads: Vec<VarIdx>,
        writes: Vec<VarIdx>,
    ) -> Result<Self, TopologyError> {
        let name = name.into();
        let mut reads = reads;
        let mut writes = writes;
        reads.sort_unstable();
        writes.sort_unstable();
        for w in reads.windows(2) {
            if w[0] == w[1] {
                return Err(TopologyError::DuplicateVar { process: name, var: w[0] });
            }
        }
        for w in writes.windows(2) {
            if w[0] == w[1] {
                return Err(TopologyError::DuplicateVar { process: name, var: w[0] });
            }
        }
        for &w in &writes {
            if !reads.contains(&w) {
                return Err(TopologyError::WriteNotReadable { process: name, var: w });
            }
        }
        Ok(ProcessDecl { name, reads, writes })
    }

    /// Can this process read variable `v`?
    pub fn can_read(&self, v: VarIdx) -> bool {
        self.reads.binary_search(&v).is_ok()
    }

    /// Can this process write variable `v`?
    pub fn can_write(&self, v: VarIdx) -> bool {
        self.writes.binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_process() {
        let p = ProcessDecl::new("P1", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(1)]).unwrap();
        assert!(p.can_read(VarIdx(0)));
        assert!(p.can_read(VarIdx(1)));
        assert!(!p.can_read(VarIdx(2)));
        assert!(p.can_write(VarIdx(1)));
        assert!(!p.can_write(VarIdx(0)));
    }

    #[test]
    fn write_requires_read() {
        let err = ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(1)]).unwrap_err();
        assert!(matches!(err, TopologyError::WriteNotReadable { .. }));
        assert!(err.to_string().contains("w ⊆ r"));
    }

    #[test]
    fn duplicates_rejected() {
        let err = ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(0)], vec![]).unwrap_err();
        assert!(matches!(err, TopologyError::DuplicateVar { .. }));
    }

    #[test]
    fn sets_are_sorted() {
        let p = ProcessDecl::new("P", vec![VarIdx(3), VarIdx(1)], vec![VarIdx(3)]).unwrap();
        assert_eq!(p.reads, vec![VarIdx(1), VarIdx(3)]);
    }

    #[test]
    fn value_names_roundtrip() {
        let v = VarDecl::with_names("m0", &["left", "right", "self"]);
        assert_eq!(v.domain, 3);
        assert_eq!(v.value_name(0), "left");
        assert_eq!(v.value_name(2), "self");
        let plain = VarDecl::new("x", 4);
        assert_eq!(plain.value_name(3), "3");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        VarDecl::new("x", 0);
    }
}
