//! The protocol tuple ⟨V_p, δ_p, Π_p, T_p⟩ and its validation.

use crate::action::Action;
use crate::expr::Ty;
use crate::state::{State, StateSpace};
use crate::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
use std::fmt;

/// Errors raised by [`Protocol::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// An action's guard or right-hand side failed to typecheck.
    Type(String),
    /// An action of process `p` reads a variable outside `r_p`.
    ReadsUnreadable {
        /// Label (or index) of the offending action.
        action: String,
        /// Name of the variable read illegally.
        var: String,
    },
    /// An action of process `p` writes a variable outside `w_p`.
    WritesUnwritable {
        /// Label (or index) of the offending action.
        action: String,
        /// Name of the variable written illegally.
        var: String,
    },
    /// An action assigns the same variable twice.
    DuplicateTarget {
        /// Label (or index) of the offending action.
        action: String,
        /// Name of the doubly-assigned variable.
        var: String,
    },
    /// An action can produce a value outside the target's domain.
    DomainOverflow {
        /// Label (or index) of the offending action.
        action: String,
        /// Name of the target variable.
        var: String,
        /// The out-of-domain value the right-hand side produced.
        value: i64,
    },
    /// The action's guard is not boolean-typed.
    GuardNotBool {
        /// Label (or index) of the offending action.
        action: String,
    },
    /// An action references a process index out of range.
    NoSuchProcess {
        /// Label (or index) of the offending action.
        action: String,
    },
    /// The product of the variable domains exceeds `u64` (or a domain is
    /// empty) — the instance cannot be represented.
    StateSpaceTooLarge,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Type(m) => write!(f, "{m}"),
            ProtocolError::ReadsUnreadable { action, var } => {
                write!(f, "action {action}: reads unreadable variable {var}")
            }
            ProtocolError::WritesUnwritable { action, var } => {
                write!(f, "action {action}: writes unwritable variable {var}")
            }
            ProtocolError::DuplicateTarget { action, var } => {
                write!(f, "action {action}: assigns {var} twice")
            }
            ProtocolError::DomainOverflow { action, var, value } => {
                write!(f, "action {action}: may assign {value} to {var}, outside its domain")
            }
            ProtocolError::GuardNotBool { action } => {
                write!(f, "action {action}: guard is not boolean")
            }
            ProtocolError::NoSuchProcess { action } => {
                write!(f, "action {action}: process index out of range")
            }
            ProtocolError::StateSpaceTooLarge => {
                write!(f, "state space exceeds u64 (or a variable domain is empty)")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A protocol `p = ⟨V_p, δ_p, Π_p, T_p⟩`: variables, guarded commands
/// (denoting δ_p), processes, and the read/write topology.
#[derive(Debug, Clone)]
pub struct Protocol {
    vars: Vec<VarDecl>,
    processes: Vec<ProcessDecl>,
    actions: Vec<Action>,
    space: StateSpace,
}

impl Protocol {
    /// Assemble and validate a protocol.
    ///
    /// Validation is *complete* yet cheap: because locality restricts every
    /// action to its process's readable variables, exhaustively enumerating
    /// the readable valuations (a small set, independent of `|S_p|`)
    /// suffices to prove that no reachable execution of any action
    /// overflows a domain.
    pub fn new(
        vars: Vec<VarDecl>,
        processes: Vec<ProcessDecl>,
        actions: Vec<Action>,
    ) -> Result<Self, ProtocolError> {
        let space = StateSpace::try_new(&vars).ok_or(ProtocolError::StateSpaceTooLarge)?;
        let p = Protocol { vars, processes, actions, space };
        p.validate()?;
        Ok(p)
    }

    fn action_name(&self, idx: usize) -> String {
        match &self.actions[idx].label {
            Some(l) => l.clone(),
            None => format!("#{idx}"),
        }
    }

    fn validate(&self) -> Result<(), ProtocolError> {
        for (idx, a) in self.actions.iter().enumerate() {
            let name = self.action_name(idx);
            let proc = self
                .processes
                .get(a.process.0)
                .ok_or_else(|| ProtocolError::NoSuchProcess { action: name.clone() })?;
            // Guard must be boolean; all expressions must typecheck.
            match a.guard.typecheck() {
                Ok(Ty::Bool) => {}
                Ok(Ty::Int) => return Err(ProtocolError::GuardNotBool { action: name }),
                Err(e) => return Err(ProtocolError::Type(format!("action {name}: {e}"))),
            }
            // Moduli must be nonzero constants *before* the domain-safety
            // loop below evaluates any expression.
            a.guard
                .validate_moduli()
                .map_err(|e| ProtocolError::Type(format!("action {name}: {e}")))?;
            for (_, rhs) in &a.assigns {
                rhs.validate_moduli()
                    .map_err(|e| ProtocolError::Type(format!("action {name}: {e}")))?;
            }
            for (t, rhs) in &a.assigns {
                match rhs.typecheck() {
                    Ok(Ty::Int) => {}
                    Ok(Ty::Bool) => {
                        return Err(ProtocolError::Type(format!(
                            "action {name}: boolean assigned to {}",
                            self.vars[t.0].name
                        )))
                    }
                    Err(e) => return Err(ProtocolError::Type(format!("action {name}: {e}"))),
                }
            }
            // Locality: reads ⊆ r_j, writes ⊆ w_j.
            for v in a.guard.vars() {
                if !proc.can_read(v) {
                    return Err(ProtocolError::ReadsUnreadable {
                        action: name,
                        var: self.vars[v.0].name.clone(),
                    });
                }
            }
            let mut targets: Vec<VarIdx> = Vec::new();
            for (t, rhs) in &a.assigns {
                if !proc.can_write(*t) {
                    return Err(ProtocolError::WritesUnwritable {
                        action: name,
                        var: self.vars[t.0].name.clone(),
                    });
                }
                if targets.contains(t) {
                    return Err(ProtocolError::DuplicateTarget {
                        action: name,
                        var: self.vars[t.0].name.clone(),
                    });
                }
                targets.push(*t);
                for v in rhs.vars() {
                    if !proc.can_read(v) {
                        return Err(ProtocolError::ReadsUnreadable {
                            action: name,
                            var: self.vars[v.0].name.clone(),
                        });
                    }
                }
            }
            // Domain safety over every readable valuation.
            let read_idxs: Vec<usize> = proc.reads.iter().map(|v| v.0).collect();
            for valuation in self.space.valuations(&read_idxs) {
                let mut probe: State = vec![0; self.vars.len()];
                for (pos, &vi) in read_idxs.iter().enumerate() {
                    probe[vi] = valuation[pos];
                }
                if !a.guard.holds(&probe) {
                    continue;
                }
                for (t, rhs) in &a.assigns {
                    let val = rhs.eval(&probe).as_int();
                    if val < 0 || val >= self.vars[t.0].domain as i64 {
                        return Err(ProtocolError::DomainOverflow {
                            action: name,
                            var: self.vars[t.0].name.clone(),
                            value: val,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The variable declarations `V_p`.
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// The process declarations `Π_p` with their localities `T_p`.
    pub fn processes(&self) -> &[ProcessDecl] {
        &self.processes
    }

    /// The guarded commands denoting `δ_p`.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Actions belonging to process `j`.
    pub fn actions_of(&self, j: ProcIdx) -> impl Iterator<Item = &Action> {
        self.actions.iter().filter(move |a| a.process == j)
    }

    /// The mixed-radix state-space codec.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Number of processes `k`.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Number of variables `N`.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Look up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarIdx> {
        self.vars.iter().position(|v| v.name == name).map(VarIdx)
    }

    /// Look up a process by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcIdx> {
        self.processes.iter().position(|p| p.name == name).map(ProcIdx)
    }

    /// The variables process `j` cannot read (the complement of `r_j`),
    /// sorted ascending — these induce the transition groups.
    pub fn unreadable(&self, j: ProcIdx) -> Vec<VarIdx> {
        let proc = &self.processes[j.0];
        (0..self.vars.len()).map(VarIdx).filter(|v| !proc.can_read(*v)).collect()
    }

    /// Successor states of `state` under all actions (δ_p image of a
    /// single state). Duplicates are removed; a self-loop appears as the
    /// state itself if some enabled action leaves the state unchanged.
    pub fn successors(&self, state: &State) -> Vec<State> {
        let domains: Vec<u32> = self.vars.iter().map(|v| v.domain).collect();
        let mut out: Vec<State> = Vec::new();
        for a in &self.actions {
            if let Some(next) = a.apply(state, &domains) {
                if !out.contains(&next) {
                    out.push(next);
                }
            }
        }
        out
    }

    /// Replace the action set wholesale (used by the synthesizer when
    /// materializing `p_ss` from `p` plus recovery actions). The new
    /// actions are validated against the existing topology.
    pub fn with_actions(&self, actions: Vec<Action>) -> Result<Protocol, ProtocolError> {
        Protocol::new(self.vars.clone(), self.processes.clone(), actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    /// The paper's 4-process token ring with domain {0,1,2}.
    fn token_ring() -> Protocol {
        let vars: Vec<VarDecl> = (0..4).map(|i| VarDecl::new(format!("x{i}"), 3)).collect();
        let mut processes = Vec::new();
        let mut actions = Vec::new();
        for j in 0..4usize {
            let prev = if j == 0 { 3 } else { j - 1 };
            processes.push(
                ProcessDecl::new(format!("P{j}"), vec![VarIdx(prev), VarIdx(j)], vec![VarIdx(j)])
                    .unwrap(),
            );
            let xj = Expr::var(VarIdx(j));
            let xprev = Expr::var(VarIdx(prev));
            let (guard, rhs) = if j == 0 {
                (xj.clone().eq(xprev.clone()), xprev.clone().add(Expr::int(1)).modulo(Expr::int(3)))
            } else {
                (xj.clone().add(Expr::int(1)).modulo(Expr::int(3)).eq(xprev.clone()), xprev.clone())
            };
            actions.push(Action::labeled(
                format!("A{j}"),
                ProcIdx(j),
                guard,
                vec![(VarIdx(j), rhs)],
            ));
        }
        Protocol::new(vars, processes, actions).unwrap()
    }

    #[test]
    fn token_ring_builds_and_steps() {
        let p = token_ring();
        assert_eq!(p.space().size(), 81);
        assert_eq!(p.num_processes(), 4);
        // From ⟨1,0,0,0⟩, only P1 holds the token: x1+1 == x0.
        let succs = p.successors(&vec![1, 0, 0, 0]);
        assert_eq!(succs, vec![vec![1, 1, 0, 0]]);
        // From the all-equal state, only P0 moves.
        let succs0 = p.successors(&vec![2, 2, 2, 2]);
        assert_eq!(succs0, vec![vec![0, 2, 2, 2]]);
    }

    #[test]
    fn deadlock_state_has_no_successors() {
        let p = token_ring();
        // The paper: ⟨0,0,1,2⟩ is a deadlock state of the non-stabilizing TR.
        assert!(p.successors(&vec![0, 0, 1, 2]).is_empty());
    }

    #[test]
    fn unreadable_complement() {
        let p = token_ring();
        assert_eq!(p.unreadable(ProcIdx(1)), vec![VarIdx(2), VarIdx(3)]);
        assert_eq!(p.unreadable(ProcIdx(0)), vec![VarIdx(1), VarIdx(2)]);
    }

    #[test]
    fn rejects_unreadable_guard() {
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let bad = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(1)).eq(Expr::int(0)), // reads b, unreadable
            vec![(VarIdx(0), Expr::int(1))],
        );
        let err = Protocol::new(vars, procs, vec![bad]).unwrap_err();
        assert!(matches!(err, ProtocolError::ReadsUnreadable { .. }));
    }

    #[test]
    fn rejects_unwritable_target() {
        let vars = vec![VarDecl::new("a", 2), VarDecl::new("b", 2)];
        let procs =
            vec![ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap()];
        let bad = Action::new(ProcIdx(0), Expr::Bool(true), vec![(VarIdx(1), Expr::int(0))]);
        let err = Protocol::new(vars, procs, vec![bad]).unwrap_err();
        assert!(matches!(err, ProtocolError::WritesUnwritable { .. }));
    }

    #[test]
    fn rejects_domain_overflow() {
        let vars = vec![VarDecl::new("a", 3)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        // a := a + 1 overflows when a == 2.
        let bad = Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), Expr::var(VarIdx(0)).add(Expr::int(1)))],
        );
        let err = Protocol::new(vars, procs, vec![bad]).unwrap_err();
        assert!(matches!(err, ProtocolError::DomainOverflow { value: 3, .. }));
    }

    #[test]
    fn guarded_overflow_is_fine() {
        let vars = vec![VarDecl::new("a", 3)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        // Guard protects the increment.
        let ok = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).lt(Expr::int(2)),
            vec![(VarIdx(0), Expr::var(VarIdx(0)).add(Expr::int(1)))],
        );
        assert!(Protocol::new(vars, procs, vec![ok]).is_ok());
    }

    #[test]
    fn rejects_int_guard_and_bool_rhs() {
        let vars = vec![VarDecl::new("a", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let g = Action::new(ProcIdx(0), Expr::int(1), vec![]);
        assert!(matches!(
            Protocol::new(vars.clone(), procs.clone(), vec![g]).unwrap_err(),
            ProtocolError::GuardNotBool { .. }
        ));
        let r = Action::new(ProcIdx(0), Expr::Bool(true), vec![(VarIdx(0), Expr::Bool(false))]);
        assert!(matches!(Protocol::new(vars, procs, vec![r]).unwrap_err(), ProtocolError::Type(_)));
    }

    #[test]
    fn lookups_by_name() {
        let p = token_ring();
        assert_eq!(p.var_by_name("x2"), Some(VarIdx(2)));
        assert_eq!(p.proc_by_name("P3"), Some(ProcIdx(3)));
        assert_eq!(p.var_by_name("nope"), None);
    }
}
