//! Serialize protocols back to the textual DSL.
//!
//! The synthesizer's output is a [`Protocol`]; printing it in the same
//! language the parser accepts closes the tool loop (`stsyn --emit-dsl`)
//! and gives the test suite a parse → print → parse round-trip oracle.

use crate::action::Action;
use crate::expr::{BinOp, Expr, UnOp};
use crate::protocol::Protocol;
use std::fmt::Write as _;

/// Operator precedence tiers, loosest first — mirrors the parser.
fn precedence(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Iff => 0,
        Implies => 1,
        Or => 2,
        And => 3,
        Eq | Ne | Lt | Le | Gt | Ge => 4,
        Add | Sub => 5,
        Mul | Mod => 6,
    }
}

fn op_symbol(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Mod => "%",
        Eq => "==",
        Ne => "!=",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        And => "&&",
        Or => "||",
        Implies => "=>",
        Iff => "<=>",
    }
}

/// Print an expression in DSL syntax with minimal parentheses, resolving
/// variable names (and named values on the right of `==`/`!=`) through the
/// protocol's declarations.
pub fn expr_to_dsl(protocol: &Protocol, e: &Expr) -> String {
    render(protocol, e, 0)
}

fn render(protocol: &Protocol, e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Int(i) => i.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(v) => protocol.vars()[v.0].name.clone(),
        Expr::Un(UnOp::Not, inner) => format!("!{}", render(protocol, inner, 7)),
        Expr::Un(UnOp::Neg, inner) => format!("-{}", render(protocol, inner, 7)),
        Expr::Bin(op, a, b) => {
            // `var ==/!= const` with value names.
            if matches!(op, BinOp::Eq | BinOp::Ne) {
                if let (Expr::Var(v), Expr::Int(c)) = (a.as_ref(), b.as_ref()) {
                    let decl = &protocol.vars()[v.0];
                    if decl.value_names.is_some() && *c >= 0 && (*c as u32) < decl.domain {
                        let s = format!(
                            "{} {} {}",
                            decl.name,
                            op_symbol(*op),
                            decl.value_name(*c as u32)
                        );
                        return if precedence(*op) < parent_prec { format!("({s})") } else { s };
                    }
                }
            }
            let prec = precedence(*op);
            // Left-associative chains reuse `prec` on the left and
            // `prec + 1` on the right; `=>` is right-associative, and the
            // non-associative comparisons force parens on nested compares.
            let (lp, rp) = match op {
                BinOp::Implies => (prec + 1, prec),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    (prec + 1, prec + 1)
                }
                _ => (prec, prec + 1),
            };
            let s = format!(
                "{} {} {}",
                render(protocol, a, lp),
                op_symbol(*op),
                render(protocol, b, rp)
            );
            if prec < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

fn action_to_dsl(protocol: &Protocol, a: &Action) -> String {
    let mut out = String::new();
    if let Some(l) = &a.label {
        let _ = write!(out, "{l}: ");
    }
    let _ = write!(out, "when {} then ", expr_to_dsl(protocol, &a.guard));
    for (i, (t, rhs)) in a.assigns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} := {}", protocol.vars()[t.0].name, expr_to_dsl(protocol, rhs));
    }
    out.push(';');
    out
}

/// Serialize a whole protocol (plus its invariant) as a parseable DSL
/// document.
pub fn to_dsl(name: &str, protocol: &Protocol, invariant: &Expr) -> String {
    let mut out = format!("protocol {name} {{\n");
    for v in protocol.vars() {
        match &v.value_names {
            Some(names) => {
                let _ = writeln!(out, "  var {} : {{ {} }};", v.name, names.join(", "));
            }
            None => {
                let _ = writeln!(out, "  var {} : 0..{};", v.name, v.domain - 1);
            }
        }
    }
    out.push('\n');
    for (j, proc) in protocol.processes().iter().enumerate() {
        let reads: Vec<String> =
            proc.reads.iter().map(|r| protocol.vars()[r.0].name.clone()).collect();
        let writes: Vec<String> =
            proc.writes.iter().map(|w| protocol.vars()[w.0].name.clone()).collect();
        let _ = writeln!(
            out,
            "  process {} reads {} writes {} {{",
            proc.name,
            reads.join(", "),
            writes.join(", ")
        );
        for a in protocol.actions() {
            if a.process.0 == j {
                let _ = writeln!(out, "    {}", action_to_dsl(protocol, a));
            }
        }
        out.push_str("  }\n");
    }
    let _ = writeln!(out, "\n  invariant {};", expr_to_dsl(protocol, invariant));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;

    const TOKEN_RING: &str = r#"
        protocol TokenRing {
          var x0 : 0..2;  var x1 : 0..2;

          process P0 reads x1, x0 writes x0 {
            A0: when x0 == x1 then x0 := (x1 + 1) % 3;
          }
          process P1 reads x0, x1 writes x1 {
            when (x1 + 1) % 3 == x0 then x1 := x0;
          }

          invariant x0 == x1 || (x1 + 1) % 3 == x0;
        }
    "#;

    /// Compare two protocols semantically: same spaces, same successor
    /// function, same invariant extension.
    fn semantically_equal(a: &crate::Protocol, ia: &Expr, b: &crate::Protocol, ib: &Expr) -> bool {
        if a.space().size() != b.space().size() {
            return false;
        }
        for s in a.space().states() {
            if ia.holds(&s) != ib.holds(&s) {
                return false;
            }
            let mut sa = a.successors(&s);
            let mut sb = b.successors(&s);
            sa.sort();
            sb.sort();
            if sa != sb {
                return false;
            }
        }
        true
    }

    #[test]
    fn parse_print_parse_roundtrip() {
        let p1 = dsl::parse(TOKEN_RING).unwrap();
        let text = to_dsl(&p1.name, &p1.protocol, &p1.invariant);
        let p2 = dsl::parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        assert_eq!(p2.name, "TokenRing");
        assert!(semantically_equal(&p1.protocol, &p1.invariant, &p2.protocol, &p2.invariant));
    }

    #[test]
    fn named_values_roundtrip() {
        let src = r#"
            protocol M {
              var m0 : { left, right, self };
              var m1 : { left, right, self };
              process P0 reads m0, m1 writes m0 {
                when m0 == self && m1 == left then m0 := right;
              }
              invariant m0 == right => m1 == left;
            }
        "#;
        let p1 = dsl::parse(src).unwrap();
        let text = to_dsl(&p1.name, &p1.protocol, &p1.invariant);
        assert!(text.contains("var m0 : { left, right, self };"), "{text}");
        assert!(text.contains("m1 == left"), "{text}");
        let p2 = dsl::parse(&text).unwrap();
        assert!(semantically_equal(&p1.protocol, &p1.invariant, &p2.protocol, &p2.invariant));
    }

    #[test]
    fn minimal_parentheses_are_still_correct() {
        // A nest of every precedence tier survives the round trip.
        let src = r#"
            protocol P {
              var a : 0..3; var b : 0..3;
              process P0 reads a, b writes a { }
              invariant (a + 1 * 2) % 4 == b => a < b || a == 0 && b == 1 <=> b > 2;
            }
        "#;
        let p1 = dsl::parse(src).unwrap();
        let text = to_dsl(&p1.name, &p1.protocol, &p1.invariant);
        let p2 = dsl::parse(&text).unwrap();
        assert!(semantically_equal(&p1.protocol, &p1.invariant, &p2.protocol, &p2.invariant));
    }

    #[test]
    fn empty_process_bodies_print() {
        let src = "protocol E { var a : 0..1; process Q reads a writes a { } invariant true; }";
        let p1 = dsl::parse(src).unwrap();
        let text = to_dsl(&p1.name, &p1.protocol, &p1.invariant);
        assert!(text.contains("process Q reads a writes a {"));
        assert!(dsl::parse(&text).is_ok());
    }
}
