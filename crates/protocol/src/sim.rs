//! Randomized simulation: transient-fault injection and recovery-time
//! measurement.
//!
//! Self-stabilization is a worst-case guarantee over *every* state and
//! schedule; the model checker establishes it exactly. This module
//! complements that with the practitioner's view the paper's introduction
//! motivates (soft errors, bad initialization): inject random transient
//! faults into a running protocol, drive it with a random interleaving
//! scheduler, and measure how long recovery takes.

use crate::expr::Expr;
use crate::protocol::Protocol;
use crate::state::State;

/// A small deterministic PRNG (xorshift* core seeded through SplitMix64),
/// self-contained so the crate builds without registry access. Quality is
/// far beyond what a fault-injection simulation needs; it is *not*
/// cryptographic.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seed the generator. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 step so that small/adjacent seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SimRng { state: (z ^ (z >> 31)) | 1 }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero. Uses
    /// rejection sampling so the distribution is exactly uniform.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_below bound must be nonzero");
        // Largest multiple of bound that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// A randomized interleaving scheduler plus fault injector over one
/// protocol.
pub struct Simulator<'p> {
    protocol: &'p Protocol,
    domains: Vec<u32>,
    rng: SimRng,
}

/// Aggregate results of a convergence experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceStats {
    /// Trials that reached the invariant within the step budget.
    pub converged: usize,
    /// Total trials.
    pub trials: usize,
    /// Longest observed recovery (steps), over converged trials.
    pub max_steps: usize,
    /// Mean recovery steps over converged trials.
    pub mean_steps: f64,
}

impl<'p> Simulator<'p> {
    /// A simulator with a deterministic seed (experiments reproduce).
    pub fn new(protocol: &'p Protocol, seed: u64) -> Self {
        Simulator {
            protocol,
            domains: protocol.vars().iter().map(|v| v.domain).collect(),
            rng: SimRng::new(seed),
        }
    }

    /// A uniformly random state.
    pub fn random_state(&mut self) -> State {
        self.domains.iter().map(|&d| self.rng.gen_below(d as u64) as u32).collect()
    }

    /// A transient fault: corrupt `count` randomly chosen variables with
    /// random values (models the paper's soft errors / bad
    /// initialization).
    pub fn inject_fault(&mut self, state: &mut State, count: usize) {
        for _ in 0..count {
            let v = self.rng.gen_below(state.len() as u64) as usize;
            state[v] = self.rng.gen_below(self.domains[v] as u64) as u32;
        }
    }

    /// One step under the random interleaving scheduler: a uniformly
    /// random enabled action fires. `None` when the state is silent
    /// (no action enabled).
    pub fn step(&mut self, state: &State) -> Option<State> {
        let enabled: Vec<State> = self.protocol.successors(state);
        if enabled.is_empty() {
            return None;
        }
        let pick = self.rng.gen_below(enabled.len() as u64) as usize;
        Some(enabled[pick].clone())
    }

    /// Run until `target` holds, up to `max_steps`. Returns the number of
    /// steps on success. A silent state outside the target aborts the run
    /// (a deadlock — impossible for verified stabilizing protocols).
    pub fn run_to(&mut self, mut state: State, target: &Expr, max_steps: usize) -> Option<usize> {
        for steps in 0..=max_steps {
            if target.holds(&state) {
                return Some(steps);
            }
            state = self.step(&state)?;
        }
        None
    }

    /// The full experiment: `trials` runs from random states, each given
    /// `max_steps` to reach the invariant.
    pub fn convergence_experiment(
        &mut self,
        invariant: &Expr,
        trials: usize,
        max_steps: usize,
    ) -> ConvergenceStats {
        let mut converged = 0;
        let mut total = 0usize;
        let mut max = 0usize;
        for _ in 0..trials {
            let start = self.random_state();
            if let Some(steps) = self.run_to(start, invariant, max_steps) {
                converged += 1;
                total += steps;
                max = max.max(steps);
            }
        }
        ConvergenceStats {
            converged,
            trials,
            max_steps: max,
            mean_steps: if converged > 0 { total as f64 / converged as f64 } else { 0.0 },
        }
    }

    /// Perturb-and-recover: start inside the invariant, inject a fault of
    /// `fault_size` variables, and measure recovery. Returns `None` when
    /// the run fails to recover within the budget.
    pub fn fault_recovery(
        &mut self,
        legitimate_start: State,
        invariant: &Expr,
        fault_size: usize,
        max_steps: usize,
    ) -> Option<usize> {
        debug_assert!(invariant.holds(&legitimate_start));
        let mut s = legitimate_start;
        self.inject_fault(&mut s, fault_size);
        self.run_to(s, invariant, max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};

    /// Dijkstra-style stabilizing ring (4 processes, domain 3).
    fn dijkstra4() -> (Protocol, Expr) {
        let n = 4usize;
        let vars: Vec<VarDecl> = (0..n).map(|i| VarDecl::new(format!("x{i}"), 3)).collect();
        let procs: Vec<ProcessDecl> = (0..n)
            .map(|j| {
                let prev = (j + n - 1) % n;
                ProcessDecl::new(format!("P{j}"), vec![VarIdx(prev), VarIdx(j)], vec![VarIdx(j)])
                    .unwrap()
            })
            .collect();
        let x = |i: usize| Expr::var(VarIdx(i));
        let mut actions = Vec::new();
        for j in 0..n {
            let prev = (j + n - 1) % n;
            let (g, rhs) = if j == 0 {
                (x(0).eq(x(prev)), x(prev).add(Expr::int(1)).modulo(Expr::int(3)))
            } else {
                (x(j).ne(x(prev)), x(prev))
            };
            actions.push(Action::new(ProcIdx(j), g, vec![(VarIdx(j), rhs)]));
        }
        let p = Protocol::new(vars, procs, actions).unwrap();
        // S1 in step form.
        let mut disj = vec![Expr::conj(vec![x(0).eq(x(1)), x(1).eq(x(2)), x(2).eq(x(3))])];
        for j in 1..n {
            let mut conj: Vec<Expr> = (0..j - 1).map(|i| x(i).eq(x(i + 1))).collect();
            conj.extend((j..n - 1).map(|i| x(i).eq(x(i + 1))));
            conj.push(x(j).add(Expr::int(1)).modulo(Expr::int(3)).eq(x(j - 1)));
            disj.push(Expr::conj(conj));
        }
        (p, Expr::disj(disj))
    }

    #[test]
    fn stabilizing_protocol_always_converges() {
        let (p, i) = dijkstra4();
        let mut sim = Simulator::new(&p, 42);
        let stats = sim.convergence_experiment(&i, 200, 500);
        assert_eq!(stats.converged, stats.trials, "verified protocol must always converge");
        assert!(stats.mean_steps <= stats.max_steps as f64);
    }

    #[test]
    fn fault_recovery_from_legitimate_state() {
        let (p, i) = dijkstra4();
        let mut sim = Simulator::new(&p, 7);
        for _ in 0..50 {
            let steps = sim.fault_recovery(vec![1, 1, 1, 1], &i, 2, 500).expect("must recover");
            let _ = steps;
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let (p, i) = dijkstra4();
        let a = Simulator::new(&p, 123).convergence_experiment(&i, 50, 300);
        let b = Simulator::new(&p, 123).convergence_experiment(&i, 50, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn non_stabilizing_protocol_gets_stuck() {
        // Strip the protocol to P0's action only: most states deadlock.
        let (p, i) = dijkstra4();
        let only_p0: Vec<Action> =
            p.actions().iter().filter(|a| a.process == ProcIdx(0)).cloned().collect();
        let crippled = p.with_actions(only_p0).unwrap();
        let mut sim = Simulator::new(&crippled, 1);
        let stats = sim.convergence_experiment(&i, 100, 300);
        assert!(stats.converged < stats.trials, "crippled protocol cannot always converge");
    }

    #[test]
    fn run_to_counts_zero_for_legitimate_start() {
        let (p, i) = dijkstra4();
        let mut sim = Simulator::new(&p, 5);
        assert_eq!(sim.run_to(vec![2, 2, 2, 2], &i, 10), Some(0));
    }
}
