//! Transition groups — the atomicity unit of convergence synthesis.
//!
//! Because process `P_j` cannot observe variables outside `r_j`, any local
//! move it makes is really a *set* of global transitions: one for every
//! valuation of the unreadable variables (§II, "Effect of distribution on
//! protocol representation"). A group is therefore fully described by
//!
//! * the owning process,
//! * the valuation of the readable variables in the source state
//!   ([`GroupDesc::pre`]), and
//! * the valuation of the written variables in the target state
//!   ([`GroupDesc::post`]),
//!
//! with every non-written variable unchanged. The synthesis heuristic adds
//! or removes recovery transitions *only* in whole groups; this module
//! enumerates a process's groups, expands a group into its explicit
//! transitions, and maps guarded commands onto the groups they denote.

use crate::protocol::Protocol;
use crate::state::{State, StateId};
use crate::topology::ProcIdx;

/// Canonical description of one transition group of a process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupDesc {
    /// Owning process `P_j`.
    pub process: ProcIdx,
    /// Source values of the readable variables, aligned with
    /// `processes[j].reads` (sorted order).
    pub pre: Vec<u32>,
    /// Target values of the written variables, aligned with
    /// `processes[j].writes` (sorted order).
    pub post: Vec<u32>,
}

impl GroupDesc {
    /// Is this group a self-loop (its transitions all satisfy `s1 = s0`)?
    /// True iff the written part of `post` equals the corresponding slice
    /// of `pre`.
    pub fn is_self_loop(&self, protocol: &Protocol) -> bool {
        let proc = &protocol.processes()[self.process.0];
        proc.writes.iter().zip(&self.post).all(|(w, &pv)| {
            let pos = proc.reads.binary_search(w).expect("w ⊆ r");
            self.pre[pos] == pv
        })
    }

    /// Does this group have a transition originating in `state`? (I.e. do
    /// the readable variables of `state` match `pre`?)
    pub fn applies_to(&self, protocol: &Protocol, state: &State) -> bool {
        let proc = &protocol.processes()[self.process.0];
        proc.reads.iter().zip(&self.pre).all(|(r, &pv)| state[r.0] == pv)
    }

    /// The target of this group's transition from `state` (caller must
    /// ensure [`GroupDesc::applies_to`]).
    pub fn apply(&self, protocol: &Protocol, state: &State) -> State {
        debug_assert!(self.applies_to(protocol, state));
        let proc = &protocol.processes()[self.process.0];
        let mut next = state.clone();
        for (w, &pv) in proc.writes.iter().zip(&self.post) {
            next[w.0] = pv;
        }
        next
    }

    /// Expand the group into its explicit transitions `(s0, s1)` — one per
    /// valuation of the variables `P_j` cannot read. Exponential in the
    /// number of unreadable variables, so only used by the explicit oracle
    /// engine on small instances.
    pub fn transitions(&self, protocol: &Protocol) -> Vec<(StateId, StateId)> {
        let space = protocol.space();
        let proc = &protocol.processes()[self.process.0];
        let unread: Vec<usize> = protocol.unreadable(self.process).iter().map(|v| v.0).collect();
        let mut base: State = vec![0; protocol.num_vars()];
        for (r, &pv) in proc.reads.iter().zip(&self.pre) {
            base[r.0] = pv;
        }
        let mut out = Vec::new();
        for uval in space.valuations(&unread) {
            let mut s0 = base.clone();
            for (pos, &ui) in unread.iter().enumerate() {
                s0[ui] = uval[pos];
            }
            let s1 = self.apply(protocol, &s0);
            out.push((space.encode(&s0), space.encode(&s1)));
        }
        out
    }
}

/// Enumerate **all** groups of process `j`: every readable valuation paired
/// with every written valuation. Self-loop groups are included (callers
/// that build candidate recovery sets filter them out — a self-loop can
/// never be a recovery transition, it is a one-state non-progress cycle).
pub fn all_groups_of(protocol: &Protocol, j: ProcIdx) -> Vec<GroupDesc> {
    let proc = &protocol.processes()[j.0];
    let space = protocol.space();
    let read_idxs: Vec<usize> = proc.reads.iter().map(|v| v.0).collect();
    let write_idxs: Vec<usize> = proc.writes.iter().map(|v| v.0).collect();
    let mut out = Vec::new();
    for pre in space.valuations(&read_idxs) {
        for post in space.valuations(&write_idxs) {
            out.push(GroupDesc { process: j, pre: pre.clone(), post });
        }
    }
    out
}

/// The groups denoted by the guarded commands of process `j` in `protocol`
/// — i.e. the group decomposition of `δ_p ∩ P_j`. For each readable
/// valuation satisfying some guard of `P_j`, the assignments determine the
/// written-target valuation (right-hand sides only read `r_j`, so the
/// valuation determines them).
pub fn groups_of_actions(protocol: &Protocol, j: ProcIdx) -> Vec<GroupDesc> {
    let proc = &protocol.processes()[j.0];
    let space = protocol.space();
    let read_idxs: Vec<usize> = proc.reads.iter().map(|v| v.0).collect();
    let domains: Vec<u32> = protocol.vars().iter().map(|v| v.domain).collect();
    let mut out: Vec<GroupDesc> = Vec::new();
    for a in protocol.actions_of(j) {
        for pre in space.valuations(&read_idxs) {
            let mut probe: State = vec![0; protocol.num_vars()];
            for (pos, &ri) in read_idxs.iter().enumerate() {
                probe[ri] = pre[pos];
            }
            if let Some(next) = a.apply(&probe, &domains) {
                let post: Vec<u32> = proc.writes.iter().map(|w| next[w.0]).collect();
                let g = GroupDesc { process: j, pre: pre.clone(), post };
                if !out.contains(&g) {
                    out.push(g);
                }
            }
        }
    }
    out
}

/// All groups of all processes of `protocol`'s action set — the group
/// decomposition of `δ_p`.
pub fn groups_of_protocol(protocol: &Protocol) -> Vec<GroupDesc> {
    (0..protocol.num_processes()).flat_map(|j| groups_of_actions(protocol, ProcIdx(j))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::expr::Expr;
    use crate::topology::{ProcessDecl, VarDecl, VarIdx};

    /// Two processes with one private boolean each — the x1/x2 example of
    /// §II used to introduce grouping.
    fn two_private_bits() -> Protocol {
        let vars = vec![VarDecl::new("x1", 2), VarDecl::new("x2", 2)];
        let procs = vec![
            ProcessDecl::new("P1", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap(),
            ProcessDecl::new("P2", vec![VarIdx(1)], vec![VarIdx(1)]).unwrap(),
        ];
        // P1: x1 == 0 → x1 := 1
        let a = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).eq(Expr::int(0)),
            vec![(VarIdx(0), Expr::int(1))],
        );
        Protocol::new(vars, procs, vec![a]).unwrap()
    }

    #[test]
    fn paper_grouping_example() {
        // P1's action x1: 0→1 groups ⟨0,0⟩→⟨1,0⟩ with ⟨0,1⟩→⟨1,1⟩.
        let p = two_private_bits();
        let groups = groups_of_actions(&p, ProcIdx(0));
        assert_eq!(groups.len(), 1);
        let mut trans = groups[0].transitions(&p);
        trans.sort_unstable();
        let sp = p.space();
        let enc = |a: u32, b: u32| sp.encode(&vec![a, b]);
        assert_eq!(trans, vec![(enc(0, 0), enc(1, 0)), (enc(0, 1), enc(1, 1))]);
    }

    #[test]
    fn all_groups_count() {
        let p = two_private_bits();
        // P1 reads 1 var (2 valuations) × writes 1 var (2 targets) = 4 groups.
        let groups = all_groups_of(&p, ProcIdx(0));
        assert_eq!(groups.len(), 4);
        // Exactly 2 of them are self-loops.
        let self_loops = groups.iter().filter(|g| g.is_self_loop(&p)).count();
        assert_eq!(self_loops, 2);
    }

    #[test]
    fn group_size_formula_token_ring() {
        // Paper: for TR with n processes and |D| = n-1, each group has
        // (n-1)^(n-2) transitions. Check n = 4, |D| = 3: 9 transitions.
        let n = 4usize;
        let vars: Vec<VarDecl> = (0..n).map(|i| VarDecl::new(format!("x{i}"), 3)).collect();
        let procs: Vec<ProcessDecl> = (0..n)
            .map(|j| {
                let prev = if j == 0 { n - 1 } else { j - 1 };
                ProcessDecl::new(format!("P{j}"), vec![VarIdx(prev), VarIdx(j)], vec![VarIdx(j)])
                    .unwrap()
            })
            .collect();
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let groups = all_groups_of(&p, ProcIdx(1));
        // 9 readable valuations × 3 write targets
        assert_eq!(groups.len(), 27);
        for g in &groups {
            assert_eq!(g.transitions(&p).len(), 9);
        }
    }

    #[test]
    fn applies_and_apply() {
        let p = two_private_bits();
        let g = GroupDesc { process: ProcIdx(0), pre: vec![0], post: vec![1] };
        assert!(g.applies_to(&p, &vec![0, 1]));
        assert!(!g.applies_to(&p, &vec![1, 1]));
        assert_eq!(g.apply(&p, &vec![0, 1]), vec![1, 1]);
    }

    #[test]
    fn groups_of_protocol_unions_processes() {
        let p = two_private_bits();
        assert_eq!(groups_of_protocol(&p).len(), 1); // only P1 has an action
    }

    #[test]
    fn action_groups_dedup() {
        // Two actions of the same process denoting the same group must not
        // produce duplicates.
        let vars = vec![VarDecl::new("x", 2)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let a1 = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).eq(Expr::int(0)),
            vec![(VarIdx(0), Expr::int(1))],
        );
        let a2 = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).lt(Expr::int(1)),
            vec![(VarIdx(0), Expr::var(VarIdx(0)).add(Expr::int(1)))],
        );
        let p = Protocol::new(vars, procs, vec![a1, a2]).unwrap();
        assert_eq!(groups_of_actions(&p, ProcIdx(0)).len(), 1);
    }
}
