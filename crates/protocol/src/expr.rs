//! Expressions over protocol variables.
//!
//! Guards, assignment right-hand sides and state predicates (such as the
//! paper's `S1`, `I_MM`, `I_coloring`) are all drawn from one unified,
//! simply-typed expression language: integer arithmetic (with the modular
//! operations Dijkstra's guarded commands rely on), comparisons, and the
//! boolean connectives. A small type checker rejects ill-formed trees once
//! at protocol-construction time so evaluation can be unchecked and fast.

use crate::state::State;
use crate::topology::VarIdx;
use std::fmt;

/// The two expression types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Integer-valued (variables and arithmetic).
    Int,
    /// Boolean-valued (comparisons and connectives).
    Bool,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The integer payload; panics on a boolean (prevented by typechecking).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Bool(_) => panic!("type error: expected Int"),
        }
    }

    /// The boolean payload; panics on an integer (prevented by typechecking).
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(_) => panic!("type error: expected Bool"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (Int, Int) → Int
    Add,
    /// `-` (Int, Int) → Int
    Sub,
    /// `*` (Int, Int) → Int
    Mul,
    /// `%` (Int, Int) → Int — **euclidean** remainder, always non-negative
    /// for a positive modulus, matching the paper's "addition and
    /// subtraction are in modulo 3" convention.
    Mod,
    /// `==` (T, T) → Bool
    Eq,
    /// `!=` (T, T) → Bool
    Ne,
    /// `<` (Int, Int) → Bool
    Lt,
    /// `<=` (Int, Int) → Bool
    Le,
    /// `>` (Int, Int) → Bool
    Gt,
    /// `>=` (Int, Int) → Bool
    Ge,
    /// `&&` (Bool, Bool) → Bool
    And,
    /// `||` (Bool, Bool) → Bool
    Or,
    /// `=>` (Bool, Bool) → Bool
    Implies,
    /// `<=>` (Bool, Bool) → Bool
    Iff,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Boolean negation `!`.
    Not,
    /// Integer negation `-`.
    Neg,
}

/// An expression tree over protocol variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// A protocol variable (integer-typed; domains are `0..d`).
    Var(VarIdx),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// A type error located at some subexpression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

impl Expr {
    /// Shorthand: the variable `v`.
    pub fn var(v: VarIdx) -> Expr {
        Expr::Var(v)
    }

    /// Shorthand: integer constant.
    pub fn int(i: i64) -> Expr {
        Expr::Int(i)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not operator overloading
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not operator overloading
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self % rhs` (euclidean).
    pub fn modulo(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mod, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// `self || rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// `self => rhs`.
    pub fn implies(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Implies, Box::new(self), Box::new(rhs))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not operator overloading
    pub fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }

    /// Conjunction of many expressions (`true` for an empty list).
    pub fn conj(mut es: Vec<Expr>) -> Expr {
        match es.len() {
            0 => Expr::Bool(true),
            1 => es.pop().unwrap(),
            _ => {
                let mut it = es.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |a, b| a.and(b))
            }
        }
    }

    /// Disjunction of many expressions (`false` for an empty list).
    pub fn disj(mut es: Vec<Expr>) -> Expr {
        match es.len() {
            0 => Expr::Bool(false),
            1 => es.pop().unwrap(),
            _ => {
                let mut it = es.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |a, b| a.or(b))
            }
        }
    }

    /// Infer the type, failing on operator/operand mismatches.
    pub fn typecheck(&self) -> Result<Ty, TypeError> {
        match self {
            Expr::Int(_) => Ok(Ty::Int),
            Expr::Bool(_) => Ok(Ty::Bool),
            Expr::Var(_) => Ok(Ty::Int),
            Expr::Un(UnOp::Not, e) => match e.typecheck()? {
                Ty::Bool => Ok(Ty::Bool),
                Ty::Int => Err(TypeError("`!` applied to an integer".into())),
            },
            Expr::Un(UnOp::Neg, e) => match e.typecheck()? {
                Ty::Int => Ok(Ty::Int),
                Ty::Bool => Err(TypeError("unary `-` applied to a boolean".into())),
            },
            Expr::Bin(op, a, b) => {
                let (ta, tb) = (a.typecheck()?, b.typecheck()?);
                use BinOp::*;
                match op {
                    Add | Sub | Mul | Mod => {
                        if ta == Ty::Int && tb == Ty::Int {
                            Ok(Ty::Int)
                        } else {
                            Err(TypeError(format!("arithmetic `{op:?}` needs Int operands")))
                        }
                    }
                    Lt | Le | Gt | Ge => {
                        if ta == Ty::Int && tb == Ty::Int {
                            Ok(Ty::Bool)
                        } else {
                            Err(TypeError(format!("comparison `{op:?}` needs Int operands")))
                        }
                    }
                    Eq | Ne => {
                        if ta == tb {
                            Ok(Ty::Bool)
                        } else {
                            Err(TypeError("`==`/`!=` operands must have the same type".into()))
                        }
                    }
                    And | Or | Implies | Iff => {
                        if ta == Ty::Bool && tb == Ty::Bool {
                            Ok(Ty::Bool)
                        } else {
                            Err(TypeError(format!("connective `{op:?}` needs Bool operands")))
                        }
                    }
                }
            }
        }
    }

    /// Evaluate under a state (a total valuation of variables). The tree
    /// must have typechecked; violations panic.
    pub fn eval(&self, state: &State) -> Value {
        match self {
            Expr::Int(i) => Value::Int(*i),
            Expr::Bool(b) => Value::Bool(*b),
            Expr::Var(v) => Value::Int(state[v.0] as i64),
            Expr::Un(UnOp::Not, e) => Value::Bool(!e.eval(state).as_bool()),
            Expr::Un(UnOp::Neg, e) => Value::Int(-e.eval(state).as_int()),
            Expr::Bin(op, a, b) => {
                use BinOp::*;
                match op {
                    Add => Value::Int(a.eval(state).as_int() + b.eval(state).as_int()),
                    Sub => Value::Int(a.eval(state).as_int() - b.eval(state).as_int()),
                    Mul => Value::Int(a.eval(state).as_int() * b.eval(state).as_int()),
                    Mod => {
                        let x = a.eval(state).as_int();
                        let m = b.eval(state).as_int();
                        assert!(m != 0, "modulo by zero");
                        Value::Int(x.rem_euclid(m))
                    }
                    Eq => Value::Bool(a.eval(state) == b.eval(state)),
                    Ne => Value::Bool(a.eval(state) != b.eval(state)),
                    Lt => Value::Bool(a.eval(state).as_int() < b.eval(state).as_int()),
                    Le => Value::Bool(a.eval(state).as_int() <= b.eval(state).as_int()),
                    Gt => Value::Bool(a.eval(state).as_int() > b.eval(state).as_int()),
                    Ge => Value::Bool(a.eval(state).as_int() >= b.eval(state).as_int()),
                    And => Value::Bool(a.eval(state).as_bool() && b.eval(state).as_bool()),
                    Or => Value::Bool(a.eval(state).as_bool() || b.eval(state).as_bool()),
                    Implies => Value::Bool(!a.eval(state).as_bool() || b.eval(state).as_bool()),
                    Iff => Value::Bool(a.eval(state).as_bool() == b.eval(state).as_bool()),
                }
            }
        }
    }

    /// Evaluate a boolean expression under a state.
    pub fn holds(&self, state: &State) -> bool {
        self.eval(state).as_bool()
    }

    /// Fold a variable-free integer subexpression to its value, or `None`
    /// when it mentions a variable, is boolean-typed, or divides by zero.
    fn const_value(&self) -> Option<i64> {
        match self {
            Expr::Int(i) => Some(*i),
            Expr::Bool(_) | Expr::Var(_) => None,
            Expr::Un(UnOp::Neg, e) => e.const_value().map(|v| -v),
            Expr::Un(UnOp::Not, _) => None,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.const_value()?, b.const_value()?);
                use BinOp::*;
                match op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    Mul => a.checked_mul(b),
                    Mod => (b != 0).then(|| a.rem_euclid(b)),
                    _ => None,
                }
            }
        }
    }

    /// Check every `%` divisor is a nonzero constant, so that evaluating
    /// and compiling this expression can never divide by zero. Called on
    /// every user-supplied expression (DSL parsing, [`crate::Protocol`]
    /// validation, problem construction); downstream evaluators keep plain
    /// assertions as internal invariants.
    pub fn validate_moduli(&self) -> Result<(), TypeError> {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => Ok(()),
            Expr::Un(_, e) => e.validate_moduli(),
            Expr::Bin(op, a, b) => {
                a.validate_moduli()?;
                b.validate_moduli()?;
                if *op == BinOp::Mod {
                    match b.const_value() {
                        Some(0) => Err(TypeError("modulo by zero".into())),
                        Some(_) => Ok(()),
                        None => Err(TypeError("modulo divisor must be a nonzero constant".into())),
                    }
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Collect the variables this expression mentions, sorted and deduped.
    pub fn vars(&self) -> Vec<VarIdx> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarIdx>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Un(_, e) => e.collect_vars(out),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Expr {
        Expr::var(VarIdx(i))
    }

    #[test]
    fn validate_moduli_accepts_constant_divisors() {
        assert!(v(0).add(Expr::int(1)).modulo(Expr::int(3)).validate_moduli().is_ok());
        // Constant-folded divisor: (1 + 2) is fine.
        assert!(v(0).modulo(Expr::int(1).add(Expr::int(2))).validate_moduli().is_ok());
        assert!(v(0).eq(v(1)).validate_moduli().is_ok());
    }

    #[test]
    fn validate_moduli_rejects_zero_and_variable_divisors() {
        assert!(v(0).modulo(Expr::int(0)).validate_moduli().is_err());
        // Folds to zero.
        assert!(v(0).modulo(Expr::int(2).sub(Expr::int(2))).validate_moduli().is_err());
        // A variable divisor can be zero at runtime.
        assert!(v(0).modulo(v(1)).validate_moduli().is_err());
        // Nested under other operators.
        assert!(v(0).modulo(Expr::int(0)).eq(v(1)).validate_moduli().is_err());
    }

    #[test]
    fn arithmetic_and_comparison() {
        let state: State = vec![2, 0, 1];
        let e = v(0).add(Expr::int(1)).modulo(Expr::int(3)); // (2+1)%3 = 0
        assert_eq!(e.eval(&state), Value::Int(0));
        let c = e.eq(v(1)); // 0 == 0
        assert!(c.holds(&state));
        assert!(v(2).lt(v(0)).holds(&state));
    }

    #[test]
    fn euclidean_modulo() {
        let state: State = vec![0];
        // (0 - 1) % 3 must be 2, not -1 — Dijkstra's rings count on this.
        let e = v(0).sub(Expr::int(1)).modulo(Expr::int(3));
        assert_eq!(e.eval(&state), Value::Int(2));
    }

    #[test]
    fn connectives() {
        let s: State = vec![1, 1, 0];
        let eq01 = v(0).eq(v(1));
        let eq02 = v(0).eq(v(2));
        assert!(eq01.clone().and(eq02.clone().not()).holds(&s));
        assert!(eq02.clone().implies(eq01.clone()).holds(&s)); // false ⇒ _
        assert!(!Expr::Bin(BinOp::Iff, Box::new(eq01), Box::new(eq02)).holds(&s));
    }

    #[test]
    fn conj_disj_helpers() {
        let s: State = vec![0, 0];
        assert!(Expr::conj(vec![]).holds(&s));
        assert!(!Expr::disj(vec![]).holds(&s));
        let e1 = v(0).eq(v(1));
        let e2 = v(0).ne(v(1));
        assert!(!Expr::conj(vec![e1.clone(), e2.clone()]).holds(&s));
        assert!(Expr::disj(vec![e1, e2]).holds(&s));
    }

    #[test]
    fn typecheck_accepts_well_formed() {
        let e = v(0).add(Expr::int(1)).eq(v(1)).and(v(2).lt(Expr::int(5)));
        assert_eq!(e.typecheck().unwrap(), Ty::Bool);
        assert_eq!(v(0).add(v(1)).typecheck().unwrap(), Ty::Int);
    }

    #[test]
    fn typecheck_rejects_mismatches() {
        // 1 + (x == y) is ill-typed.
        let bad = Expr::int(1).add(v(0).eq(v(1)));
        assert!(bad.typecheck().is_err());
        // !x with x integer is ill-typed.
        assert!(v(0).not().typecheck().is_err());
        // (x == y) == 3 mixes types across ==.
        let bad2 = v(0).eq(v(1)).eq(Expr::int(3));
        assert!(bad2.typecheck().is_err());
    }

    #[test]
    fn vars_are_collected_sorted_unique() {
        let e = v(3).add(v(1)).eq(v(3).sub(v(0)));
        assert_eq!(e.vars(), vec![VarIdx(0), VarIdx(1), VarIdx(3)]);
    }

    #[test]
    #[should_panic(expected = "modulo by zero")]
    fn modulo_zero_panics() {
        let s: State = vec![1];
        v(0).modulo(Expr::int(0)).eval(&s);
    }
}
