//! Guarded commands (Dijkstra's notation `grd → stmt`).
//!
//! An action belongs to one process and denotes the set of transitions
//! `(s0, s1)` where the guard holds in `s0` and the simultaneous execution
//! of the assignments yields `s1`. Locality is enforced at protocol
//! construction: the guard and every right-hand side may read only the
//! process's readable variables, and assignment targets must be writable.

use crate::expr::Expr;
use crate::state::State;
use crate::topology::{ProcIdx, VarIdx};
use std::fmt;

/// One guarded command `guard → x := e; y := f; …` of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// The owning process.
    pub process: ProcIdx,
    /// Boolean-typed enabling condition.
    pub guard: Expr,
    /// Simultaneous assignments `(target, rhs)`; targets must be distinct.
    pub assigns: Vec<(VarIdx, Expr)>,
    /// Optional label for pretty-printing (e.g. `A0`).
    pub label: Option<String>,
}

impl Action {
    /// Build an unlabeled action.
    pub fn new(process: ProcIdx, guard: Expr, assigns: Vec<(VarIdx, Expr)>) -> Self {
        Action { process, guard, assigns, label: None }
    }

    /// Build a labeled action.
    pub fn labeled(
        label: impl Into<String>,
        process: ProcIdx,
        guard: Expr,
        assigns: Vec<(VarIdx, Expr)>,
    ) -> Self {
        Action { process, guard, assigns, label: Some(label.into()) }
    }

    /// Is this action enabled in `state`?
    pub fn enabled(&self, state: &State) -> bool {
        self.guard.holds(state)
    }

    /// Execute from `state`: `Some(next)` if the guard holds, `None`
    /// otherwise. Assignments are simultaneous (all right-hand sides are
    /// evaluated in the source state). Panics if a right-hand side leaves
    /// the variable's domain — [`crate::Protocol::new`] rules this out for
    /// validated protocols.
    pub fn apply(&self, state: &State, domains: &[u32]) -> Option<State> {
        if !self.guard.holds(state) {
            return None;
        }
        let mut next = state.clone();
        for (target, rhs) in &self.assigns {
            let v = rhs.eval(state).as_int();
            let d = domains[target.0] as i64;
            assert!(
                (0..d).contains(&v),
                "assignment to {:?} yields {} outside domain 0..{}",
                target,
                v,
                d
            );
            next[target.0] = v as u32;
        }
        Some(next)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "{l}: ")?;
        }
        write!(f, "{:?} -> ", self.guard)?;
        for (i, (t, e)) in self.assigns.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{t} := {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token-ring `A0`: `x0 == x3 → x0 := (x3 + 1) % 3`.
    fn a0() -> Action {
        Action::labeled(
            "A0",
            ProcIdx(0),
            Expr::var(VarIdx(0)).eq(Expr::var(VarIdx(3))),
            vec![(VarIdx(0), Expr::var(VarIdx(3)).add(Expr::int(1)).modulo(Expr::int(3)))],
        )
    }

    #[test]
    fn apply_when_enabled() {
        let a = a0();
        let s = vec![2, 0, 0, 2];
        assert!(a.enabled(&s));
        let next = a.apply(&s, &[3, 3, 3, 3]).unwrap();
        assert_eq!(next, vec![0, 0, 0, 2]);
    }

    #[test]
    fn apply_when_disabled() {
        let a = a0();
        let s = vec![1, 0, 0, 2];
        assert!(!a.enabled(&s));
        assert!(a.apply(&s, &[3, 3, 3, 3]).is_none());
    }

    #[test]
    fn simultaneous_assignment_uses_source_state() {
        // swap-like action: x := y; y := x (in one step).
        let a = Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), Expr::var(VarIdx(1))), (VarIdx(1), Expr::var(VarIdx(0)))],
        );
        let s = vec![1, 2];
        let next = a.apply(&s, &[3, 3]).unwrap();
        assert_eq!(next, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_assignment_panics() {
        let a = Action::new(ProcIdx(0), Expr::Bool(true), vec![(VarIdx(0), Expr::int(7))]);
        a.apply(&vec![0], &[3]);
    }

    #[test]
    fn display_includes_label() {
        let a = a0();
        assert!(format!("{a}").starts_with("A0:"));
    }
}
