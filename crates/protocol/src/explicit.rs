//! Explicit-state engine: ground truth for the symbolic algorithms.
//!
//! Everything the symbolic engine computes with BDDs — deadlocks, ranks,
//! SCCs, closure and convergence — is recomputed here by brute force over
//! the enumerated state space. The synthesis pipeline never calls this on
//! large instances; its role is differential testing (the property tests
//! assert symbolic == explicit on every randomly generated protocol) and
//! the explicit-vs-symbolic ablation benchmark.

use crate::expr::Expr;
use crate::protocol::Protocol;
use crate::state::StateId;

/// A dense bitset over the state space, with the set algebra the
/// convergence definitions need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSet {
    words: Vec<u64>,
    len: usize,
}

impl StateSet {
    /// An empty set over a space of `len` states.
    pub fn empty(len: usize) -> Self {
        StateSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// The full set over a space of `len` states.
    pub fn full(len: usize) -> Self {
        let mut s = StateSet { words: vec![u64::MAX; len.div_ceil(64)], len };
        s.trim();
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Number of states the space holds (not the cardinality).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert a state.
    #[inline]
    pub fn insert(&mut self, id: StateId) {
        self.words[(id / 64) as usize] |= 1 << (id % 64);
    }

    /// Remove a state.
    #[inline]
    pub fn remove(&mut self, id: StateId) {
        self.words[(id / 64) as usize] &= !(1 << (id % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: StateId) -> bool {
        (self.words[(id / 64) as usize] >> (id % 64)) & 1 == 1
    }

    /// Cardinality.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &StateSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &StateSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference.
    pub fn subtract(&mut self, other: &StateSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Complement within the universe.
    pub fn complement(&self) -> StateSet {
        let mut out = StateSet { words: self.words.iter().map(|w| !w).collect(), len: self.len };
        out.trim();
        out
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u64 * 64 + b as u64)
                }
            })
        })
    }
}

/// The set of states satisfying a boolean expression.
pub fn predicate_states(protocol: &Protocol, pred: &Expr) -> StateSet {
    let space = protocol.space();
    let n = space.size() as usize;
    let mut out = StateSet::empty(n);
    for (id, s) in space.states().enumerate() {
        if pred.holds(&s) {
            out.insert(id as StateId);
        }
    }
    out
}

/// A transition graph over the explicit state space in compressed
/// sparse-row form, with both successor and predecessor adjacency.
#[derive(Debug, Clone)]
pub struct ExplicitGraph {
    n: usize,
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    pred_off: Vec<u32>,
    pred: Vec<u32>,
}

impl ExplicitGraph {
    /// Build from an edge list (duplicates are merged).
    pub fn from_edges(n: usize, mut edges: Vec<(StateId, StateId)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut succ_off = vec![0u32; n + 1];
        for &(s, _) in &edges {
            succ_off[s as usize + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        let succ: Vec<u32> = edges.iter().map(|&(_, t)| t as u32).collect();
        // Predecessors: sort by target.
        let mut by_target = edges;
        by_target.sort_unstable_by_key(|&(s, t)| (t, s));
        let mut pred_off = vec![0u32; n + 1];
        for &(_, t) in &by_target {
            pred_off[t as usize + 1] += 1;
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let pred: Vec<u32> = by_target.iter().map(|&(s, _)| s as u32).collect();
        ExplicitGraph { n, succ_off, succ, pred_off, pred }
    }

    /// Build the full transition graph `δ_p` of a protocol by enumerating
    /// every state. Panics if the space exceeds `2^26` states — the
    /// explicit engine is an oracle for small instances only.
    pub fn of_protocol(protocol: &Protocol) -> Self {
        let space = protocol.space();
        assert!(
            space.size() <= 1 << 26,
            "state space too large for the explicit engine ({} states)",
            space.size()
        );
        let n = space.size() as usize;
        let domains: Vec<u32> = protocol.vars().iter().map(|v| v.domain).collect();
        let mut edges = Vec::new();
        for (id, s) in space.states().enumerate() {
            for a in protocol.actions() {
                if let Some(next) = a.apply(&s, &domains) {
                    edges.push((id as StateId, space.encode(&next)));
                }
            }
        }
        Self::from_edges(n, edges)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of (deduplicated) transitions.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Successors of `s`.
    pub fn successors(&self, s: StateId) -> &[u32] {
        &self.succ[self.succ_off[s as usize] as usize..self.succ_off[s as usize + 1] as usize]
    }

    /// Predecessors of `s`.
    pub fn predecessors(&self, s: StateId) -> &[u32] {
        &self.pred[self.pred_off[s as usize] as usize..self.pred_off[s as usize + 1] as usize]
    }

    /// States with no outgoing transition at all; intersect with `¬I` for
    /// the paper's deadlock predicate.
    pub fn deadlocks(&self) -> StateSet {
        let mut out = StateSet::empty(self.n);
        for s in 0..self.n {
            if self.successors(s as StateId).is_empty() {
                out.insert(s as StateId);
            }
        }
        out
    }

    /// Backward BFS ranks from `target`: `rank[s]` is the length of the
    /// shortest path from `s` to any state in `target` (0 inside the
    /// target), or `u32::MAX` (∞) if `target` is unreachable from `s`.
    /// This is exactly ComputeRanks (Fig. 2) evaluated explicitly.
    pub fn backward_ranks(&self, target: &StateSet) -> Vec<u32> {
        let mut rank = vec![u32::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        for s in target.iter() {
            rank[s as usize] = 0;
            queue.push_back(s as u32);
        }
        while let Some(s) = queue.pop_front() {
            let r = rank[s as usize];
            for &p in self.predecessors(s as StateId) {
                if rank[p as usize] == u32::MAX {
                    rank[p as usize] = r + 1;
                    queue.push_back(p);
                }
            }
        }
        rank
    }

    /// The restriction `δ|X`: transitions that start **and** end in `X`.
    pub fn restrict(&self, x: &StateSet) -> ExplicitGraph {
        let mut edges = Vec::new();
        for s in x.iter() {
            for &t in self.successors(s) {
                if x.contains(t as StateId) {
                    edges.push((s, t as StateId));
                }
            }
        }
        ExplicitGraph::from_edges(self.n, edges)
    }

    /// Tarjan's SCC decomposition (iterative). Returns `comp[s]` — the
    /// component id of each state — and the number of components.
    /// Components are numbered in reverse topological order of the
    /// condensation (standard Tarjan numbering).
    pub fn tarjan_scc(&self) -> (Vec<u32>, usize) {
        const UNVISITED: u32 = u32::MAX;
        let n = self.n;
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut comp = vec![UNVISITED; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut call: Vec<(u32, usize)> = Vec::new(); // (node, next-child position)
        let mut next_index = 0u32;
        let mut next_comp = 0u32;
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            call.push((root, 0));
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                }
                let succs = self.successors(v as StateId);
                if *ci < succs.len() {
                    let w = succs[*ci];
                    *ci += 1;
                    if index[w as usize] == UNVISITED {
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    if low[v as usize] == index[v as usize] {
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w as usize] = false;
                            comp[w as usize] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                }
            }
        }
        (comp, next_comp as usize)
    }

    /// The states lying on some cycle (member of a non-trivial SCC, or a
    /// state with a self-loop).
    pub fn cyclic_states(&self) -> StateSet {
        let (comp, ncomp) = self.tarjan_scc();
        let mut size = vec![0u32; ncomp];
        for &c in &comp {
            if c != u32::MAX {
                size[c as usize] += 1;
            }
        }
        let mut out = StateSet::empty(self.n);
        for (s, &c) in comp.iter().enumerate() {
            let nontrivial =
                size[c as usize] > 1 || self.successors(s as StateId).contains(&(s as u32));
            if nontrivial {
                out.insert(s as StateId);
            }
        }
        out
    }

    /// Extract one concrete cycle (a state sequence whose last element has
    /// a transition back to the first), if any exists. Used to exhibit the
    /// Gouda–Acharya matching flaw as an actual trace.
    pub fn find_cycle(&self) -> Option<Vec<StateId>> {
        let cyc = self.cyclic_states();
        let start = cyc.iter().next()?;
        // Walk successors inside the cyclic set until we revisit a state.
        let mut path: Vec<StateId> = vec![start];
        let mut pos = std::collections::HashMap::new();
        pos.insert(start, 0usize);
        let mut cur = start;
        loop {
            let next = *self
                .successors(cur)
                .iter()
                .find(|&&t| cyc.contains(t as StateId))
                .expect("cyclic state must have a cyclic successor")
                as StateId;
            if let Some(&i) = pos.get(&next) {
                return Some(path[i..].to_vec());
            }
            pos.insert(next, path.len());
            path.push(next);
            cur = next;
        }
    }
}

/// Is `i` closed in the protocol? (Every transition from `I` ends in `I` —
/// the first requirement of self-stabilization.)
pub fn is_closed(protocol: &Protocol, i: &Expr) -> bool {
    let space = protocol.space();
    let domains: Vec<u32> = protocol.vars().iter().map(|v| v.domain).collect();
    for s in space.states() {
        if !i.holds(&s) {
            continue;
        }
        for a in protocol.actions() {
            if let Some(next) = a.apply(&s, &domains) {
                if !i.holds(&next) {
                    return false;
                }
            }
        }
    }
    true
}

/// Verdict of an explicit convergence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Deadlock states outside `I` (counterexamples to Proposition II.1's
    /// first condition).
    pub deadlocks_outside: Vec<StateId>,
    /// Does `δ_p | ¬I` contain a non-progress cycle?
    pub cycle_outside: Option<Vec<StateId>>,
    /// Are there states from which no computation reaches `I`?
    pub unreachable_from: Vec<StateId>,
}

impl ConvergenceReport {
    /// Strong convergence per Proposition II.1: no deadlocks in `¬I`, no
    /// non-progress cycles in `δ_p|¬I`.
    pub fn strongly_converges(&self) -> bool {
        self.deadlocks_outside.is_empty() && self.cycle_outside.is_none()
    }

    /// Weak convergence: from every state some computation reaches `I`.
    pub fn weakly_converges(&self) -> bool {
        self.unreachable_from.is_empty()
    }
}

/// Run the full explicit convergence analysis of `protocol` against the
/// legitimate-state predicate `i`.
pub fn check_convergence(protocol: &Protocol, i: &Expr) -> ConvergenceReport {
    let graph = ExplicitGraph::of_protocol(protocol);
    let i_set = predicate_states(protocol, i);
    let not_i = i_set.complement();

    let mut deadlocks = graph.deadlocks();
    deadlocks.intersect_with(&not_i);

    let restricted = graph.restrict(&not_i);
    let cycle_outside = restricted.find_cycle();

    let ranks = graph.backward_ranks(&i_set);
    let unreachable_from: Vec<StateId> =
        (0..graph.num_states() as StateId).filter(|&s| ranks[s as usize] == u32::MAX).collect();

    ConvergenceReport {
        deadlocks_outside: deadlocks.iter().collect(),
        cycle_outside,
        unreachable_from,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::expr::Expr;
    use crate::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};

    fn v(i: usize) -> Expr {
        Expr::var(VarIdx(i))
    }

    /// One counter modulo 4 that increments forever: 0→1→2→3→0.
    fn counter() -> Protocol {
        let vars = vec![VarDecl::new("c", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let a = Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), v(0).add(Expr::int(1)).modulo(Expr::int(4)))],
        );
        Protocol::new(vars, procs, vec![a]).unwrap()
    }

    /// Two counters where only c0 < 3 increments c0 — converges to c0 == 3.
    fn ramp() -> Protocol {
        let vars = vec![VarDecl::new("c", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let a = Action::new(
            ProcIdx(0),
            v(0).lt(Expr::int(3)),
            vec![(VarIdx(0), v(0).add(Expr::int(1)))],
        );
        Protocol::new(vars, procs, vec![a]).unwrap()
    }

    #[test]
    fn stateset_algebra() {
        let mut a = StateSet::empty(130);
        a.insert(0);
        a.insert(64);
        a.insert(129);
        assert_eq!(a.count(), 3);
        assert!(a.contains(64));
        let c = a.complement();
        assert_eq!(c.count(), 127);
        assert!(!c.contains(129));
        let mut b = StateSet::full(130);
        assert_eq!(b.count(), 130);
        b.subtract(&a);
        assert_eq!(b.count(), 127);
        b.union_with(&a);
        assert_eq!(b.count(), 130);
        a.remove(64);
        assert!(!a.contains(64));
        let members: Vec<StateId> = a.iter().collect();
        assert_eq!(members, vec![0, 129]);
    }

    #[test]
    fn graph_of_counter_is_one_cycle() {
        let g = ExplicitGraph::of_protocol(&counter());
        assert_eq!(g.num_states(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.predecessors(0), &[3]);
        let (comp, n) = g.tarjan_scc();
        assert_eq!(n, 1);
        assert!(comp.iter().all(|&c| c == comp[0]));
        assert_eq!(g.cyclic_states().count(), 4);
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 4);
    }

    #[test]
    fn ramp_converges_strongly() {
        let p = ramp();
        let i = v(0).eq(Expr::int(3));
        assert!(is_closed(&p, &i));
        let report = check_convergence(&p, &i);
        assert!(report.strongly_converges());
        assert!(report.weakly_converges());
    }

    #[test]
    fn counter_mod4_is_not_closed_in_singleton() {
        let p = counter();
        let i = v(0).eq(Expr::int(3));
        assert!(!is_closed(&p, &i)); // 3 → 0 leaves I
    }

    #[test]
    fn ranks_are_shortest_distances() {
        let p = ramp();
        let g = ExplicitGraph::of_protocol(&p);
        let i = predicate_states(&p, &v(0).eq(Expr::int(3)));
        let ranks = g.backward_ranks(&i);
        assert_eq!(ranks, vec![3, 2, 1, 0]);
    }

    #[test]
    fn infinite_rank_when_unreachable() {
        // Protocol with no actions: every ¬I state has rank ∞.
        let vars = vec![VarDecl::new("c", 3)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let g = ExplicitGraph::of_protocol(&p);
        let i = predicate_states(&p, &v(0).eq(Expr::int(0)));
        let ranks = g.backward_ranks(&i);
        assert_eq!(ranks, vec![0, u32::MAX, u32::MAX]);
        let report = check_convergence(&p, &v(0).eq(Expr::int(0)));
        assert!(!report.weakly_converges());
        assert_eq!(report.deadlocks_outside.len(), 2);
    }

    #[test]
    fn restrict_drops_boundary_edges() {
        let g = ExplicitGraph::of_protocol(&counter());
        let mut x = StateSet::empty(4);
        x.insert(1);
        x.insert(2);
        let r = g.restrict(&x);
        assert_eq!(r.num_edges(), 1); // only 1→2 stays
        assert!(r.find_cycle().is_none());
    }

    #[test]
    fn tarjan_on_dag_gives_singletons() {
        let g = ExplicitGraph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        let (comp, n) = g.tarjan_scc();
        assert_eq!(n, 4);
        // Reverse topological: comp[3] < comp[2] < comp[1] < comp[0].
        assert!(comp[3] < comp[2] && comp[2] < comp[1] && comp[1] < comp[0]);
        assert!(g.cyclic_states().is_empty());
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = ExplicitGraph::from_edges(3, vec![(0, 1), (1, 1), (1, 2)]);
        let cyc = g.cyclic_states();
        assert_eq!(cyc.iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.find_cycle().unwrap(), vec![1]);
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let g = ExplicitGraph::from_edges(2, vec![(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }
}
