//! States and the mixed-radix state space.
//!
//! A state is a valuation of every protocol variable (`s[i]` is the value
//! of variable `i`). For explicit-state computations states are packed into
//! a single `u64` index by mixed-radix positional encoding, giving dense
//! array-indexed algorithms (BFS, Tarjan) over the whole space.

use crate::topology::VarDecl;

/// A state: one value per variable, `state[i] < domain(i)`.
pub type State = Vec<u32>;

/// A packed state index in `0 .. StateSpace::size()`.
pub type StateId = u64;

/// The mixed-radix codec for a protocol's state space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpace {
    radices: Vec<u32>,
    /// `weights[i]` = product of radices of variables `< i`.
    weights: Vec<u64>,
    size: u64,
}

impl StateSpace {
    /// Build the codec from variable declarations. Panics if the total
    /// space exceeds `u64` (no realistic instance comes close); callers on
    /// user-input paths use [`StateSpace::try_new`] instead.
    pub fn new(vars: &[VarDecl]) -> Self {
        Self::try_new(vars).expect("state space exceeds u64")
    }

    /// Fallible variant of [`StateSpace::new`]: `None` when the state
    /// space does not fit in `u64` or a domain is empty.
    #[must_use = "failures are reported through the Result"]
    pub fn try_new(vars: &[VarDecl]) -> Option<Self> {
        let radices: Vec<u32> = vars.iter().map(|v| v.domain).collect();
        let mut weights = Vec::with_capacity(radices.len());
        let mut acc: u64 = 1;
        for &r in &radices {
            if r < 1 {
                return None;
            }
            weights.push(acc);
            acc = acc.checked_mul(r as u64)?;
        }
        Some(StateSpace { radices, weights, size: acc })
    }

    /// Total number of states `|S_p|`.
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.radices.len()
    }

    /// Domain size of variable `i`.
    #[inline]
    pub fn domain(&self, i: usize) -> u32 {
        self.radices[i]
    }

    /// Pack a state into its index.
    pub fn encode(&self, state: &State) -> StateId {
        debug_assert_eq!(state.len(), self.radices.len());
        let mut id: u64 = 0;
        for (i, &v) in state.iter().enumerate() {
            debug_assert!(v < self.radices[i], "value {v} out of domain for var {i}");
            id += self.weights[i] * v as u64;
        }
        id
    }

    /// Unpack an index into a state.
    pub fn decode(&self, mut id: StateId) -> State {
        debug_assert!(id < self.size);
        let mut s = Vec::with_capacity(self.radices.len());
        for &r in &self.radices {
            s.push((id % r as u64) as u32);
            id /= r as u64;
        }
        s
    }

    /// Read variable `i` straight out of a packed index without a full
    /// decode.
    pub fn value_of(&self, id: StateId, i: usize) -> u32 {
        ((id / self.weights[i]) % self.radices[i] as u64) as u32
    }

    /// Replace variable `i` in a packed index without a full decode.
    pub fn with_value(&self, id: StateId, i: usize, v: u32) -> StateId {
        debug_assert!(v < self.radices[i]);
        let old = self.value_of(id, i);
        id - old as u64 * self.weights[i] + v as u64 * self.weights[i]
    }

    /// Iterate all states in index order.
    pub fn states(&self) -> impl Iterator<Item = State> + '_ {
        (0..self.size).map(|id| self.decode(id))
    }

    /// Iterate every valuation of an arbitrary subset of variables
    /// (identified by index), in lexicographic order. Used to enumerate a
    /// process's readable or writable valuations when forming transition
    /// groups.
    pub fn valuations<'a>(&'a self, vars: &'a [usize]) -> impl Iterator<Item = Vec<u32>> + 'a {
        let total: u64 = vars.iter().map(|&i| self.radices[i] as u64).product();
        (0..total).map(move |mut k| {
            let mut val = Vec::with_capacity(vars.len());
            for &i in vars {
                let r = self.radices[i] as u64;
                val.push((k % r) as u32);
                k /= r;
            }
            val
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls(domains: &[u32]) -> Vec<VarDecl> {
        domains.iter().enumerate().map(|(i, &d)| VarDecl::new(format!("x{i}"), d)).collect()
    }

    #[test]
    fn roundtrip_all_states() {
        let sp = StateSpace::new(&decls(&[3, 2, 4]));
        assert_eq!(sp.size(), 24);
        for id in 0..sp.size() {
            let s = sp.decode(id);
            assert_eq!(sp.encode(&s), id);
            for (i, &val) in s.iter().enumerate() {
                assert_eq!(sp.value_of(id, i), val);
            }
        }
    }

    #[test]
    fn with_value_edits_one_position() {
        let sp = StateSpace::new(&decls(&[3, 3, 3]));
        let id = sp.encode(&vec![1, 2, 0]);
        let id2 = sp.with_value(id, 1, 0);
        assert_eq!(sp.decode(id2), vec![1, 0, 0]);
        // Unchanged positions really unchanged.
        assert_eq!(sp.value_of(id2, 0), 1);
        assert_eq!(sp.value_of(id2, 2), 0);
    }

    #[test]
    fn states_iterator_is_exhaustive_and_unique() {
        let sp = StateSpace::new(&decls(&[2, 3]));
        let all: Vec<State> = sp.states().collect();
        assert_eq!(all.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for s in &all {
            assert!(seen.insert(s.clone()));
        }
    }

    #[test]
    fn valuations_over_subset() {
        let sp = StateSpace::new(&decls(&[2, 3, 2]));
        let vals: Vec<Vec<u32>> = sp.valuations(&[0, 2]).collect();
        assert_eq!(vals.len(), 4);
        assert!(vals.contains(&vec![1, 0]));
        assert!(vals.contains(&vec![0, 1]));
        // Order of the subset matters for the produced tuples.
        let rev: Vec<Vec<u32>> = sp.valuations(&[2, 0]).collect();
        assert_eq!(rev.len(), 4);
    }

    #[test]
    fn singleton_domain() {
        let sp = StateSpace::new(&decls(&[1, 5]));
        assert_eq!(sp.size(), 5);
        for id in 0..5 {
            assert_eq!(sp.value_of(id, 0), 0);
        }
    }
}
