//! Property test: the DSL printer and parser are mutual inverses up to
//! semantics — for random protocols, `parse(print(p))` has the same state
//! space, the same successor function, and the same invariant extension.

// Property tests need the external `proptest` crate, which is not
// available offline; opt in with `--features proptest` after restoring the
// dev-dependency (see Cargo.toml).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use stsyn_protocol::action::Action;
use stsyn_protocol::dsl;
use stsyn_protocol::expr::Expr;
use stsyn_protocol::printer::to_dsl;
use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
use stsyn_protocol::Protocol;

/// Serializable protocol description (mirrors tests/properties.rs but
/// includes named-value variables to exercise that printer path too).
#[derive(Debug, Clone)]
struct Spec {
    domains: Vec<(u32, bool)>, // (size, use value names)
    localities: Vec<(u8, u8)>,
    actions: Vec<(usize, Vec<(usize, u32)>, usize, Option<usize>, u32)>,
    invariant: Vec<Vec<(usize, u32)>>,
}

const NAMES: [&str; 3] = ["red", "green", "blue"];

fn build(spec: &Spec) -> Option<(Protocol, Expr)> {
    let nvars = spec.domains.len();
    let vars: Vec<VarDecl> = spec
        .domains
        .iter()
        .enumerate()
        .map(|(i, &(d, named))| {
            if named && d <= 3 {
                VarDecl::with_names(format!("v{i}"), &NAMES[..d as usize])
            } else {
                VarDecl::new(format!("v{i}"), d)
            }
        })
        .collect();
    let mut procs = Vec::new();
    for (j, &(rmask, wmask)) in spec.localities.iter().enumerate() {
        let reads: Vec<VarIdx> = (0..nvars).filter(|i| rmask >> i & 1 == 1).map(VarIdx).collect();
        let writes: Vec<VarIdx> =
            (0..nvars).filter(|i| (wmask & rmask) >> i & 1 == 1).map(VarIdx).collect();
        if reads.is_empty() || writes.is_empty() {
            return None;
        }
        procs.push(ProcessDecl::new(format!("P{j}"), reads, writes).ok()?);
    }
    let domains: Vec<u32> = spec.domains.iter().map(|&(d, _)| d).collect();
    let mut actions = Vec::new();
    for (pj, guard_lits, wslot, src, val) in &spec.actions {
        let pj = pj % procs.len();
        let proc = &procs[pj];
        let guard = Expr::conj(
            guard_lits
                .iter()
                .map(|&(slot, v)| {
                    let var = proc.reads[slot % proc.reads.len()];
                    Expr::var(var).eq(Expr::int((v % domains[var.0]) as i64))
                })
                .collect(),
        );
        let target = proc.writes[wslot % proc.writes.len()];
        let d = domains[target.0] as i64;
        let rhs = match src {
            Some(rslot) => {
                let from = proc.reads[rslot % proc.reads.len()];
                Expr::var(from).modulo(Expr::int(d))
            }
            None => Expr::int((*val as i64) % d),
        };
        actions.push(Action::new(ProcIdx(pj), guard, vec![(target, rhs)]));
    }
    let invariant = Expr::disj(
        spec.invariant
            .iter()
            .map(|conj| {
                Expr::conj(
                    conj.iter()
                        .map(|&(vi, val)| {
                            let vi = vi % nvars;
                            Expr::var(VarIdx(vi)).eq(Expr::int((val % domains[vi]) as i64))
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    let p = Protocol::new(vars, procs, actions).ok()?;
    Some((p, invariant))
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        proptest::collection::vec((2u32..=4, any::<bool>()), 2..=3),
        proptest::collection::vec((1u8..8, 1u8..8), 1..=3),
        proptest::collection::vec(
            (
                0usize..3,
                proptest::collection::vec((0usize..3, 0u32..4), 0..=2),
                0usize..3,
                proptest::option::of(0usize..3),
                0u32..4,
            ),
            0..=5,
        ),
        proptest::collection::vec(proptest::collection::vec((0usize..3, 0u32..4), 1..=2), 1..=2),
    )
        .prop_map(|(domains, localities, actions, invariant)| Spec {
            domains,
            localities,
            actions,
            invariant,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip_preserves_semantics(spec in arb_spec()) {
        let Some((p, i)) = build(&spec) else { return Ok(()); };
        let text = to_dsl("RoundTrip", &p, &i);
        let reparsed = dsl::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}\n{text}")))?;
        prop_assert_eq!(reparsed.protocol.space().size(), p.space().size());
        prop_assert_eq!(reparsed.protocol.num_processes(), p.num_processes());
        for s in p.space().states() {
            let mut a = p.successors(&s);
            let mut b = reparsed.protocol.successors(&s);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "successors differ at {:?}\n{}", s, text);
            prop_assert_eq!(
                i.holds(&s),
                reparsed.invariant.holds(&s),
                "invariant differs at {:?}\n{}",
                s,
                text
            );
        }
    }
}
