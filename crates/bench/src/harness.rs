//! A minimal, dependency-free micro-benchmark harness with a
//! criterion-compatible surface.
//!
//! The workspace must build and run offline, so the external `criterion`
//! crate is not available. The `benches/*.rs` targets only use a narrow
//! slice of its API — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — which this module
//! reimplements with the same shapes, so the bench files read exactly like
//! standard criterion benchmarks.
//!
//! Measurement model: one untimed warm-up call, then `sample_size` timed
//! calls per benchmark; minimum / median / mean wall times are printed.
//! This is deliberately simpler than criterion (no outlier analysis, no
//! iteration batching) but is stable enough for the coarse, multi-ms
//! synthesis workloads benchmarked here.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level handle passed to every registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 20 }
    }
}

/// A named benchmark identifier, `function/parameter` style.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a name prefix and a sample count.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.times);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b, input);
        report(&self.name, &id.label, &b.times);
        self
    }

    /// End the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Collects timed samples of one routine.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: one untimed warm-up call, then `sample_size` timed
    /// calls. The routine's output is passed through [`std::hint::black_box`]
    /// so the optimizer cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn report(group: &str, label: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{group}/{label}: no samples (Bencher::iter never called)");
        return;
    }
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{label}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
        sorted.len()
    );
}

/// Register benchmark functions under a group name, criterion style:
/// `criterion_group!(benches, bench_a, bench_b);` defines `fn benches()`
/// that runs each function with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main()` running the given groups, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly a filter); this
            // harness runs everything regardless.
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("harness_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        group.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &n| b.iter(|| n + n));
        group.finish();
    }

    #[test]
    fn harness_runs_and_collects_samples() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("img", 4).to_string(), "img/4");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }
}
