//! # stsyn-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VII):
//!
//! | Paper artifact | Series | Harness entry point |
//! |---|---|---|
//! | Fig. 5 ("Table 1") | local correctability of the 4 case studies | [`table1_local_correctability`] |
//! | Fig. 6 | matching: ranking / SCC / total time vs K | [`matching_sweep`] |
//! | Fig. 7 | matching: avg SCC size & program size (BDD nodes) vs K | [`matching_sweep`] |
//! | Fig. 8 | coloring: times vs K (5..40) | [`coloring_sweep`] |
//! | Fig. 9 | coloring: BDD nodes vs K | [`coloring_sweep`] |
//! | Fig. 10 | token ring (&#124;D&#124;=4): times vs n | [`token_ring_sweep`] |
//! | Fig. 11 | token ring (&#124;D&#124;=4): BDD nodes vs n | [`token_ring_sweep`] |
//! | §VI-C | TR² synthesis | [`two_ring_run`] |
//! | §VII (omitted study) | domain-size sweep | [`domain_sweep`] |
//! | §VII (omitted study) | recovery-schedule sweep | [`schedule_sweep_matching`] |
//!
//! One [`Row`] per instance carries **both** the time series (Figs. 6, 8,
//! 10) and the space series (Figs. 7, 9, 11), because the paper draws the
//! two figures of each pair from the same runs. The `reproduce` binary
//! prints them in the paper's layout and writes CSV files; the Criterion
//! benches under `benches/` wrap the same entry points for statistically
//! sound timing.

#![warn(missing_docs)]

pub mod harness;

use std::fmt::Write as _;
use stsyn_cases::{coloring, matching, mis, token_ring, two_ring};
use stsyn_core::analysis::{local_correctability, LocalCorrectability};
use stsyn_core::{AddConvergence, Engine, JobSpec, Options};

/// One synthesis run's measurements — a point on every series of one
/// figure pair.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of processes.
    pub processes: usize,
    /// `|S_p|` as a string (exceeds u64 for coloring(40)).
    pub states: String,
    /// Fig. 6/8/10 series: seconds in `ComputeRanks`.
    pub ranking_secs: f64,
    /// Fig. 6/8/10 series: seconds in SCC detection.
    pub scc_secs: f64,
    /// Fig. 6/8/10 series: total synthesis seconds.
    pub total_secs: f64,
    /// Fig. 7/9/11 series: average SCC size in BDD nodes.
    pub avg_scc_nodes: f64,
    /// Fig. 7/9/11 series: total program size in BDD nodes.
    pub program_nodes: usize,
    /// Supplementary: peak live BDD nodes.
    pub peak_nodes: usize,
    /// Supplementary: number of SCCs resolved.
    pub sccs: usize,
    /// Supplementary: recovery groups added.
    pub groups_added: usize,
    /// Which pass finished (0 = none needed).
    pub pass: u8,
    /// Did the independent model check pass?
    pub verified: bool,
}

fn run_one(p: stsyn_protocol::Protocol, i: stsyn_protocol::Expr, states: String) -> Row {
    let k = p.num_processes();
    let problem = AddConvergence::new(p, i).expect("well-typed invariant");
    let mut outcome = problem.synthesize(&Options::default()).expect("synthesis succeeds");
    let verified = outcome.verify_strong();
    let s = &outcome.stats;
    Row {
        processes: k,
        states,
        ranking_secs: s.ranking_secs(),
        scc_secs: s.scc_secs(),
        total_secs: s.total_secs(),
        avg_scc_nodes: s.avg_scc_nodes(),
        program_nodes: s.program_nodes,
        peak_nodes: s.peak_live_nodes,
        sccs: s.sccs_found,
        groups_added: s.groups_added,
        pass: s.finished_in_pass,
        verified,
    }
}

/// Figs. 6 & 7: synthesize maximal matching for each `K` in `ks`
/// (the paper sweeps 5..=11).
pub fn matching_sweep(ks: &[usize]) -> Vec<Row> {
    ks.iter()
        .map(|&k| {
            let (p, i) = matching(k);
            run_one(p, i, format!("3^{k}"))
        })
        .collect()
}

/// Figs. 8 & 9: synthesize three-coloring for each `K` in `ks`
/// (the paper sweeps 5, 10, …, 40).
pub fn coloring_sweep(ks: &[usize]) -> Vec<Row> {
    ks.iter()
        .map(|&k| {
            let (p, i) = coloring(k);
            run_one(p, i, format!("3^{k}"))
        })
        .collect()
}

/// Figs. 10 & 11: synthesize the token ring with domain size `d`
/// (the paper fixes |D| = 4 and sweeps the process count).
pub fn token_ring_sweep(ns: &[usize], d: u32) -> Vec<Row> {
    ns.iter()
        .map(|&n| {
            let (p, i) = token_ring(n, d);
            run_one(p, i, format!("{d}^{n}"))
        })
        .collect()
}

/// §VI-C: one TR² synthesis (`r` processes per ring, domain `d`; the
/// paper's instance is `r = 4, d = 4`).
pub fn two_ring_run(r: usize, d: u32) -> Row {
    let (p, i) = two_ring(r, d);
    let states = format!("2·{d}^{}", 2 * r);
    run_one(p, i, states)
}

/// Supplementary series (the paper references this study but omits it for
/// space): effect of the **variable domain size** on token-ring synthesis
/// at a fixed process count.
pub fn domain_sweep(n: usize, ds: &[u32]) -> Vec<Row> {
    ds.iter()
        .map(|&d| {
            let (p, i) = token_ring(n, d);
            run_one(p, i, format!("{d}^{n}"))
        })
        .collect()
}

/// One schedule-exploration measurement.
#[derive(Debug, Clone)]
pub struct ScheduleRow {
    /// The schedule, in the paper's `(P1, P2, …)` notation.
    pub schedule: String,
    /// Did this schedule find a solution?
    pub success: bool,
    /// Total synthesis seconds (or time to failure).
    pub total_secs: f64,
    /// Groups added on success.
    pub groups_added: usize,
    /// Pass that finished (on success).
    pub pass: u8,
    /// SCCs resolved along the way.
    pub sccs: usize,
}

/// Supplementary series: effect of the **recovery schedule** — run every
/// rotation of the process order on the same instance (the paper's Fig. 1
/// method runs these on separate machines; `synthesize_parallel` on
/// threads; here we run them sequentially to time each individually).
pub fn schedule_sweep_matching(k: usize) -> Vec<ScheduleRow> {
    use std::time::Instant;
    stsyn_core::Schedule::all_rotations(k)
        .into_iter()
        .map(|sch| {
            let (p, i) = matching(k);
            let problem = AddConvergence::new(p, i).unwrap();
            let label = sch.to_string();
            let t = Instant::now();
            match problem.synthesize_with(&Options::default(), sch) {
                Ok(out) => ScheduleRow {
                    schedule: label,
                    success: true,
                    total_secs: out.stats.total_secs(),
                    groups_added: out.stats.groups_added,
                    pass: out.stats.finished_in_pass,
                    sccs: out.stats.sccs_found,
                },
                Err(_) => ScheduleRow {
                    schedule: label,
                    success: false,
                    total_secs: t.elapsed().as_secs_f64(),
                    groups_added: 0,
                    pass: 0,
                    sccs: 0,
                },
            }
        })
        .collect()
}

/// Render schedule rows as CSV.
pub fn schedule_rows_to_csv(rows: &[ScheduleRow]) -> String {
    let mut out = String::from(
        "schedule,success,total_secs,groups_added,pass,sccs
",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "\"{}\",{},{:.6},{},{},{}",
            r.schedule, r.success, r.total_secs, r.groups_added, r.pass, r.sccs
        );
    }
    out
}

/// One engine's measurements on one case-study instance — a row of
/// `results/partitioning.csv`.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Case-study name.
    pub case: &'static str,
    /// Image/preimage engine that produced this row.
    pub engine: Engine,
    /// Number of processes.
    pub processes: usize,
    /// Seconds in `ComputeRanks`.
    pub ranking_secs: f64,
    /// Seconds in SCC detection.
    pub scc_secs: f64,
    /// Total synthesis seconds (including re-verification).
    pub total_secs: f64,
    /// Peak live BDD nodes over the whole run — the quantity the
    /// partitioned engines exist to reduce.
    pub peak_nodes: usize,
    /// Apply-cache hit rate at the end of the run.
    pub cache_hit_rate: f64,
    /// Synthesized program size in BDD nodes.
    pub program_nodes: usize,
    /// Recovery groups added.
    pub groups_added: usize,
    /// Independent model-check verdict.
    pub verified: bool,
    /// The synthesized protocol text — for cross-engine byte-identity
    /// checks, not a CSV column.
    pub dsl: String,
}

/// Run one case-study instance under one engine and measure it.
pub fn partitioning_run(
    case: &'static str,
    p: stsyn_protocol::Protocol,
    i: stsyn_protocol::Expr,
    engine: Engine,
) -> EngineRow {
    let processes = p.num_processes();
    let mut job = JobSpec::new(case.to_string(), p, i);
    job.engine = engine;
    let mut report = job.run().expect("synthesis succeeds");
    let cache_hit_rate = report.outcome.ctx().mgr_ref().stats().cache_hit_rate();
    let s = &report.outcome.stats;
    EngineRow {
        case,
        engine,
        processes,
        ranking_secs: s.ranking_secs(),
        scc_secs: s.scc_secs(),
        total_secs: s.total_secs(),
        peak_nodes: s.peak_live_nodes,
        cache_hit_rate,
        program_nodes: s.program_nodes,
        groups_added: s.groups_added,
        verified: report.verified,
        dsl: report.emitted_dsl,
    }
}

/// The instances the partitioning bench sweeps: every case study, at
/// 2–3× the size the repo's other sweeps default to (`--fast` shrinks
/// them to CI-friendly seconds).
pub fn partitioning_cases(
    fast: bool,
) -> Vec<(&'static str, stsyn_protocol::Protocol, stsyn_protocol::Expr)> {
    let mut out: Vec<(&'static str, stsyn_protocol::Protocol, stsyn_protocol::Expr)> = Vec::new();
    let (p, i) = if fast { coloring(10) } else { coloring(40) };
    out.push(("coloring", p, i));
    let (p, i) = if fast { matching(5) } else { matching(9) };
    out.push(("matching", p, i));
    // |D| must stay ≥ the ring size: a Dijkstra-style ring with fewer
    // values than processes has an unremovable cycle outside I, so
    // e.g. token_ring(6, 4) fails synthesis outright.
    let (p, i) = if fast { token_ring(5, 4) } else { token_ring(6, 8) };
    out.push(("token_ring", p, i));
    let (p, i) = if fast { two_ring(3, 4) } else { two_ring(4, 4) };
    out.push(("two_ring", p, i));
    let (p, i) = if fast { mis(8) } else { mis(20) };
    out.push(("mis", p, i));
    out
}

/// Render engine rows as CSV (`results/partitioning.csv`).
pub fn engine_rows_to_csv(rows: &[EngineRow]) -> String {
    let mut out = String::from(
        "case,engine,processes,ranking_secs,scc_secs,total_secs,peak_nodes,cache_hit_rate,program_nodes,groups_added,verified\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.6},{:.6},{:.6},{},{:.4},{},{},{}",
            r.case,
            r.engine,
            r.processes,
            r.ranking_secs,
            r.scc_secs,
            r.total_secs,
            r.peak_nodes,
            r.cache_hit_rate,
            r.program_nodes,
            r.groups_added,
            r.verified
        );
    }
    out
}

/// One row of the paper's case-study table (Fig. 5).
#[derive(Debug, Clone)]
pub struct CorrectabilityRow {
    /// Case-study name as in the paper.
    pub case_study: &'static str,
    /// Instance analyzed.
    pub instance: String,
    /// The analyzer's verdict.
    pub verdict: String,
    /// The table's Yes/No column.
    pub locally_correctable: bool,
}

/// Fig. 5 ("Table 1: Local Correctability of Case Studies").
pub fn table1_local_correctability() -> Vec<CorrectabilityRow> {
    let mut rows = Vec::new();
    let (p, i) = coloring(5);
    let v = local_correctability(&p, &i);
    rows.push(CorrectabilityRow {
        case_study: "3-Coloring",
        instance: "ring of 5".into(),
        locally_correctable: v == LocalCorrectability::Yes,
        verdict: v.to_string(),
    });
    let (p, i) = matching(5);
    let v = local_correctability(&p, &i);
    rows.push(CorrectabilityRow {
        case_study: "Matching",
        instance: "ring of 5".into(),
        locally_correctable: v == LocalCorrectability::Yes,
        verdict: v.to_string(),
    });
    let (p, i) = token_ring(4, 3);
    let v = local_correctability(&p, &i);
    rows.push(CorrectabilityRow {
        case_study: "Token Ring (TR)",
        instance: "4 processes, |D| = 3".into(),
        locally_correctable: v == LocalCorrectability::Yes,
        verdict: v.to_string(),
    });
    let (p, i) = two_ring(2, 3);
    let v = local_correctability(&p, &i);
    rows.push(CorrectabilityRow {
        case_study: "Two-Ring TR",
        instance: "2×2 processes, |D| = 3".into(),
        locally_correctable: v == LocalCorrectability::Yes,
        verdict: v.to_string(),
    });
    rows
}

/// Render rows as CSV (time and space series together).
pub fn rows_to_csv(rows: &[Row]) -> String {
    let mut out = String::from(
        "processes,states,ranking_secs,scc_secs,total_secs,avg_scc_nodes,program_nodes,peak_nodes,sccs,groups_added,pass,verified\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6},{:.1},{},{},{},{},{},{}",
            r.processes,
            r.states,
            r.ranking_secs,
            r.scc_secs,
            r.total_secs,
            r.avg_scc_nodes,
            r.program_nodes,
            r.peak_nodes,
            r.sccs,
            r.groups_added,
            r.pass,
            r.verified
        );
    }
    out
}

/// Render the time figure (Figs. 6/8/10 layout).
pub fn format_time_figure(title: &str, rows: &[Row]) -> String {
    let mut out = format!("{title}\n");
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "# proc", "states", "ranking (s)", "SCC (s)", "total (s)", "verified"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14.4} {:>14.4} {:>14.4} {:>10}",
            r.processes, r.states, r.ranking_secs, r.scc_secs, r.total_secs, r.verified
        );
    }
    out
}

/// Render the space figure (Figs. 7/9/11 layout).
pub fn format_space_figure(title: &str, rows: &[Row]) -> String {
    let mut out = format!("{title}\n");
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>18} {:>20} {:>14}",
        "# proc", "states", "avg SCC (nodes)", "program size (nodes)", "peak nodes"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>18.1} {:>20} {:>14}",
            r.processes, r.states, r.avg_scc_nodes, r.program_nodes, r.peak_nodes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweeps_produce_verified_rows() {
        let rows = token_ring_sweep(&[2, 3], 3);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.verified));
        assert!(rows[1].total_secs >= 0.0);
        let rows = coloring_sweep(&[4]);
        assert!(rows[0].verified);
        assert_eq!(rows[0].sccs, 0);
    }

    #[test]
    fn table1_matches_paper() {
        let rows = table1_local_correctability();
        assert_eq!(rows.len(), 4);
        let by_name: std::collections::HashMap<&str, bool> =
            rows.iter().map(|r| (r.case_study, r.locally_correctable)).collect();
        assert!(by_name["3-Coloring"]);
        assert!(!by_name["Matching"]);
        assert!(!by_name["Token Ring (TR)"]);
        assert!(!by_name["Two-Ring TR"]);
    }

    #[test]
    fn csv_and_figures_render() {
        let rows = token_ring_sweep(&[3], 3);
        let csv = rows_to_csv(&rows);
        assert!(csv.lines().count() == 2);
        assert!(csv.starts_with("processes,"));
        let t = format_time_figure("Fig. X", &rows);
        assert!(t.contains("ranking"));
        let s = format_space_figure("Fig. Y", &rows);
        assert!(s.contains("program size"));
    }

    #[test]
    fn domain_sweep_rows_verify() {
        let rows = domain_sweep(3, &[2, 3, 4]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.verified));
        assert_eq!(rows[2].states, "4^3");
    }

    #[test]
    fn schedule_sweep_covers_all_rotations() {
        let rows = schedule_sweep_matching(5);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.success), "every rotation succeeds on matching(5)");
        let csv = schedule_rows_to_csv(&rows);
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.contains("(P1, P2, P3, P4, P0)"));
    }

    #[test]
    fn two_ring_row_verifies() {
        let row = two_ring_run(2, 3);
        assert!(row.verified);
        assert_eq!(row.processes, 4);
    }

    #[test]
    fn partitioning_rows_verify_and_agree_across_engines() {
        let (p, i) = stsyn_cases::token_ring(3, 2);
        let rows: Vec<EngineRow> = [Engine::Monolithic, Engine::Partitioned, Engine::Saturation]
            .into_iter()
            .map(|e| partitioning_run("token_ring", p.clone(), i.clone(), e))
            .collect();
        assert!(rows.iter().all(|r| r.verified));
        assert_eq!(rows[0].dsl, rows[1].dsl, "partitioned text differs");
        assert_eq!(rows[0].dsl, rows[2].dsl, "saturation text differs");
        let csv = engine_rows_to_csv(&rows);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("case,engine,"));
        assert!(csv.contains(",partitioned,") && csv.contains(",saturation,"));
    }
}
