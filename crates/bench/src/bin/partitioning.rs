//! `partitioning` — measure the partitioned and saturation engines
//! against the monolithic baseline on every case study.
//!
//! ```text
//! cargo run --release -p stsyn-bench --bin partitioning            # full sizes, writes results/partitioning.csv
//! cargo run --release -p stsyn-bench --bin partitioning -- --fast --check   # CI: small sizes, enforce invariants
//! ```
//!
//! Every instance runs under all three `--engine` values; the report
//! prints peak live BDD nodes, apply-cache hit rate and per-phase wall
//! times side by side. With `--check` the run exits non-zero when
//!
//! * any engine's synthesized protocol text differs from the
//!   monolithic engine's (they must be byte-identical), or
//! * the better of the partitioned/saturation peaks regresses more
//!   than 15% above the monolithic peak on any case study (the slack
//!   covers instances whose ranking is too cheap for early
//!   quantification to pay back the clusters' extra live structure —
//!   `mis` sits ~12% over at every size; a broken engine blows far
//!   past it), or
//! * fewer than 3 of the 5 case studies strictly improve their peak.
//!
//! `--fast` shrinks the instances to CI-friendly seconds and skips the
//! CSV write so the committed full-size `results/partitioning.csv` is
//! never clobbered by a reduced run.

use std::process::ExitCode;
use stsyn_bench::{engine_rows_to_csv, partitioning_cases, partitioning_run, EngineRow};
use stsyn_core::Engine;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let check = args.iter().any(|a| a == "--check");
    if let Some(bad) = args.iter().find(|a| *a != "--fast" && *a != "--check") {
        eprintln!("partitioning: unexpected argument `{bad}` (flags: --fast --check)");
        return ExitCode::from(2);
    }

    let mut rows: Vec<EngineRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut cases_run = 0usize;
    let mut cases_improved = 0usize;
    println!(
        "{:<12} {:<12} {:>6} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "case", "engine", "procs", "peak nodes", "hit rate", "rank (s)", "total (s)", "verified"
    );
    for (case, p, i) in partitioning_cases(fast) {
        let engines = [Engine::Monolithic, Engine::Partitioned, Engine::Saturation];
        let case_rows: Vec<EngineRow> = engines
            .into_iter()
            .map(|e| {
                eprintln!("running {case} under {e}…");
                partitioning_run(case, p.clone(), i.clone(), e)
            })
            .collect();
        for r in &case_rows {
            println!(
                "{:<12} {:<12} {:>6} {:>12} {:>10.4} {:>10.4} {:>10.4} {:>9}",
                r.case,
                r.engine.as_str(),
                r.processes,
                r.peak_nodes,
                r.cache_hit_rate,
                r.ranking_secs,
                r.total_secs,
                r.verified
            );
        }
        let mono = &case_rows[0];
        for other in &case_rows[1..] {
            if other.dsl != mono.dsl {
                failures
                    .push(format!("{case}: {} synthesized different protocol text", other.engine));
            }
            if !other.verified {
                failures.push(format!("{case}: {} failed verification", other.engine));
            }
        }
        let best_part = case_rows[1..].iter().map(|r| r.peak_nodes).min().expect("two engines");
        cases_run += 1;
        if best_part < mono.peak_nodes {
            cases_improved += 1;
        }
        let delta =
            100.0 * (best_part as f64 - mono.peak_nodes as f64) / mono.peak_nodes.max(1) as f64;
        println!(
            "  -> {case}: peak {best_part} vs {} monolithic ({delta:+.1}% nodes)",
            mono.peak_nodes
        );
        if best_part as f64 > mono.peak_nodes as f64 * 1.15 {
            failures.push(format!(
                "{case}: partitioned peak {best_part} regresses {delta:+.1}% above \
                 monolithic {} (tolerance 15%)",
                mono.peak_nodes
            ));
        }
        rows.extend(case_rows);
    }
    if cases_improved * 5 < cases_run * 3 {
        failures.push(format!(
            "only {cases_improved} of {cases_run} case studies improved their peak \
             (need at least 3 of 5)"
        ));
    }
    println!("\npeak live nodes improved on {cases_improved} of {cases_run} case studies");

    if !fast {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/partitioning.csv", engine_rows_to_csv(&rows))
            .expect("write results/partitioning.csv");
        println!("\nwrote results/partitioning.csv ({} rows)", rows.len());
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("partitioning: FAIL: {f}");
        }
        if check {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
