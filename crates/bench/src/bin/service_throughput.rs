//! `service_throughput` — a closed-loop load generator for the job
//! service, single daemons and routed fleets alike.
//!
//! ```text
//! cargo run --release -p stsyn-bench --bin service_throughput [-- --fast]
//! ```
//!
//! Each topology is flooded by concurrent clients that loop
//! submit→wait over small synthesis jobs. The harness records
//! wall-clock throughput (jobs/sec), queue latency (time a job sat
//! queued before a worker claimed it, from the `status` verb), and
//! end-to-end submit→result latency per job (p50/p99 across the whole
//! batch). Topologies:
//!
//! * `direct` — one in-process daemon, worker pools of 1/2/4;
//! * `routed` — a `stsyn route` front door consistent-hashing the same
//!   load across 2 or 3 single-worker in-process shards, measuring what
//!   the fleet hop costs and what sharding buys;
//! * `store` — a store-enabled daemon fed distinct workloads cold, then
//!   the same workloads again: the resubmissions are answered from the
//!   artifact store, and the cold vs hit p50/p99 columns
//!   (`cold_p50_ms`/`cold_p99_ms`/`hit_p50_ms`/`hit_p99_ms`, zero on
//!   the other rows) quantify what a hit saves.
//!
//! The series lands in `results/service_throughput.csv`.

use std::time::{Duration, Instant};
use stsyn_serve::{
    Client, JobSource, Json, Router, RouterConfig, Server, ServerConfig, ShutdownMode, SubmitSpec,
};

struct Row {
    topology: &'static str,
    shards: usize,
    workers: usize,
    jobs: usize,
    clients: usize,
    wall_secs: f64,
    jobs_per_sec: f64,
    mean_queue_ms: f64,
    p95_queue_ms: u64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    cold_p50_ms: f64,
    cold_p99_ms: f64,
    hit_p50_ms: f64,
    hit_p99_ms: f64,
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let jobs = if fast { 12 } else { 32 };
    let clients = 4;
    std::fs::create_dir_all("results").expect("create results dir");

    let mut rows = Vec::new();
    for workers in [1, 2, 4] {
        eprintln!("service_throughput: direct, {workers} worker(s), {jobs} jobs…");
        rows.push(run_direct(workers, jobs, clients));
    }
    for shards in [2, 3] {
        eprintln!("service_throughput: routed, {shards} shard(s), {jobs} jobs…");
        rows.push(run_routed(shards, jobs, clients));
    }
    eprintln!("service_throughput: store, cold batch then resubmission…");
    rows.push(run_store_resub(clients));

    let mut csv = String::from(
        "topology,shards,workers,jobs,clients,wall_secs,jobs_per_sec,\
         mean_queue_ms,p95_queue_ms,p50_latency_ms,p99_latency_ms,\
         cold_p50_ms,cold_p99_ms,hit_p50_ms,hit_p99_ms\n",
    );
    println!(
        "{:<8} {:<7} {:<8} {:<6} {:<10} {:<8} {:<14} {:<13} {:<15} p99_latency_ms",
        "topology",
        "shards",
        "workers",
        "jobs",
        "wall_s",
        "jobs/s",
        "mean_queue_ms",
        "p95_queue_ms",
        "p50_latency_ms"
    );
    for r in &rows {
        println!(
            "{:<8} {:<7} {:<8} {:<6} {:<10.3} {:<8.1} {:<14.1} {:<13} {:<15.1} {:.1}",
            r.topology,
            r.shards,
            r.workers,
            r.jobs,
            r.wall_secs,
            r.jobs_per_sec,
            r.mean_queue_ms,
            r.p95_queue_ms,
            r.p50_latency_ms,
            r.p99_latency_ms
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{:.4},{:.2},{:.2},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            r.topology,
            r.shards,
            r.workers,
            r.jobs,
            r.clients,
            r.wall_secs,
            r.jobs_per_sec,
            r.mean_queue_ms,
            r.p95_queue_ms,
            r.p50_latency_ms,
            r.p99_latency_ms,
            r.cold_p50_ms,
            r.cold_p99_ms,
            r.hit_p50_ms,
            r.hit_p99_ms
        ));
    }
    std::fs::write("results/service_throughput.csv", csv).expect("write csv");
    eprintln!("series written to results/service_throughput.csv");
}

fn state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stsyn-throughput-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_direct(workers: usize, jobs: usize, clients: usize) -> Row {
    let dir = state_dir(&format!("direct-{workers}"));
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = workers;
    cfg.queue_capacity = jobs + 8;
    let handle = Server::start(cfg).expect("start daemon");

    let (row_core, _) = drive(handle.addr(), jobs, clients);
    handle.shutdown(ShutdownMode::Drain);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    Row { topology: "direct", shards: 1, workers, ..row_core }
}

fn run_routed(shards: usize, jobs: usize, clients: usize) -> Row {
    let dir = state_dir(&format!("routed-{shards}"));
    let handles: Vec<_> = (0..shards)
        .map(|i| {
            let mut cfg = ServerConfig::new(dir.join(format!("shard{i}")));
            cfg.workers = 1;
            cfg.queue_capacity = jobs + 8;
            Server::start(cfg).expect("start shard")
        })
        .collect();
    let cfg = RouterConfig::new(handles.iter().map(|h| h.addr().to_string()).collect());
    let router = Router::start(cfg).expect("start router");

    let (row_core, _) = drive(router.addr(), jobs, clients);
    router.shutdown();
    router.join();
    for h in handles {
        h.shutdown(ShutdownMode::Drain);
        h.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
    Row { topology: "routed", shards, workers: shards, ..row_core }
}

/// Closed-loop drive: each client loops submit→wait over its share of
/// the batch, timing every job end to end. Works identically against a
/// daemon and a router (same wire protocol).
fn drive(addr: std::net::SocketAddr, jobs: usize, clients: usize) -> (Row, Vec<u64>) {
    let started = Instant::now();
    let per_job: Vec<(u64, f64)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let share = jobs / clients + usize::from(c < jobs % clients);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let spec = SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 });
                (0..share)
                    .map(|_| {
                        let t0 = Instant::now();
                        let id = client.submit(&spec).expect("submit");
                        client.wait(id, Duration::from_secs(600)).expect("job result");
                        (id, t0.elapsed().as_secs_f64() * 1e3)
                    })
                    .collect::<Vec<(u64, f64)>>()
            }));
        }
        joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let ids: Vec<u64> = per_job.iter().map(|&(id, _)| id).collect();
    let mut latency_ms: Vec<f64> = per_job.iter().map(|&(_, l)| l).collect();
    latency_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50_latency_ms = latency_ms[latency_ms.len().saturating_sub(1) / 2];
    let p99_latency_ms = latency_ms[(latency_ms.len().saturating_sub(1)) * 99 / 100];

    // Queue latency: how long each job sat before a worker claimed it
    // (`status` proxies shard-aware through a router).
    let mut client = Client::connect(addr).expect("connect");
    let mut queue_ms: Vec<u64> = ids
        .iter()
        .map(|&id| {
            client.status(id).expect("status").get("queue_ms").and_then(Json::as_u64).unwrap_or(0)
        })
        .collect();
    queue_ms.sort_unstable();
    let mean_queue_ms = queue_ms.iter().sum::<u64>() as f64 / queue_ms.len().max(1) as f64;
    let p95_queue_ms = queue_ms[(queue_ms.len().saturating_sub(1)) * 95 / 100];

    (
        Row {
            topology: "direct",
            shards: 0,
            workers: 0,
            jobs,
            clients,
            wall_secs,
            jobs_per_sec: jobs as f64 / wall_secs,
            mean_queue_ms,
            p95_queue_ms,
            p50_latency_ms,
            p99_latency_ms,
            cold_p50_ms: 0.0,
            cold_p99_ms: 0.0,
            hit_p50_ms: 0.0,
            hit_p99_ms: 0.0,
        },
        ids,
    )
}

/// Percentiles over an unsorted latency sample (consumes it).
fn p50_p99(mut ms: Vec<f64>) -> (f64, f64) {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (ms[ms.len().saturating_sub(1) / 2], ms[(ms.len().saturating_sub(1)) * 99 / 100])
}

/// Cold batch vs store-hit resubmission: distinct workloads (so no
/// warm-start sharing muddies the cold numbers) submitted once each,
/// then resubmitted with fresh idempotency keys. The second batch must
/// be answered entirely by the artifact store.
fn run_store_resub(clients: usize) -> Row {
    let dir = state_dir("store");
    let mut cfg = ServerConfig::new(&dir).with_store(0);
    cfg.workers = 2;
    let handle = Server::start(cfg).expect("start daemon");
    let addr = handle.addr();

    let specs: Vec<SubmitSpec> = [
        ("coloring", 3),
        ("matching", 3),
        ("token_ring", 3),
        ("two_ring", 3),
        ("mis", 3),
        ("coloring", 4),
    ]
    .into_iter()
    .map(|(name, n)| SubmitSpec::new(JobSource::Case { name: name.into(), n, d: 0 }))
    .collect();

    let started = Instant::now();
    let submit_batch = |salt: u64| -> Vec<(f64, bool)> {
        std::thread::scope(|scope| {
            let joins: Vec<_> = specs
                .chunks(specs.len().div_ceil(clients))
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        chunk
                            .iter()
                            .map(|spec| {
                                let mut spec = spec.clone();
                                spec.idem = Some(
                                    (spec.fingerprint() ^ salt.wrapping_mul(0x9E37_79B9))
                                        & ((1 << 53) - 1),
                                );
                                let t0 = Instant::now();
                                let resp = client
                                    .request(&Json::obj(vec![
                                        ("op", "submit".into()),
                                        ("job", spec.to_json()),
                                    ]))
                                    .expect("submit");
                                let id = resp.get("id").and_then(Json::as_u64).expect("id");
                                let hit = resp.get("store").and_then(Json::as_str) == Some("hit");
                                client.wait(id, Duration::from_secs(600)).expect("job result");
                                (t0.elapsed().as_secs_f64() * 1e3, hit)
                            })
                            .collect::<Vec<(f64, bool)>>()
                    })
                })
                .collect();
            joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
        })
    };
    let cold = submit_batch(1);
    assert!(cold.iter().all(|&(_, hit)| !hit), "cold batch must not hit the store");
    let hits = submit_batch(2);
    assert!(hits.iter().all(|&(_, hit)| hit), "resubmission batch must be all store hits");
    let wall_secs = started.elapsed().as_secs_f64();

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);

    let jobs = cold.len() + hits.len();
    let all_ms: Vec<f64> = cold.iter().chain(hits.iter()).map(|&(ms, _)| ms).collect();
    let (p50_latency_ms, p99_latency_ms) = p50_p99(all_ms);
    let (cold_p50_ms, cold_p99_ms) = p50_p99(cold.into_iter().map(|(ms, _)| ms).collect());
    let (hit_p50_ms, hit_p99_ms) = p50_p99(hits.into_iter().map(|(ms, _)| ms).collect());
    eprintln!(
        "service_throughput: store cold p50/p99 {cold_p50_ms:.1}/{cold_p99_ms:.1} ms, \
         hit p50/p99 {hit_p50_ms:.1}/{hit_p99_ms:.1} ms"
    );

    Row {
        topology: "store",
        shards: 1,
        workers: 2,
        jobs,
        clients,
        wall_secs,
        jobs_per_sec: jobs as f64 / wall_secs,
        mean_queue_ms: 0.0,
        p95_queue_ms: 0,
        p50_latency_ms,
        p99_latency_ms,
        cold_p50_ms,
        cold_p99_ms,
        hit_p50_ms,
        hit_p99_ms,
    }
}
