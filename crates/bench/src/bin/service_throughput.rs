//! `service_throughput` — measure the job service's end-to-end overhead.
//!
//! ```text
//! cargo run --release -p stsyn-bench --bin service_throughput [-- --fast]
//! ```
//!
//! For each worker-pool size the harness starts an in-process daemon,
//! floods it with a batch of small synthesis jobs from concurrent client
//! connections, and records wall-clock throughput (jobs/sec) plus queue
//! latency (the time a job sat queued before a worker claimed it, as
//! reported by the `status` verb). The series lands in
//! `results/service_throughput.csv`.

use std::time::Instant;
use stsyn_serve::{Client, JobSource, Json, Server, ServerConfig, ShutdownMode, SubmitSpec};

struct Row {
    workers: usize,
    jobs: usize,
    wall_secs: f64,
    jobs_per_sec: f64,
    mean_queue_ms: f64,
    p95_queue_ms: u64,
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let jobs = if fast { 12 } else { 32 };
    let clients = 4;
    std::fs::create_dir_all("results").expect("create results dir");

    let mut rows = Vec::new();
    for workers in [1, 2, 4] {
        eprintln!("service_throughput: {workers} worker(s), {jobs} jobs…");
        rows.push(run_batch(workers, jobs, clients));
    }

    let mut csv = String::from("workers,jobs,wall_secs,jobs_per_sec,mean_queue_ms,p95_queue_ms\n");
    println!(
        "{:<8} {:<6} {:<10} {:<10} {:<14} p95_queue_ms",
        "workers", "jobs", "wall_s", "jobs/s", "mean_queue_ms"
    );
    for r in &rows {
        println!(
            "{:<8} {:<6} {:<10.3} {:<10.1} {:<14.1} {}",
            r.workers, r.jobs, r.wall_secs, r.jobs_per_sec, r.mean_queue_ms, r.p95_queue_ms
        );
        csv.push_str(&format!(
            "{},{},{:.4},{:.2},{:.2},{}\n",
            r.workers, r.jobs, r.wall_secs, r.jobs_per_sec, r.mean_queue_ms, r.p95_queue_ms
        ));
    }
    std::fs::write("results/service_throughput.csv", csv).expect("write csv");
    eprintln!("series written to results/service_throughput.csv");
}

fn run_batch(workers: usize, jobs: usize, clients: usize) -> Row {
    let state_dir =
        std::env::temp_dir().join(format!("stsyn-throughput-{}-{}", std::process::id(), workers));
    let _ = std::fs::remove_dir_all(&state_dir);
    let mut cfg = ServerConfig::new(&state_dir);
    cfg.workers = workers;
    cfg.queue_capacity = jobs + 8;
    let handle = Server::start(cfg).expect("start daemon");
    let addr = handle.addr();

    // Concurrent clients submit their share of the batch, then each waits
    // for its own jobs — the daemon is saturated the whole time.
    let started = Instant::now();
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let share = jobs / clients + usize::from(c < jobs % clients);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let spec = SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 });
                let ids: Vec<u64> =
                    (0..share).map(|_| client.submit(&spec).expect("submit")).collect();
                for &id in &ids {
                    client.wait(id, std::time::Duration::from_secs(600)).expect("job result");
                }
                ids
            }));
        }
        joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    // Queue latency: how long each job sat before a worker claimed it.
    let mut client = Client::connect(addr).expect("connect");
    let mut queue_ms: Vec<u64> = ids
        .iter()
        .map(|&id| {
            client.status(id).expect("status").get("queue_ms").and_then(Json::as_u64).unwrap_or(0)
        })
        .collect();
    queue_ms.sort_unstable();
    let mean_queue_ms = queue_ms.iter().sum::<u64>() as f64 / queue_ms.len().max(1) as f64;
    let p95_queue_ms = queue_ms[(queue_ms.len().saturating_sub(1)) * 95 / 100];

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
    let _ = std::fs::remove_dir_all(&state_dir);

    Row {
        workers,
        jobs,
        wall_secs,
        jobs_per_sec: jobs as f64 / wall_secs,
        mean_queue_ms,
        p95_queue_ms,
    }
}
