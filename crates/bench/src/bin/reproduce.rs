//! `reproduce` — regenerate the paper's evaluation artifacts.
//!
//! ```text
//! cargo run --release -p stsyn-bench --bin reproduce -- all [--fast]
//! cargo run --release -p stsyn-bench --bin reproduce -- fig6 fig7
//! ```
//!
//! Artifacts: `table1`, `fig6`/`fig7` (matching), `fig8`/`fig9`
//! (coloring), `fig10`/`fig11` (token ring |D| = 4), `tr2` (§VI-C).
//! `--fast` trims each sweep to the sizes that finish in seconds. CSV
//! copies of every series land in `results/`.

use std::collections::BTreeSet;
use stsyn_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let mut wanted: BTreeSet<String> =
        args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    if wanted.is_empty() || wanted.contains("all") {
        wanted = [
            "table1",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "tr2",
            "domains",
            "schedules",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    std::fs::create_dir_all("results").expect("create results dir");

    if wanted.contains("table1") {
        println!("== Table 1 (Fig. 5): Local Correctability of Case Studies ==\n");
        println!("{:<18} {:<24} {:<10} Analyzer verdict", "Case Study", "Instance", "Locally");
        println!("{:<18} {:<24} {:<10}", "", "", "Correctable");
        let rows = table1_local_correctability();
        for r in &rows {
            println!(
                "{:<18} {:<24} {:<10} {}",
                r.case_study,
                r.instance,
                if r.locally_correctable { "Yes" } else { "No" },
                r.verdict
            );
        }
        let json: Vec<String> =
            rows.iter().map(|r| format!("{}: {}", r.case_study, r.locally_correctable)).collect();
        std::fs::write("results/table1.txt", json.join("\n")).unwrap();
        println!();
    }

    if wanted.contains("fig6") || wanted.contains("fig7") {
        let ks: Vec<usize> = if fast { (5..=8).collect() } else { (5..=11).collect() };
        eprintln!("running matching sweep K = {ks:?} (paper: 5..=11, ~65 s at 11)…");
        let rows = matching_sweep(&ks);
        if wanted.contains("fig6") {
            println!("{}", format_time_figure("== Fig. 6: Execution Times for Matching ==", &rows));
        }
        if wanted.contains("fig7") {
            println!("{}", format_space_figure("== Fig. 7: Memory Usage for Matching ==", &rows));
        }
        std::fs::write("results/matching.csv", rows_to_csv(&rows)).unwrap();
    }

    if wanted.contains("fig8") || wanted.contains("fig9") {
        let ks: Vec<usize> =
            if fast { vec![5, 10, 15, 20] } else { vec![5, 10, 15, 20, 25, 30, 35, 40] };
        eprintln!("running coloring sweep K = {ks:?} (paper: 5..=40 step 5)…");
        let rows = coloring_sweep(&ks);
        if wanted.contains("fig8") {
            println!(
                "{}",
                format_time_figure("== Fig. 8: Execution Times for 3-Coloring ==", &rows)
            );
        }
        if wanted.contains("fig9") {
            println!("{}", format_space_figure("== Fig. 9: Memory Usage for 3-Coloring ==", &rows));
        }
        std::fs::write("results/coloring.csv", rows_to_csv(&rows)).unwrap();
    }

    if wanted.contains("fig10") || wanted.contains("fig11") {
        let ns: Vec<usize> = if fast { vec![2, 3, 4] } else { vec![2, 3, 4, 5] };
        eprintln!("running token-ring sweep n = {ns:?}, |D| = 4 (paper: up to 5)…");
        let rows = token_ring_sweep(&ns, 4);
        if wanted.contains("fig10") {
            println!(
                "{}",
                format_time_figure("== Fig. 10: Execution Times of Token Ring |D|=4 ==", &rows)
            );
        }
        if wanted.contains("fig11") {
            println!(
                "{}",
                format_space_figure("== Fig. 11: Memory Usage of Token Ring |D|=4 ==", &rows)
            );
        }
        std::fs::write("results/token_ring.csv", rows_to_csv(&rows)).unwrap();
    }

    if wanted.contains("tr2") {
        let (r, d) = if fast { (3, 3) } else { (4, 4) };
        eprintln!("running TR² (r = {r}, |D| = {d}; paper: 8 processes, |D| = 4)…");
        let row = two_ring_run(r, d);
        println!("== §VI-C: Two-Ring Token Ring ==");
        println!(
            "{} processes, {} states: total {:.3} s (SCC {:.3} s), {} groups, pass {}, verified {}\n",
            row.processes, row.states, row.total_secs, row.scc_secs, row.groups_added,
            row.pass, row.verified
        );
        std::fs::write("results/two_ring.csv", rows_to_csv(&[row])).unwrap();
    }

    if wanted.contains("domains") {
        let ds: Vec<u32> = if fast { vec![3, 4] } else { vec![3, 4, 5, 6] };
        eprintln!("running domain sweep: token ring n = 4, |D| = {ds:?}…");
        let rows = domain_sweep(4, &ds);
        println!("== Supplementary: effect of domain size (token ring, n = 4) ==");
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>10}",
            "|D|", "SCC (s)", "total (s)", "program", "verified"
        );
        for (d, r) in ds.iter().zip(&rows) {
            println!(
                "{:>8} {:>14.4} {:>14.4} {:>14} {:>10}",
                d, r.scc_secs, r.total_secs, r.program_nodes, r.verified
            );
        }
        println!();
        std::fs::write("results/domains.csv", rows_to_csv(&rows)).unwrap();
    }

    if wanted.contains("schedules") {
        let k = if fast { 6 } else { 7 };
        eprintln!("running schedule sweep: matching({k}), all {k} rotations…");
        let rows = schedule_sweep_matching(k);
        println!("== Supplementary: effect of the recovery schedule (matching, K = {k}) ==");
        println!(
            "{:<30} {:>8} {:>12} {:>8} {:>6} {:>8}",
            "schedule", "success", "total (s)", "groups", "pass", "SCCs"
        );
        for r in &rows {
            println!(
                "{:<30} {:>8} {:>12.4} {:>8} {:>6} {:>8}",
                r.schedule, r.success, r.total_secs, r.groups_added, r.pass, r.sccs
            );
        }
        println!();
        std::fs::write("results/schedules.csv", schedule_rows_to_csv(&rows)).unwrap();
    }

    eprintln!("CSV series written to results/");
}
