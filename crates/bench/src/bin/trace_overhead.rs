//! `trace_overhead` — cost of the observability hooks (PR 5 guard).
//!
//! ```text
//! cargo run --release -p stsyn-bench --bin trace_overhead [-- --fast]
//! ```
//!
//! For each of three case studies the harness runs full synthesis four
//! ways: with the seed path (no tracer field touched beyond its
//! `Option` check), with an explicitly-disabled tracer, with a disabled
//! tracer plus an attached no-subscriber [`ProgressBus`] (the live
//! `watch` tee, nobody listening), and with an NDJSON file tracer at
//! debug level. Median-of-N wall times land in
//! `results/trace_overhead.csv`, and the run *fails* when the disabled
//! tracer — or the unwatched progress bus — costs more than 5% over the
//! no-op baseline: the hooks must be free when observability is off,
//! and cheap enough to leave armed when nobody is watching.

use std::time::{Duration, Instant};
use stsyn_cases::{coloring::coloring, matching::matching, token_ring::token_ring};
use stsyn_core::{AddConvergence, Options};
use stsyn_obs::{ProgressBus, TraceLevel, Tracer};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::Protocol;

const OVERHEAD_LIMIT: f64 = 0.05;

struct Row {
    case: &'static str,
    baseline_ms: f64,
    disabled_ms: f64,
    bus_ms: f64,
    ndjson_ms: f64,
    disabled_overhead: f64,
    bus_overhead: f64,
    ndjson_overhead: f64,
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn timed_run(problem: &AddConvergence, opts: &Options) -> Duration {
    let t = Instant::now();
    problem.synthesize(opts).expect("synthesis failed");
    t.elapsed()
}

fn measure(case: &'static str, p: Protocol, i: Expr, n: usize, dir: &std::path::Path) -> Row {
    let problem = AddConvergence::new(p, i).expect("bad case");
    // Baseline: Options::default() — the seed path, tracer never set.
    // Disabled tracer: explicitly constructed, still a no-op.
    // Bus: disabled tracer with a progress bus attached and nobody
    // subscribed — the daemon's steady state for every running job once
    // `watch` exists.
    // NDJSON: file tracer at the most verbose level.
    let trace_path = dir.join(format!("{case}.trace"));
    let ndjson_tracer = Tracer::to_file(&trace_path, TraceLevel::Debug).expect("open trace file");
    let configs = [
        Options::default(),
        Options { tracer: Tracer::disabled(), ..Options::default() },
        Options {
            tracer: Tracer::disabled().with_progress(ProgressBus::default()),
            ..Options::default()
        },
        Options { tracer: ndjson_tracer, ..Options::default() },
    ];
    // One untimed warm-up per config, then n *interleaved* rounds: each
    // round times every config back to back, so slow machine-level drift
    // (frequency scaling, noisy neighbours) hits all columns equally
    // instead of biasing whichever block ran during the disturbance.
    let mut samples: [Vec<Duration>; 4] = Default::default();
    for opts in &configs {
        problem.synthesize(opts).expect("synthesis failed");
    }
    for _ in 0..n {
        for (opts, bucket) in configs.iter().zip(samples.iter_mut()) {
            bucket.push(timed_run(&problem, opts));
        }
    }
    let [baseline_ms, disabled_ms, bus_ms, ndjson_ms] = samples.each_mut().map(|s| median_ms(s));
    Row {
        case,
        baseline_ms,
        disabled_ms,
        bus_ms,
        ndjson_ms,
        disabled_overhead: disabled_ms / baseline_ms - 1.0,
        bus_overhead: bus_ms / baseline_ms - 1.0,
        ndjson_overhead: ndjson_ms / baseline_ms - 1.0,
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let n = if fast { 5 } else { 15 };
    std::fs::create_dir_all("results").expect("create results dir");
    let scratch = std::env::temp_dir().join(format!("stsyn-trace-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let (cp, ci) = coloring(5);
    let (mp, mi) = matching(5);
    let (tp, ti) = token_ring(4, 4);
    let rows = vec![
        measure("coloring5", cp, ci, n, &scratch),
        measure("matching5", mp, mi, n, &scratch),
        measure("token_ring4", tp, ti, n, &scratch),
    ];

    let mut csv = String::from(
        "case,baseline_ms,disabled_ms,bus_ms,ndjson_ms,\
         disabled_overhead,bus_overhead,ndjson_overhead\n",
    );
    println!(
        "{:<14} {:<12} {:<12} {:<12} {:<12} {:<10} {:<10} ndjson_ovh",
        "case", "baseline_ms", "disabled_ms", "bus_ms", "ndjson_ms", "disabled_ovh", "bus_ovh"
    );
    let mut worst = f64::MIN;
    for r in &rows {
        println!(
            "{:<14} {:<12.3} {:<12.3} {:<12.3} {:<12.3} {:<+10.1}% {:<+10.1}% {:+.1}%",
            r.case,
            r.baseline_ms,
            r.disabled_ms,
            r.bus_ms,
            r.ndjson_ms,
            r.disabled_overhead * 100.0,
            r.bus_overhead * 100.0,
            r.ndjson_overhead * 100.0
        );
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.case,
            r.baseline_ms,
            r.disabled_ms,
            r.bus_ms,
            r.ndjson_ms,
            r.disabled_overhead,
            r.bus_overhead,
            r.ndjson_overhead
        ));
        worst = worst.max(r.disabled_overhead).max(r.bus_overhead);
    }
    std::fs::write("results/trace_overhead.csv", csv).expect("write csv");
    let _ = std::fs::remove_dir_all(&scratch);
    eprintln!("series written to results/trace_overhead.csv");

    // The guard: hooks must be free when tracing is off, and the
    // unwatched progress bus must stay inside the same envelope.
    assert!(
        worst < OVERHEAD_LIMIT,
        "disabled-tracer/no-subscriber-bus overhead {:.1}% exceeds the {:.0}% budget",
        worst * 100.0,
        OVERHEAD_LIMIT * 100.0
    );
    eprintln!(
        "guard ok: worst disabled-tracer/no-subscriber-bus overhead {:+.1}% (< {:.0}%)",
        worst * 100.0,
        OVERHEAD_LIMIT * 100.0
    );
}
