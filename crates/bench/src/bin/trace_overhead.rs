//! `trace_overhead` — cost of the observability hooks (PR 5 guard).
//!
//! ```text
//! cargo run --release -p stsyn-bench --bin trace_overhead [-- --fast]
//! ```
//!
//! For each of three case studies the harness runs full synthesis three
//! ways: with the seed path (no tracer field touched beyond its
//! `Option` check), with an explicitly-disabled tracer, and with an
//! NDJSON file tracer at debug level. Median-of-N wall times land in
//! `results/trace_overhead.csv`, and the run *fails* when the disabled
//! tracer costs more than 5% over the no-op baseline — the hooks must be
//! free when observability is off.

use std::time::{Duration, Instant};
use stsyn_cases::{coloring::coloring, matching::matching, token_ring::token_ring};
use stsyn_core::{AddConvergence, Options};
use stsyn_obs::{TraceLevel, Tracer};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::Protocol;

const OVERHEAD_LIMIT: f64 = 0.05;

struct Row {
    case: &'static str,
    baseline_ms: f64,
    disabled_ms: f64,
    ndjson_ms: f64,
    disabled_overhead: f64,
    ndjson_overhead: f64,
}

fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn time_runs(problem: &AddConvergence, opts: &Options, n: usize) -> f64 {
    // One untimed warm-up, then n timed full syntheses.
    problem.synthesize(opts).expect("synthesis failed");
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let t = Instant::now();
            problem.synthesize(opts).expect("synthesis failed");
            t.elapsed()
        })
        .collect();
    median_ms(&mut samples)
}

fn measure(case: &'static str, p: Protocol, i: Expr, n: usize, dir: &std::path::Path) -> Row {
    let problem = AddConvergence::new(p, i).expect("bad case");
    // Baseline: Options::default() — the seed path, tracer never set.
    let baseline_ms = time_runs(&problem, &Options::default(), n);
    // Disabled tracer: explicitly constructed, still a no-op.
    let disabled_opts = Options { tracer: Tracer::disabled(), ..Options::default() };
    let disabled_ms = time_runs(&problem, &disabled_opts, n);
    // NDJSON file tracer at the most verbose level.
    let trace_path = dir.join(format!("{case}.trace"));
    let tracer = Tracer::to_file(&trace_path, TraceLevel::Debug).expect("open trace file");
    let ndjson_opts = Options { tracer, ..Options::default() };
    let ndjson_ms = time_runs(&problem, &ndjson_opts, n);
    Row {
        case,
        baseline_ms,
        disabled_ms,
        ndjson_ms,
        disabled_overhead: disabled_ms / baseline_ms - 1.0,
        ndjson_overhead: ndjson_ms / baseline_ms - 1.0,
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let n = if fast { 5 } else { 15 };
    std::fs::create_dir_all("results").expect("create results dir");
    let scratch = std::env::temp_dir().join(format!("stsyn-trace-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let (cp, ci) = coloring(5);
    let (mp, mi) = matching(5);
    let (tp, ti) = token_ring(4, 4);
    let rows = vec![
        measure("coloring5", cp, ci, n, &scratch),
        measure("matching5", mp, mi, n, &scratch),
        measure("token_ring4", tp, ti, n, &scratch),
    ];

    let mut csv =
        String::from("case,baseline_ms,disabled_ms,ndjson_ms,disabled_overhead,ndjson_overhead\n");
    println!(
        "{:<14} {:<12} {:<12} {:<12} {:<10} ndjson_ovh",
        "case", "baseline_ms", "disabled_ms", "ndjson_ms", "disabled_ovh"
    );
    let mut worst = f64::MIN;
    for r in &rows {
        println!(
            "{:<14} {:<12.3} {:<12.3} {:<12.3} {:<+10.1}% {:+.1}%",
            r.case,
            r.baseline_ms,
            r.disabled_ms,
            r.ndjson_ms,
            r.disabled_overhead * 100.0,
            r.ndjson_overhead * 100.0
        );
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.case,
            r.baseline_ms,
            r.disabled_ms,
            r.ndjson_ms,
            r.disabled_overhead,
            r.ndjson_overhead
        ));
        worst = worst.max(r.disabled_overhead);
    }
    std::fs::write("results/trace_overhead.csv", csv).expect("write csv");
    let _ = std::fs::remove_dir_all(&scratch);
    eprintln!("series written to results/trace_overhead.csv");

    // The guard: hooks must be free when tracing is off.
    assert!(
        worst < OVERHEAD_LIMIT,
        "disabled-tracer overhead {:.1}% exceeds the {:.0}% budget",
        worst * 100.0,
        OVERHEAD_LIMIT * 100.0
    );
    eprintln!(
        "guard ok: worst disabled-tracer overhead {:+.1}% (< {:.0}%)",
        worst * 100.0,
        OVERHEAD_LIMIT * 100.0
    );
}
