//! Fig. 8 / Fig. 9 (Criterion form): synthesis time of three-coloring as
//! the ring grows. The locally-correctable structure keeps SCC time at
//! zero; the full sweep to K = 40 lives in `reproduce fig8`.

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsyn_cases::coloring;
use stsyn_core::{AddConvergence, Options};

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_coloring_synthesis");
    group.sample_size(10);
    for k in [5usize, 10, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let (p, i) = coloring(k);
                let problem = AddConvergence::new(p, i).unwrap();
                let outcome = problem.synthesize(&Options::default()).unwrap();
                black_box(outcome.stats.groups_added)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
