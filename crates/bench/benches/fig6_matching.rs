//! Fig. 6 / Fig. 7 (Criterion form): end-to-end synthesis time of maximal
//! matching as the ring grows. The paper's full sweep reaches K = 11
//! (~65 s per run there); Criterion needs repeated executions, so this
//! bench covers the statistically repeatable prefix — run
//! `reproduce fig6` for the full single-shot sweep.

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsyn_cases::matching;
use stsyn_core::{AddConvergence, Options};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_matching_synthesis");
    group.sample_size(10);
    for k in [5usize, 6, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let (p, i) = matching(k);
                let problem = AddConvergence::new(p, i).unwrap();
                let outcome = problem.synthesize(&Options::default()).unwrap();
                black_box(outcome.stats.groups_added)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
