//! Microbenchmarks of the BDD substrate on the workload shapes the
//! synthesizer produces: building a partitioned ring transition relation,
//! image/preimage steps, and garbage collection — the operations whose
//! cost §VII attributes the tool's bottlenecks to.

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsyn_cases::{coloring, dijkstra_token_ring};
use stsyn_symbolic::SymbolicContext;

fn bench_relation_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_relation_build");
    group.sample_size(10);
    for n in [6usize, 9, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (p, _) = dijkstra_token_ring(n, 4);
                let mut ctx = SymbolicContext::new(p);
                black_box(ctx.protocol_relation())
            });
        });
    }
    group.finish();
}

fn bench_image_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_image_preimage");
    group.sample_size(10);
    for k in [10usize, 20] {
        group.bench_with_input(BenchmarkId::new("preimage", k), &k, |b, &k| {
            let (p, i_expr) = coloring(k);
            let mut ctx = SymbolicContext::new(p);
            // Use the manually known solution relation shape: build all
            // candidate groups' union as a realistic relation.
            let i = ctx.compile(&i_expr);
            let cands = stsyn_core::candidates::CandidateSet::build(&mut ctx, i);
            let t = cands.pim(&mut ctx, stsyn_bdd::Bdd::FALSE);
            b.iter(|| black_box(ctx.pre(t, i)));
        });
        group.bench_with_input(BenchmarkId::new("image", k), &k, |b, &k| {
            let (p, i_expr) = coloring(k);
            let mut ctx = SymbolicContext::new(p);
            let i = ctx.compile(&i_expr);
            let cands = stsyn_core::candidates::CandidateSet::build(&mut ctx, i);
            let t = cands.pim(&mut ctx, stsyn_bdd::Bdd::FALSE);
            let not_i = ctx.not_states(i);
            b.iter(|| black_box(ctx.img(t, not_i)));
        });
    }
    group.finish();
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_gc");
    group.sample_size(10);
    group.bench_function("gc_after_ranks_coloring15", |b| {
        b.iter(|| {
            let (p, i_expr) = coloring(15);
            let mut ctx = SymbolicContext::new(p);
            let i = ctx.compile(&i_expr);
            let cands = stsyn_core::candidates::CandidateSet::build(&mut ctx, i);
            let t = cands.pim(&mut ctx, stsyn_bdd::Bdd::FALSE);
            let ranks = stsyn_symbolic::compute_ranks(&mut ctx, t, i);
            let mut roots = cands.roots();
            roots.push(t);
            roots.extend(ranks.ranks.iter().copied());
            black_box(ctx.gc(&roots))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_relation_build, bench_image_ops, bench_gc);
criterion_main!(benches);
