//! Ablation: Rudell's sifting recovering a good order from a bad one.
//! The blocked (non-interleaved) current/primed layout makes frame
//! conditions balloon; sifting should restore most of the interleaved
//! order's compactness without being told anything about the protocol.

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, Criterion};
use stsyn_cases::dijkstra_token_ring;
use stsyn_symbolic::{SymbolicContext, VarOrder};

fn bench_sift(c: &mut Criterion) {
    let mut group = c.benchmark_group("sift_blocked_relation");
    group.sample_size(10);
    group.bench_function("token_ring_6_blocked", |b| {
        b.iter(|| {
            let (p, _) = dijkstra_token_ring(6, 4);
            let mut ctx = SymbolicContext::with_order(p, VarOrder::Blocked);
            let t = ctx.protocol_relation();
            let (before, after) = ctx.mgr().sift(&[t]);
            assert!(after <= before);
            black_box((before, after))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sift);
criterion_main!(benches);
