//! Ablation: symbolic (BDD) versus explicit-state computation of the two
//! pillars of the method — `ComputeRanks` and the strong-convergence check
//! — on the same instances. Shows where the symbolic representation
//! starts paying for itself (the paper's 3^40-state coloring instance is
//! far beyond any explicit enumeration).

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsyn_cases::{dijkstra_token_ring, matching};
use stsyn_protocol::explicit::{check_convergence, predicate_states, ExplicitGraph};
use stsyn_symbolic::check::strong_convergence;
use stsyn_symbolic::{compute_ranks, SymbolicContext};

fn bench_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_ranks");
    group.sample_size(10);
    for k in [6usize, 8] {
        group.bench_with_input(BenchmarkId::new("explicit", k), &k, |b, &k| {
            b.iter(|| {
                let (p, i) = matching(k);
                let graph = ExplicitGraph::of_protocol(&p);
                let target = predicate_states(&p, &i);
                black_box(graph.backward_ranks(&target).len())
            });
        });
        group.bench_with_input(BenchmarkId::new("symbolic", k), &k, |b, &k| {
            b.iter(|| {
                let (p, i_expr) = matching(k);
                let mut ctx = SymbolicContext::new(p);
                let t = ctx.protocol_relation();
                let i = ctx.compile(&i_expr);
                black_box(compute_ranks(&mut ctx, t, i).max_rank())
            });
        });
    }
    group.finish();
}

fn bench_convergence_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_convergence_check");
    group.sample_size(10);
    for n in [4usize, 5] {
        group.bench_with_input(BenchmarkId::new("explicit", n), &n, |b, &n| {
            b.iter(|| {
                let (p, i) = dijkstra_token_ring(n, 4);
                black_box(check_convergence(&p, &i).strongly_converges())
            });
        });
        group.bench_with_input(BenchmarkId::new("symbolic", n), &n, |b, &n| {
            b.iter(|| {
                let (p, i_expr) = dijkstra_token_ring(n, 4);
                let mut ctx = SymbolicContext::new(p);
                let t = ctx.protocol_relation();
                let i = ctx.compile(&i_expr);
                black_box(strong_convergence(&mut ctx, t, i).holds)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranks, bench_convergence_check);
criterion_main!(benches);
