//! Fig. 10 / Fig. 11 (Criterion form): synthesis time of Dijkstra's token
//! ring at fixed domain size |D| = 4, growing the process count — the
//! paper's least scalable case study (cycle resolution over large groups).

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsyn_cases::token_ring;
use stsyn_core::{AddConvergence, Options};

fn bench_token_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_token_ring_synthesis");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (p, i) = token_ring(n, 4);
                let problem = AddConvergence::new(p, i).unwrap();
                let outcome = problem.synthesize(&Options::default()).unwrap();
                black_box(outcome.stats.groups_added)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_token_ring);
criterion_main!(benches);
