//! Ablation: the interleaved current/primed variable order versus a
//! blocked (all-current-then-all-primed) order. §VII attributes part of
//! the tool's irregular behaviour to "BDDs not effectively optimized";
//! this bench quantifies the single most important static-ordering
//! decision — interleaving keeps every frame condition (`v' = v` for all
//! unwritten `v`) linear, while the blocked order makes each conjunct
//! span the entire order.

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsyn_cases::dijkstra_token_ring;
use stsyn_symbolic::{SymbolicContext, VarOrder};

fn bench_variable_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("variable_order_relation_build");
    group.sample_size(10);
    // The blocked layout grows ~4× per added process; keep the sweep small
    // so the bad order stays benchable rather than pathological.
    for n in [4usize, 5, 6] {
        for (label, order) in
            [("interleaved", VarOrder::Interleaved), ("blocked", VarOrder::Blocked)]
        {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let (p, _) = dijkstra_token_ring(n, 4);
                    let mut ctx = SymbolicContext::with_order(p, order);
                    let t = ctx.protocol_relation();
                    black_box(ctx.mgr_ref().node_count(t))
                });
            });
        }
    }
    group.finish();
}

fn bench_order_image(c: &mut Criterion) {
    let mut group = c.benchmark_group("variable_order_preimage");
    group.sample_size(10);
    for (label, order) in [("interleaved", VarOrder::Interleaved), ("blocked", VarOrder::Blocked)] {
        group.bench_function(label, |b| {
            let (p, i_expr) = dijkstra_token_ring(6, 4);
            let mut ctx = SymbolicContext::with_order(p, order);
            let t = ctx.protocol_relation();
            let i = ctx.compile(&i_expr);
            b.iter(|| black_box(ctx.pre(t, i)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variable_order, bench_order_image);
criterion_main!(benches);
