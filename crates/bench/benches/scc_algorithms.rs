//! Ablation: the three symbolic SCC algorithms on the same decomposition
//! problem — the non-progress-cycle graph of the Gouda–Acharya matching
//! protocol restricted to ¬I (a realistic cycle-resolution workload).
//! The paper uses the Gentilini skeleton algorithm; this bench justifies
//! that default.

use std::hint::black_box;
use stsyn_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stsyn_cases::gouda_acharya_matching;
use stsyn_symbolic::scc::{scc_decomposition, SccAlgorithm};
use stsyn_symbolic::SymbolicContext;

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_algorithms");
    group.sample_size(10);
    for k in [6usize, 7] {
        for algo in [SccAlgorithm::Skeleton, SccAlgorithm::Lockstep, SccAlgorithm::XieBeerel] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), k),
                &(k, algo),
                |b, &(k, algo)| {
                    // Build once per iteration: the manager's caches would
                    // otherwise make later iterations trivially fast.
                    b.iter(|| {
                        let (p, i_expr) = gouda_acharya_matching(k);
                        let mut ctx = SymbolicContext::new(p);
                        let t = ctx.protocol_relation();
                        let i = ctx.compile(&i_expr);
                        let not_i = ctx.not_states(i);
                        let restricted = ctx.restrict_relation(t, not_i);
                        let sccs = scc_decomposition(&mut ctx, restricted, not_i, algo);
                        black_box(sccs.len())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scc);
criterion_main!(benches);
