//! Property tests: every model-checking verdict of the symbolic engine —
//! closure, deadlocks, strong convergence, weak convergence — agrees with
//! the explicit-state oracle on randomly generated protocols *with*
//! actions (the cross-crate suite in `tests/properties.rs` covers the
//! synthesis pipeline; this one stresses the checkers directly).

// Property tests need the external `proptest` crate, which is not
// available offline; opt in with `--features proptest` after restoring the
// dev-dependency (see Cargo.toml).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use stsyn_protocol::action::Action;
use stsyn_protocol::explicit::{check_convergence, is_closed, predicate_states, ExplicitGraph};
use stsyn_protocol::expr::Expr;
use stsyn_protocol::group::groups_of_protocol;
use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
use stsyn_protocol::Protocol;
use stsyn_symbolic::check::{closure_holds, deadlock_states, strong_convergence, weak_convergence};
use stsyn_symbolic::ranks::{compute_ranks, compute_ranks_parts};
use stsyn_symbolic::{Engine, SymbolicContext};

#[derive(Debug, Clone)]
struct Spec {
    domains: Vec<u32>,
    localities: Vec<(u8, u8)>,
    actions: Vec<(usize, Vec<(usize, u32)>, usize, Option<usize>, u32)>,
    invariant: Vec<Vec<(usize, u32)>>,
}

fn build(spec: &Spec) -> Option<(Protocol, Expr)> {
    let nvars = spec.domains.len();
    let vars: Vec<VarDecl> =
        spec.domains.iter().enumerate().map(|(i, &d)| VarDecl::new(format!("v{i}"), d)).collect();
    let mut procs = Vec::new();
    for (j, &(rmask, wmask)) in spec.localities.iter().enumerate() {
        let reads: Vec<VarIdx> = (0..nvars).filter(|i| rmask >> i & 1 == 1).map(VarIdx).collect();
        let writes: Vec<VarIdx> =
            (0..nvars).filter(|i| (wmask & rmask) >> i & 1 == 1).map(VarIdx).collect();
        if reads.is_empty() || writes.is_empty() {
            return None;
        }
        procs.push(ProcessDecl::new(format!("P{j}"), reads, writes).ok()?);
    }
    let mut actions = Vec::new();
    for (pj, guard_lits, wslot, src, val) in &spec.actions {
        let pj = pj % procs.len();
        let proc = &procs[pj];
        let guard = Expr::conj(
            guard_lits
                .iter()
                .map(|&(slot, v)| {
                    let var = proc.reads[slot % proc.reads.len()];
                    Expr::var(var).eq(Expr::int((v % spec.domains[var.0]) as i64))
                })
                .collect(),
        );
        let target = proc.writes[wslot % proc.writes.len()];
        let d = spec.domains[target.0] as i64;
        let rhs = match src {
            Some(rslot) => {
                let from = proc.reads[rslot % proc.reads.len()];
                Expr::var(from).modulo(Expr::int(d))
            }
            None => Expr::int((*val as i64) % d),
        };
        actions.push(Action::new(ProcIdx(pj), guard, vec![(target, rhs)]));
    }
    let invariant = Expr::disj(
        spec.invariant
            .iter()
            .map(|conj| {
                Expr::conj(
                    conj.iter()
                        .map(|&(vi, val)| {
                            let vi = vi % nvars;
                            Expr::var(VarIdx(vi)).eq(Expr::int((val % spec.domains[vi]) as i64))
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    let p = Protocol::new(vars, procs, actions).ok()?;
    Some((p, invariant))
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        proptest::collection::vec(2u32..=3, 2..=3),
        proptest::collection::vec((1u8..8, 1u8..8), 1..=3),
        proptest::collection::vec(
            (
                0usize..3,
                proptest::collection::vec((0usize..3, 0u32..3), 0..=2),
                0usize..3,
                proptest::option::of(0usize..3),
                0u32..3,
            ),
            0..=8,
        ),
        proptest::collection::vec(proptest::collection::vec((0usize..3, 0u32..3), 1..=2), 1..=2),
    )
        .prop_map(|(domains, localities, actions, invariant)| Spec {
            domains,
            localities,
            actions,
            invariant,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn verdicts_match_explicit_oracle(spec in arb_spec()) {
        let Some((p, i_expr)) = build(&spec) else { return Ok(()); };
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i = ctx.compile(&i_expr);

        // Closure.
        prop_assert_eq!(closure_holds(&mut ctx, t, i), is_closed(&p, &i_expr));

        // Deadlocks outside I (set equality via counting + membership).
        let dead_sym = deadlock_states(&mut ctx, t, i);
        let graph = ExplicitGraph::of_protocol(&p);
        let i_set = predicate_states(&p, &i_expr);
        let mut dead_exp = graph.deadlocks();
        dead_exp.intersect_with(&i_set.complement());
        prop_assert_eq!(ctx.count_states(dead_sym) as usize, dead_exp.count());
        for sid in dead_exp.iter() {
            let s = p.space().decode(sid);
            let cube = ctx.singleton(&s);
            prop_assert!(!ctx.mgr().and(cube, dead_sym).is_false(), "missing deadlock {s:?}");
        }

        // Strong and weak convergence. (With an empty I both engines
        // agree vacuously: a finite deadlock-free graph must contain a
        // cycle, so "strongly converges to ∅" is false on both sides.)
        let report = check_convergence(&p, &i_expr);
        prop_assert_eq!(strong_convergence(&mut ctx, t, i).holds, report.strongly_converges());
        prop_assert_eq!(weak_convergence(&mut ctx, t, i).holds, report.weakly_converges());
    }

    /// The partitioned and saturation engines return the same canonical
    /// BDDs as the monolithic operators — image, preimage, enabledness,
    /// both closures and the full rank table — on arbitrary protocols,
    /// not just the hand-picked case studies.
    #[test]
    fn partitioned_engines_agree_with_monolithic(spec in arb_spec()) {
        let Some((p, i_expr)) = build(&spec) else { return Ok(()); };
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i = ctx.compile(&i_expr);
        let parts = ctx.partitioned_relation(&groups_of_protocol(&p));

        let not_i = ctx.mgr().not(i);
        let tt = ctx.mgr().one();
        for x in [i, not_i, tt] {
            prop_assert_eq!(ctx.img(t, x), ctx.img_parts(&parts, x));
            prop_assert_eq!(ctx.pre(t, x), ctx.pre_parts(&parts, x));
            for engine in [Engine::Partitioned, Engine::Saturation] {
                prop_assert_eq!(
                    ctx.forward_closure(t, x),
                    ctx.forward_closure_parts(engine, &parts, x)
                );
                prop_assert_eq!(
                    ctx.backward_closure(t, x),
                    ctx.backward_closure_parts(engine, &parts, x)
                );
            }
        }
        prop_assert_eq!(ctx.enabled(t), ctx.enabled_parts(&parts));

        let mono = compute_ranks(&mut ctx, t, i);
        let part = compute_ranks_parts(&mut ctx, &parts, i);
        prop_assert_eq!(mono.ranks, part.ranks);
        prop_assert_eq!(mono.explored, part.explored);
        prop_assert_eq!(mono.infinite, part.infinite);
    }

    #[test]
    fn trace_extraction_agrees_with_reachability(spec in arb_spec()) {
        let Some((p, i_expr)) = build(&spec) else { return Ok(()); };
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i = ctx.compile(&i_expr);
        let graph = ExplicitGraph::of_protocol(&p);
        let i_set = predicate_states(&p, &i_expr);
        if i_set.count() == 0 { return Ok(()); }
        let ranks = graph.backward_ranks(&i_set);
        for (sid, s) in p.space().states().enumerate() {
            let trace = ctx.recovery_trace(t, &s, i);
            match trace {
                Some(path) => {
                    // Shortest: length-1 equals the BFS rank.
                    prop_assert_eq!(path.len() as u32 - 1, ranks[sid], "state {:?}", s);
                    // Each step is a real transition; ends in I.
                    prop_assert!(i_expr.holds(path.last().unwrap()));
                    for w in path.windows(2) {
                        prop_assert!(
                            p.successors(&w[0]).contains(&w[1]),
                            "bogus step {:?} → {:?}",
                            w[0],
                            w[1]
                        );
                    }
                }
                None => prop_assert_eq!(ranks[sid], u32::MAX, "state {:?}", s),
            }
        }
    }
}
