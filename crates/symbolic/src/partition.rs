//! Disjunctively partitioned transition relations.
//!
//! The monolithic encoding ORs every transition group into one relation
//! BDD and drives each `img`/`pre` through a single full-width
//! `and_exists`. That product carries one identity frame per process —
//! `O(processes × vars)` bits of "nothing else changes" — and its node
//! count is the dominant space term in the paper's Fig. 7/9/11 curves.
//!
//! A [`PartitionedRelation`] instead keeps one *frameless* relation per
//! process (optionally merged into clusters under a node-count cap):
//!
//! * each partition's relation only mentions the current-state bits its
//!   process reads and the primed bits it writes — no frame at all,
//! * each partition carries its own interned quantification cubes and
//!   (partial) rename maps, so image and preimage become a clustered
//!   relational product with *early quantification*: conjoin one
//!   partition, immediately quantify the bits no later operand mentions
//!   ([`stsyn_bdd::Manager::try_and_exists_many`]),
//! * the full image/preimage is the OR of the per-partition results.
//!
//! This is exact, not an approximation: the paper's model requires every
//! written variable to be readable (`TopologyError::WriteNotReadable`),
//! so a partition's source cubes pin its written variables and the
//! unwritten ones ride along in the state predicate itself — precisely
//! what the monolithic frame would have transported. All partitioned
//! operators therefore return the *same canonical BDDs* as their
//! monolithic counterparts, which is what keeps synthesized protocols
//! byte-identical across engines.
//!
//! On top of the clustered product sits a *saturation* mode for the
//! least-fixpoint closures: fire one partition to a local fixpoint
//! before moving to the next, sweeping partitions in locality (process
//! index) order until a full sweep adds nothing. Least fixpoints are
//! independent of firing order, so saturated closures still return the
//! canonical reachable set; greatest-fixpoint cores (`forward_core`/
//! `backward_core`) do *not* decompose over a disjunction of preimages
//! and always use the full clustered product per iteration.

use crate::encode::{SymbolicContext, VarOrder, INFALLIBLE};
use stsyn_bdd::{Bdd, BddError, RenameId, VarId, VarSetId};
use stsyn_obs::{Json, TraceLevel};
use stsyn_protocol::group::GroupDesc;
use stsyn_protocol::topology::VarIdx;

/// Which image/preimage engine drives the symbolic fixpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// One monolithic transition relation, full-width `and_exists`.
    /// The original engine and still the default.
    #[default]
    Monolithic,
    /// Per-process clustered partitions with early quantification;
    /// breadth-first fixpoints (one full image/preimage per iteration).
    Partitioned,
    /// Partitioned, plus saturation-ordered firing for the
    /// least-fixpoint closures: each partition runs to a local fixpoint
    /// before the next one fires.
    Saturation,
}

impl Engine {
    /// Canonical lowercase name, as accepted by `--engine`.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Monolithic => "monolithic",
            Engine::Partitioned => "partitioned",
            Engine::Saturation => "saturation",
        }
    }

    /// Parse a `--engine` value. `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "monolithic" => Some(Engine::Monolithic),
            "partitioned" => Some(Engine::Partitioned),
            "saturation" => Some(Engine::Saturation),
            _ => None,
        }
    }

    /// Does this engine use a [`PartitionedRelation`]?
    pub fn is_partitioned(self) -> bool {
        !matches!(self, Engine::Monolithic)
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Default node-count cap for merging adjacent per-process partitions
/// into clusters. Small enough that a cluster product stays cheap, big
/// enough that trivial processes (a handful of groups each) coalesce.
pub const DEFAULT_CLUSTER_CAP: usize = 1024;

/// One cluster of the partitioned relation: a frameless relation over
/// the cluster's read (current) and written (primed) bits, plus the
/// interned quantification cubes and partial rename maps its local
/// image/preimage needs.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Frameless relation: OR over the cluster's groups of
    /// (source cube over current bits) ∧ (target cube over primed bits),
    /// identity-padded over the cluster write-set where members differ.
    relation: Bdd,
    /// Written variables of the cluster (sorted, deduplicated).
    writes: Vec<VarIdx>,
    /// Current-state bits of `writes` — quantified early during image.
    quant_img: VarSetId,
    /// Primed bits of `writes` — quantified early during preimage.
    quant_pre: VarSetId,
    /// Partial rename current → primed over `writes` (preimage shift).
    fwd: RenameId,
    /// Partial rename primed → current over `writes` (image shift).
    bwd: RenameId,
}

impl Partition {
    /// The cluster's relation BDD.
    pub fn relation(&self) -> Bdd {
        self.relation
    }

    /// The cluster's written variables.
    pub fn writes(&self) -> &[VarIdx] {
        &self.writes
    }
}

/// A transition relation split into per-process (or per-cluster)
/// partitions, in locality (process index) order.
///
/// Built once per relation by
/// [`SymbolicContext::try_partitioned_relation`]; the interned cubes and
/// rename maps survive budget-driven reordering because the budget path
/// only runs pair-preserving sifting.
#[derive(Debug, Clone)]
pub struct PartitionedRelation {
    parts: Vec<Partition>,
    /// Interned empty cube — the "quantify nothing" schedule slot for
    /// the state-predicate operand of the clustered product.
    none: VarSetId,
}

impl PartitionedRelation {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the relation has no transitions at all.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The clusters, in locality order.
    pub fn parts(&self) -> &[Partition] {
        &self.parts
    }

    /// All partition relation BDDs — GC/budget roots.
    pub fn roots(&self) -> Vec<Bdd> {
        self.parts.iter().map(|p| p.relation).collect()
    }
}

/// Merge two sorted, deduplicated `VarIdx` lists.
fn union_sorted(a: &[VarIdx], b: &[VarIdx]) -> Vec<VarIdx> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl SymbolicContext {
    /// Infallible [`SymbolicContext::try_partitioned_relation`].
    pub fn partitioned_relation(&mut self, descs: &[GroupDesc]) -> PartitionedRelation {
        self.try_partitioned_relation(descs).expect(INFALLIBLE)
    }

    /// Build the partitioned form of the relation `OR of descs` with the
    /// default cluster cap ([`DEFAULT_CLUSTER_CAP`]).
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_partitioned_relation(
        &mut self,
        descs: &[GroupDesc],
    ) -> Result<PartitionedRelation, BddError> {
        self.try_partitioned_relation_capped(descs, DEFAULT_CLUSTER_CAP)
    }

    /// Build the partitioned form of the relation `OR of descs`: one
    /// frameless relation per process, then greedily merge *adjacent*
    /// (locality-order) partitions while the merged relation stays at or
    /// under `cluster_cap` nodes. Merging identity-pads each member over
    /// the cluster write-set so disjuncts agree on what "unchanged"
    /// means inside the cluster.
    ///
    /// Panics under [`VarOrder::Blocked`]: the per-partition partial
    /// renames (written bits only) are order-preserving only when each
    /// variable's current/primed bits are interleaved.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_partitioned_relation_capped(
        &mut self,
        descs: &[GroupDesc],
        cluster_cap: usize,
    ) -> Result<PartitionedRelation, BddError> {
        assert_eq!(
            self.var_order(),
            VarOrder::Interleaved,
            "partitioned engines need the interleaved order: partial \
             written-bits-only renames must stay order-preserving"
        );
        // Per-process frameless relations, locality (index) order.
        let nproc = self.protocol().num_processes();
        let mut per_proc: Vec<(Bdd, Vec<VarIdx>)> = Vec::new();
        for j in 0..nproc {
            let mut rel = Bdd::FALSE;
            let mut any = false;
            for g in descs.iter().filter(|g| g.process.0 == j) {
                any = true;
                let local = self.try_group_frameless(g)?;
                rel = self.mgr().try_or(rel, local)?;
            }
            if any {
                let writes = self.protocol().processes()[j].writes.clone();
                per_proc.push((rel, writes));
            }
        }
        // Greedy adjacent clustering under the node cap.
        let mut clusters: Vec<(Bdd, Vec<VarIdx>)> = Vec::new();
        for (rel, writes) in per_proc {
            if let Some((crel, cw)) = clusters.last() {
                let (crel, cw) = (*crel, cw.clone());
                let merged_w = union_sorted(&cw, &writes);
                let padded_c = self.try_pad_identity(crel, &cw, &merged_w)?;
                let padded_n = self.try_pad_identity(rel, &writes, &merged_w)?;
                let merged = self.mgr().try_or(padded_c, padded_n)?;
                if self.mgr_ref().node_count(merged) <= cluster_cap {
                    *clusters.last_mut().expect("cluster present") = (merged, merged_w);
                    continue;
                }
            }
            clusters.push((rel, writes));
        }
        // Intern quantification cubes and partial rename maps.
        let none = self.mgr().varset(&[]);
        let mut parts = Vec::with_capacity(clusters.len());
        let mut early_bits = 0u64;
        for (relation, writes) in clusters {
            let mut cur: Vec<VarId> = Vec::new();
            let mut pairs: Vec<(VarId, VarId)> = Vec::new();
            for &w in &writes {
                let (c, p) = (self.cur_bits(w).to_vec(), self.primed_bits(w).to_vec());
                cur.extend_from_slice(&c);
                pairs.extend(c.iter().copied().zip(p.iter().copied()));
            }
            let primed: Vec<VarId> = pairs.iter().map(|&(_, p)| p).collect();
            let back: Vec<(VarId, VarId)> = pairs.iter().map(|&(c, p)| (p, c)).collect();
            early_bits += cur.len() as u64;
            let quant_img = self.mgr().varset(&cur);
            let quant_pre = self.mgr().varset(&primed);
            let fwd = self.mgr().rename_map(&pairs);
            let bwd = self.mgr().rename_map(&back);
            parts.push(Partition { relation, writes, quant_img, quant_pre, fwd, bwd });
        }
        let rel = PartitionedRelation { parts, none };
        if self.mgr_ref().tracer().level_enabled(TraceLevel::Info) {
            let nodes = self.mgr_ref().node_count_many(&rel.roots()) as u64;
            self.mgr_ref().tracer().info(
                "partition.build",
                &[
                    ("partitions", Json::from(rel.len() as u64)),
                    ("groups", Json::from(descs.len() as u64)),
                    ("relation_nodes", Json::from(nodes)),
                    ("early_quant_bits", Json::from(early_bits)),
                ],
            );
        }
        Ok(rel)
    }

    /// `rel ∧ identity(v)` for every `v ∈ want ∖ have` (both sorted).
    fn try_pad_identity(
        &mut self,
        rel: Bdd,
        have: &[VarIdx],
        want: &[VarIdx],
    ) -> Result<Bdd, BddError> {
        let mut out = rel;
        for &v in want {
            if have.binary_search(&v).is_err() {
                let id = self.identity_of(v);
                out = self.mgr().try_and(out, id)?;
            }
        }
        Ok(out)
    }

    /// Image through one partition: `rename_bwd(∃ cur-writes. x ∧ T_k)`.
    fn try_img_one(&mut self, t: &PartitionedRelation, k: usize, x: Bdd) -> Result<Bdd, BddError> {
        let p = &t.parts[k];
        let shifted = self.mgr().try_and_exists_many(&[x, p.relation], &[t.none, p.quant_img])?;
        self.mgr().try_rename(shifted, p.bwd)
    }

    /// Preimage through one partition:
    /// `∃ primed-writes. x[cur→primed over writes] ∧ T_k`.
    fn try_pre_one(&mut self, t: &PartitionedRelation, k: usize, x: Bdd) -> Result<Bdd, BddError> {
        let p = &t.parts[k];
        let xp = self.mgr().try_rename(x, p.fwd)?;
        self.mgr().try_and_exists_many(&[xp, p.relation], &[t.none, p.quant_pre])
    }

    /// Emit the per-partition apply-size counter (Debug-gated; the node
    /// count is only computed when a Debug sink is attached).
    fn trace_apply(&self, op: &'static str, k: usize, local: Bdd) {
        if self.mgr_ref().tracer().level_enabled(TraceLevel::Debug) {
            let nodes = self.mgr_ref().node_count(local) as u64;
            self.mgr_ref().tracer().debug(
                "partition.apply",
                &[
                    ("op", Json::from(op)),
                    ("part", Json::from(k as u64)),
                    ("nodes", Json::from(nodes)),
                ],
            );
        }
    }

    /// Infallible [`SymbolicContext::try_img_parts`].
    pub fn img_parts(&mut self, t: &PartitionedRelation, x: Bdd) -> Bdd {
        self.try_img_parts(t, x).expect(INFALLIBLE)
    }

    /// Clustered image: OR of the per-partition images of `x`. Returns
    /// the same canonical BDD as `try_img` on the monolithic relation.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_img_parts(&mut self, t: &PartitionedRelation, x: Bdd) -> Result<Bdd, BddError> {
        let mut out = Bdd::FALSE;
        for k in 0..t.parts.len() {
            let local = self.try_img_one(t, k, x)?;
            self.trace_apply("img", k, local);
            out = self.mgr().try_or(out, local)?;
        }
        Ok(out)
    }

    /// Infallible [`SymbolicContext::try_pre_parts`].
    pub fn pre_parts(&mut self, t: &PartitionedRelation, x: Bdd) -> Bdd {
        self.try_pre_parts(t, x).expect(INFALLIBLE)
    }

    /// Clustered preimage: OR of the per-partition preimages of `x`.
    /// Returns the same canonical BDD as `try_pre` on the monolithic
    /// relation.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_pre_parts(&mut self, t: &PartitionedRelation, x: Bdd) -> Result<Bdd, BddError> {
        let mut out = Bdd::FALSE;
        for k in 0..t.parts.len() {
            let local = self.try_pre_one(t, k, x)?;
            self.trace_apply("pre", k, local);
            out = self.mgr().try_or(out, local)?;
        }
        Ok(out)
    }

    /// Infallible [`SymbolicContext::try_enabled_parts`].
    pub fn enabled_parts(&mut self, t: &PartitionedRelation) -> Bdd {
        self.try_enabled_parts(t).expect(INFALLIBLE)
    }

    /// States with at least one outgoing transition: OR over partitions
    /// of `∃ primed-writes. T_k`. Equals `try_enabled` on the monolithic
    /// relation (its identity frames quantify away to true).
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_enabled_parts(&mut self, t: &PartitionedRelation) -> Result<Bdd, BddError> {
        let mut out = Bdd::FALSE;
        for k in 0..t.parts.len() {
            let p = &t.parts[k];
            let local = self.mgr().try_exists(p.relation, p.quant_pre)?;
            out = self.mgr().try_or(out, local)?;
        }
        Ok(out)
    }

    /// Budget safe point with the partition relations as extra roots.
    pub(crate) fn enforce_parts_budget(
        &mut self,
        t: &PartitionedRelation,
        extra: &[Bdd],
    ) -> Result<(), BddError> {
        let mut roots = t.roots();
        roots.extend_from_slice(extra);
        self.mgr().enforce_node_budget(&roots)
    }

    /// Infallible [`SymbolicContext::try_forward_closure_parts`].
    pub fn forward_closure_parts(
        &mut self,
        engine: Engine,
        t: &PartitionedRelation,
        x: Bdd,
    ) -> Bdd {
        self.try_forward_closure_parts(engine, t, x).expect(INFALLIBLE)
    }

    /// Least fixpoint `μZ. x ∨ img(Z)` over the partitioned relation.
    /// Under [`Engine::Saturation`] partitions fire to local fixpoints
    /// in locality order; the result is the same canonical BDD either
    /// way (least fixpoints are firing-order independent).
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_forward_closure_parts(
        &mut self,
        engine: Engine,
        t: &PartitionedRelation,
        x: Bdd,
    ) -> Result<Bdd, BddError> {
        if engine == Engine::Saturation {
            return self.try_closure_saturated(t, x, true);
        }
        let mut reach = x;
        loop {
            self.enforce_parts_budget(t, &[x, reach])?;
            let step = self.try_img_parts(t, reach)?;
            let next = self.mgr().try_or(reach, step)?;
            if next == reach {
                return Ok(reach);
            }
            reach = next;
        }
    }

    /// Infallible [`SymbolicContext::try_backward_closure_parts`].
    pub fn backward_closure_parts(
        &mut self,
        engine: Engine,
        t: &PartitionedRelation,
        x: Bdd,
    ) -> Bdd {
        self.try_backward_closure_parts(engine, t, x).expect(INFALLIBLE)
    }

    /// Least fixpoint `μZ. x ∨ pre(Z)` over the partitioned relation —
    /// see [`SymbolicContext::try_forward_closure_parts`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_backward_closure_parts(
        &mut self,
        engine: Engine,
        t: &PartitionedRelation,
        x: Bdd,
    ) -> Result<Bdd, BddError> {
        if engine == Engine::Saturation {
            return self.try_closure_saturated(t, x, false);
        }
        let mut reach = x;
        loop {
            self.enforce_parts_budget(t, &[x, reach])?;
            let step = self.try_pre_parts(t, reach)?;
            let next = self.mgr().try_or(reach, step)?;
            if next == reach {
                return Ok(reach);
            }
            reach = next;
        }
    }

    /// Saturation-ordered closure: fire each partition to a local
    /// fixpoint in locality order, and sweep until a whole pass adds
    /// nothing. `forward` picks image vs. preimage.
    fn try_closure_saturated(
        &mut self,
        t: &PartitionedRelation,
        x: Bdd,
        forward: bool,
    ) -> Result<Bdd, BddError> {
        let mut reach = x;
        let mut sweeps = 0u64;
        let mut fires = 0u64;
        loop {
            let before_sweep = reach;
            for k in 0..t.parts.len() {
                loop {
                    self.enforce_parts_budget(t, &[x, reach])?;
                    let step = if forward {
                        self.try_img_one(t, k, reach)?
                    } else {
                        self.try_pre_one(t, k, reach)?
                    };
                    fires += 1;
                    let next = self.mgr().try_or(reach, step)?;
                    if next == reach {
                        break;
                    }
                    reach = next;
                }
            }
            sweeps += 1;
            if reach == before_sweep {
                break;
            }
        }
        if self.mgr_ref().tracer().level_enabled(TraceLevel::Debug) {
            self.mgr_ref().tracer().debug(
                "saturation.closure",
                &[
                    ("op", Json::from(if forward { "img" } else { "pre" })),
                    ("sweeps", Json::from(sweeps)),
                    ("fires", Json::from(fires)),
                ],
            );
        }
        Ok(reach)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::expr::Expr;
    use stsyn_protocol::group::groups_of_protocol;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl};
    use stsyn_protocol::Protocol;

    fn c() -> Expr {
        Expr::var(VarIdx(0))
    }

    /// mod-4 counter, one process, one variable.
    fn counter() -> SymbolicContext {
        let vars = vec![VarDecl::new("c", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let inc = Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), c().add(Expr::int(1)).modulo(Expr::int(4)))],
        );
        SymbolicContext::new(Protocol::new(vars, procs, vec![inc]).unwrap())
    }

    /// Two processes on two ternary variables, each reading both and
    /// writing its own: P0 does x := (x+1) mod 3 when x == y, P1 does
    /// y := (y+1) mod 3 when x != y.
    fn two_proc() -> SymbolicContext {
        let x = || Expr::var(VarIdx(0));
        let y = || Expr::var(VarIdx(1));
        let vars = vec![VarDecl::new("x", 3), VarDecl::new("y", 3)];
        let procs = vec![
            ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap(),
            ProcessDecl::new("P1", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(1)]).unwrap(),
        ];
        let a0 = Action::new(
            ProcIdx(0),
            x().eq(y()),
            vec![(VarIdx(0), x().add(Expr::int(1)).modulo(Expr::int(3)))],
        );
        let a1 = Action::new(
            ProcIdx(1),
            x().ne(y()),
            vec![(VarIdx(1), y().add(Expr::int(1)).modulo(Expr::int(3)))],
        );
        SymbolicContext::new(Protocol::new(vars, procs, vec![a0, a1]).unwrap())
    }

    fn check_equivalence(ctx: &mut SymbolicContext, cap: usize) {
        let descs = groups_of_protocol(ctx.protocol());
        let mono = ctx.protocol_relation();
        let parts = ctx.try_partitioned_relation_capped(&descs, cap).unwrap();
        // A basket of state predicates to compare on.
        let all = ctx.all_states();
        let mut preds = vec![all, Bdd::FALSE];
        if let Some(s) = ctx.pick_state(all) {
            preds.push(ctx.singleton(&s));
        }
        let en = ctx.enabled(mono);
        preds.push(en);
        for &p in &preds {
            let mi = ctx.img(mono, p);
            let mp = ctx.pre(mono, p);
            assert_eq!(ctx.img_parts(&parts, p), mi, "img mismatch");
            assert_eq!(ctx.pre_parts(&parts, p), mp, "pre mismatch");
            let fm = ctx.forward_closure(mono, p);
            let bm = ctx.backward_closure(mono, p);
            for engine in [Engine::Partitioned, Engine::Saturation] {
                assert_eq!(ctx.forward_closure_parts(engine, &parts, p), fm, "{engine} fwd");
                assert_eq!(ctx.backward_closure_parts(engine, &parts, p), bm, "{engine} bwd");
            }
        }
        assert_eq!(ctx.enabled_parts(&parts), en, "enabled mismatch");
    }

    #[test]
    fn engine_names_roundtrip() {
        for e in [Engine::Monolithic, Engine::Partitioned, Engine::Saturation] {
            assert_eq!(Engine::parse(e.as_str()), Some(e));
            assert_eq!(format!("{e}"), e.as_str());
        }
        assert_eq!(Engine::parse("turbo"), None);
        assert_eq!(Engine::default(), Engine::Monolithic);
        assert!(!Engine::Monolithic.is_partitioned());
        assert!(Engine::Saturation.is_partitioned());
    }

    #[test]
    fn single_process_partition_matches_monolithic() {
        let mut ctx = counter();
        check_equivalence(&mut ctx, DEFAULT_CLUSTER_CAP);
    }

    #[test]
    fn two_process_partitions_match_monolithic() {
        let mut ctx = two_proc();
        let descs = groups_of_protocol(ctx.protocol());
        // Cap 0: never merge — one partition per process.
        let split = ctx.try_partitioned_relation_capped(&descs, 0).unwrap();
        assert_eq!(split.len(), 2);
        check_equivalence(&mut ctx, 0);
        // Unbounded cap: everything merges into a single cluster, whose
        // identity-padded OR *is* the monolithic relation.
        let merged = ctx.try_partitioned_relation_capped(&descs, usize::MAX).unwrap();
        assert_eq!(merged.len(), 1);
        let mono = ctx.protocol_relation();
        assert_eq!(merged.parts()[0].relation(), mono);
        check_equivalence(&mut ctx, usize::MAX);
    }

    #[test]
    fn empty_relation_behaves() {
        let mut ctx = two_proc();
        let parts = ctx.try_partitioned_relation(&[]).unwrap();
        assert!(parts.is_empty());
        let all = ctx.all_states();
        assert!(ctx.img_parts(&parts, all).is_false());
        assert!(ctx.pre_parts(&parts, all).is_false());
        assert!(ctx.enabled_parts(&parts).is_false());
        for engine in [Engine::Partitioned, Engine::Saturation] {
            assert_eq!(ctx.forward_closure_parts(engine, &parts, all), all);
        }
    }

    #[test]
    #[should_panic(expected = "interleaved order")]
    fn blocked_order_is_rejected() {
        let vars = vec![VarDecl::new("c", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let inc = Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), c().add(Expr::int(1)).modulo(Expr::int(4)))],
        );
        let p = Protocol::new(vars, procs, vec![inc]).unwrap();
        let mut ctx = SymbolicContext::with_order(p, VarOrder::Blocked);
        let descs = groups_of_protocol(ctx.protocol());
        let _ = ctx.try_partitioned_relation(&descs);
    }
}
