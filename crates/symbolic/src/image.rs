//! Image, preimage and reachability over a symbolic transition relation.
//!
//! Every operation comes in two flavours: the classic infallible name and
//! a `try_*` variant returning `Result<_, BddError>` for budgeted runs.
//! The closure fixpoints additionally hit a node-ceiling *safe point*
//! ([`stsyn_bdd::Manager::enforce_node_budget`]) once per iteration; a
//! caller that installs a node ceiling must therefore keep the manager's
//! registered root set complete for every handle it holds across the call
//! (see [`SymbolicContext::register_roots`]).

use crate::encode::{SymbolicContext, INFALLIBLE};
use stsyn_bdd::{Bdd, BddError};

impl SymbolicContext {
    /// Forward image: the states reachable from `x` in exactly one
    /// transition of `t`. `img(t, x) = (∃cur. t ∧ x)[primed ↦ cur]`.
    pub fn img(&mut self, t: Bdd, x: Bdd) -> Bdd {
        self.try_img(t, x).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::img`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_img(&mut self, t: Bdd, x: Bdd) -> Result<Bdd, BddError> {
        let cur = self.cur_set();
        let map = self.primed_to_cur();
        let shifted = self.mgr().try_and_exists(t, x, cur)?;
        self.mgr().try_rename(shifted, map)
    }

    /// Backward image: the states with a `t`-successor in `x`.
    /// `pre(t, x) = ∃primed. t ∧ x[cur ↦ primed]`.
    pub fn pre(&mut self, t: Bdd, x: Bdd) -> Bdd {
        self.try_pre(t, x).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::pre`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_pre(&mut self, t: Bdd, x: Bdd) -> Result<Bdd, BddError> {
        let primed = self.primed_set();
        let map = self.cur_to_primed();
        let xp = self.mgr().try_rename(x, map)?;
        self.mgr().try_and_exists(t, xp, primed)
    }

    /// States with at least one outgoing `t` transition.
    pub fn enabled(&mut self, t: Bdd) -> Bdd {
        self.try_enabled(t).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::enabled`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_enabled(&mut self, t: Bdd) -> Result<Bdd, BddError> {
        let primed = self.primed_set();
        self.mgr().try_exists(t, primed)
    }

    /// All states reachable from `x` (reflexive-transitive forward
    /// closure).
    pub fn forward_closure(&mut self, t: Bdd, x: Bdd) -> Bdd {
        self.try_forward_closure(t, x).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::forward_closure`]; checks
    /// the node ceiling at a safe point before every frontier expansion.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_forward_closure(&mut self, t: Bdd, x: Bdd) -> Result<Bdd, BddError> {
        let mut reach = x;
        loop {
            self.mgr().enforce_node_budget(&[t, x, reach])?;
            let step = self.try_img(t, reach)?;
            let next = self.mgr().try_or(reach, step)?;
            if next == reach {
                return Ok(reach);
            }
            reach = next;
        }
    }

    /// All states that can reach `x` (reflexive-transitive backward
    /// closure).
    pub fn backward_closure(&mut self, t: Bdd, x: Bdd) -> Bdd {
        self.try_backward_closure(t, x).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::backward_closure`]; checks
    /// the node ceiling at a safe point before every frontier expansion.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_backward_closure(&mut self, t: Bdd, x: Bdd) -> Result<Bdd, BddError> {
        let mut reach = x;
        loop {
            self.mgr().enforce_node_budget(&[t, x, reach])?;
            let step = self.try_pre(t, reach)?;
            let next = self.mgr().try_or(reach, step)?;
            if next == reach {
                return Ok(reach);
            }
            reach = next;
        }
    }

    /// Restrict a relation to transitions that start **and** end inside
    /// `x` — the paper's `δ|X` projection.
    pub fn restrict_relation(&mut self, t: Bdd, x: Bdd) -> Bdd {
        self.try_restrict_relation(t, x).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::restrict_relation`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_restrict_relation(&mut self, t: Bdd, x: Bdd) -> Result<Bdd, BddError> {
        let map = self.cur_to_primed();
        let xp = self.mgr().try_rename(x, map)?;
        let t1 = self.mgr().try_and(t, x)?;
        self.mgr().try_and(t1, xp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::expr::Expr;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
    use stsyn_protocol::Protocol;

    /// A 4-counter that increments forever (one cycle through 0..3).
    fn counter() -> Protocol {
        let vars = vec![VarDecl::new("c", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let a = Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), Expr::var(VarIdx(0)).add(Expr::int(1)).modulo(Expr::int(4)))],
        );
        Protocol::new(vars, procs, vec![a]).unwrap()
    }

    /// A ramp: increments only while c < 3 (converges to c == 3).
    fn ramp() -> Protocol {
        let vars = vec![VarDecl::new("c", 4)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let a = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).lt(Expr::int(3)),
            vec![(VarIdx(0), Expr::var(VarIdx(0)).add(Expr::int(1)))],
        );
        Protocol::new(vars, procs, vec![a]).unwrap()
    }

    #[test]
    fn img_and_pre_are_adjoint_on_counter() {
        let mut ctx = SymbolicContext::new(counter());
        let t = ctx.protocol_relation();
        let s1 = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(1)));
        let s2 = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(2)));
        assert_eq!(ctx.img(t, s1), s2);
        assert_eq!(ctx.pre(t, s2), s1);
    }

    #[test]
    fn closures_on_counter_reach_everything() {
        let mut ctx = SymbolicContext::new(counter());
        let t = ctx.protocol_relation();
        let s0 = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(0)));
        let all = ctx.all_states();
        assert_eq!(ctx.forward_closure(t, s0), all);
        assert_eq!(ctx.backward_closure(t, s0), all);
    }

    #[test]
    fn closures_on_ramp_are_directional() {
        let mut ctx = SymbolicContext::new(ramp());
        let t = ctx.protocol_relation();
        let top = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(3)));
        let all = ctx.all_states();
        // Everything reaches the top...
        assert_eq!(ctx.backward_closure(t, top), all);
        // ...but the top reaches only itself.
        assert_eq!(ctx.forward_closure(t, top), top);
    }

    #[test]
    fn enabled_states_of_ramp() {
        let mut ctx = SymbolicContext::new(ramp());
        let t = ctx.protocol_relation();
        let en = ctx.enabled(t);
        let expect = ctx.compile(&Expr::var(VarIdx(0)).lt(Expr::int(3)));
        assert_eq!(en, expect);
    }

    #[test]
    fn restrict_relation_cuts_boundary() {
        let mut ctx = SymbolicContext::new(counter());
        let t = ctx.protocol_relation();
        let low = ctx.compile(&Expr::var(VarIdx(0)).lt(Expr::int(2)));
        let r = ctx.restrict_relation(t, low);
        // Only 0→1 survives (1→2 leaves `low`).
        let s0 = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(0)));
        let s1 = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(1)));
        assert_eq!(ctx.img(r, s0), s1);
        assert!(ctx.img(r, s1).is_false());
    }
}
