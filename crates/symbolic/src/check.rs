//! Symbolic verification of closure and convergence (Proposition II.1).
//!
//! Every protocol the synthesizer emits is re-verified through this module
//! — "correct by construction" is backed by an independent model-checking
//! pass, and the test suite additionally cross-validates these verdicts
//! against the explicit-state engine.

use crate::encode::{SymbolicContext, INFALLIBLE};
use crate::partition::{Engine, PartitionedRelation};
use crate::scc::{try_has_cycle, try_has_cycle_parts};
use stsyn_bdd::{Bdd, BddError};

/// Outcome of a convergence check, with symbolic witnesses.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Does the property hold?
    pub holds: bool,
    /// A non-empty set of witness states when it does not (deadlocks, a
    /// cycle region, or states that cannot reach `I`, depending on the
    /// check).
    pub witness: Bdd,
}

impl Verdict {
    pub(crate) fn ok() -> Self {
        Verdict { holds: true, witness: Bdd::FALSE }
    }

    pub(crate) fn fail(witness: Bdd) -> Self {
        Verdict { holds: false, witness }
    }
}

/// Is `i` closed in `relation`? (`T ∧ I ∧ ¬I'` must be empty.)
pub fn closure_holds(ctx: &mut SymbolicContext, relation: Bdd, i: Bdd) -> bool {
    try_closure_holds(ctx, relation, i).expect(INFALLIBLE)
}

/// Fallible variant of [`closure_holds`] for budgeted runs.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_closure_holds(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    i: Bdd,
) -> Result<bool, BddError> {
    let map = ctx.cur_to_primed();
    let i_primed = ctx.mgr().try_rename(i, map)?;
    let not_i_primed = ctx.mgr().try_not(i_primed)?;
    let from_i = ctx.mgr().try_and(relation, i)?;
    Ok(ctx.mgr().try_and(from_i, not_i_primed)?.is_false())
}

/// Deadlock states outside `i`: `¬I ∧ ¬(∃s'. T)`.
pub fn deadlock_states(ctx: &mut SymbolicContext, relation: Bdd, i: Bdd) -> Bdd {
    try_deadlock_states(ctx, relation, i).expect(INFALLIBLE)
}

/// Fallible variant of [`deadlock_states`] for budgeted runs.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_deadlock_states(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    i: Bdd,
) -> Result<Bdd, BddError> {
    let enabled = ctx.try_enabled(relation)?;
    let not_i = ctx.try_not_states(i)?;
    let not_enabled = ctx.mgr().try_not(enabled)?;
    ctx.mgr().try_and(not_i, not_enabled)
}

/// Strong convergence to `i` (Proposition II.1): no deadlock state in
/// `¬I` and no non-progress cycle in `T | ¬I`.
pub fn strong_convergence(ctx: &mut SymbolicContext, relation: Bdd, i: Bdd) -> Verdict {
    try_strong_convergence(ctx, relation, i).expect(INFALLIBLE)
}

/// Fallible variant of [`strong_convergence`] for budgeted runs.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_strong_convergence(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    i: Bdd,
) -> Result<Verdict, BddError> {
    let dead = try_deadlock_states(ctx, relation, i)?;
    if !dead.is_false() {
        return Ok(Verdict::fail(dead));
    }
    let not_i = ctx.try_not_states(i)?;
    let restricted = ctx.try_restrict_relation(relation, not_i)?;
    if try_has_cycle(ctx, restricted, not_i)? {
        // Witness: the trimmed cyclic core.
        let mut core = not_i;
        loop {
            let with_succ = ctx.try_pre(restricted, core)?;
            let with_pred = ctx.try_img(restricted, core)?;
            let mut next = ctx.mgr().try_and(core, with_succ)?;
            next = ctx.mgr().try_and(next, with_pred)?;
            if next == core {
                break;
            }
            core = next;
        }
        return Ok(Verdict::fail(core));
    }
    Ok(Verdict::ok())
}

/// Weak convergence to `i`: every state can reach `i` (the backward
/// closure of `i` covers the state space).
pub fn weak_convergence(ctx: &mut SymbolicContext, relation: Bdd, i: Bdd) -> Verdict {
    try_weak_convergence(ctx, relation, i).expect(INFALLIBLE)
}

/// Fallible variant of [`weak_convergence`] for budgeted runs.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_weak_convergence(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    i: Bdd,
) -> Result<Verdict, BddError> {
    let reach = ctx.try_backward_closure(relation, i)?;
    let missing = ctx.try_not_states(reach)?;
    Ok(if missing.is_false() { Verdict::ok() } else { Verdict::fail(missing) })
}

/// Full self-stabilization check: closure plus the requested flavor of
/// convergence.
pub fn self_stabilizing(ctx: &mut SymbolicContext, relation: Bdd, i: Bdd, strong: bool) -> bool {
    try_self_stabilizing(ctx, relation, i, strong).expect(INFALLIBLE)
}

/// Fallible variant of [`self_stabilizing`] for budgeted runs.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_self_stabilizing(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    i: Bdd,
    strong: bool,
) -> Result<bool, BddError> {
    Ok(try_closure_holds(ctx, relation, i)?
        && if strong {
            try_strong_convergence(ctx, relation, i)?.holds
        } else {
            try_weak_convergence(ctx, relation, i)?.holds
        })
}

/// Partitioned [`try_closure_holds`]: is `img(I) ⊆ I`? Same verdict as
/// the monolithic check (`T ∧ I ∧ ¬I'` is empty iff the image escapes
/// nowhere).
#[must_use = "a budget violation is reported through the Result"]
pub fn try_closure_holds_parts(
    ctx: &mut SymbolicContext,
    t: &PartitionedRelation,
    i: Bdd,
) -> Result<bool, BddError> {
    let img = ctx.try_img_parts(t, i)?;
    let not_i = ctx.mgr().try_not(i)?;
    Ok(ctx.mgr().try_and(img, not_i)?.is_false())
}

/// Partitioned [`try_deadlock_states`] — identical witness BDD.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_deadlock_states_parts(
    ctx: &mut SymbolicContext,
    t: &PartitionedRelation,
    i: Bdd,
) -> Result<Bdd, BddError> {
    let enabled = ctx.try_enabled_parts(t)?;
    let not_i = ctx.try_not_states(i)?;
    let not_enabled = ctx.mgr().try_not(enabled)?;
    ctx.mgr().try_and(not_i, not_enabled)
}

/// Infallible [`try_strong_convergence_parts`].
pub fn strong_convergence_parts(
    ctx: &mut SymbolicContext,
    t: &PartitionedRelation,
    i: Bdd,
) -> Verdict {
    try_strong_convergence_parts(ctx, t, i).expect(INFALLIBLE)
}

/// Partitioned [`try_strong_convergence`]. The cycle check and the
/// witness trim never materialize `T | ¬I`: every iterate stays inside
/// `¬I`, so conjoining with the *full*-relation preimage/image visits
/// exactly the restricted transitions and each iterate — hence the
/// witness — is the same canonical BDD as the monolithic run's.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_strong_convergence_parts(
    ctx: &mut SymbolicContext,
    t: &PartitionedRelation,
    i: Bdd,
) -> Result<Verdict, BddError> {
    let dead = try_deadlock_states_parts(ctx, t, i)?;
    if !dead.is_false() {
        return Ok(Verdict::fail(dead));
    }
    let not_i = ctx.try_not_states(i)?;
    if try_has_cycle_parts(ctx, t, not_i)? {
        let mut core = not_i;
        loop {
            let with_succ = ctx.try_pre_parts(t, core)?;
            let with_pred = ctx.try_img_parts(t, core)?;
            let mut next = ctx.mgr().try_and(core, with_succ)?;
            next = ctx.mgr().try_and(next, with_pred)?;
            if next == core {
                break;
            }
            core = next;
        }
        return Ok(Verdict::fail(core));
    }
    Ok(Verdict::ok())
}

/// Infallible [`try_weak_convergence_parts`].
pub fn weak_convergence_parts(
    ctx: &mut SymbolicContext,
    engine: Engine,
    t: &PartitionedRelation,
    i: Bdd,
) -> Verdict {
    try_weak_convergence_parts(ctx, engine, t, i).expect(INFALLIBLE)
}

/// Partitioned [`try_weak_convergence`]. Under [`Engine::Saturation`]
/// the backward closure fires partitions to local fixpoints; the
/// reachable set (a least fixpoint) is identical either way.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_weak_convergence_parts(
    ctx: &mut SymbolicContext,
    engine: Engine,
    t: &PartitionedRelation,
    i: Bdd,
) -> Result<Verdict, BddError> {
    let reach = ctx.try_backward_closure_parts(engine, t, i)?;
    let missing = ctx.try_not_states(reach)?;
    Ok(if missing.is_false() { Verdict::ok() } else { Verdict::fail(missing) })
}

/// Infallible [`try_self_stabilizing_parts`].
pub fn self_stabilizing_parts(
    ctx: &mut SymbolicContext,
    engine: Engine,
    t: &PartitionedRelation,
    i: Bdd,
    strong: bool,
) -> bool {
    try_self_stabilizing_parts(ctx, engine, t, i, strong).expect(INFALLIBLE)
}

/// Partitioned [`try_self_stabilizing`].
#[must_use = "a budget violation is reported through the Result"]
pub fn try_self_stabilizing_parts(
    ctx: &mut SymbolicContext,
    engine: Engine,
    t: &PartitionedRelation,
    i: Bdd,
    strong: bool,
) -> Result<bool, BddError> {
    Ok(try_closure_holds_parts(ctx, t, i)?
        && if strong {
            try_strong_convergence_parts(ctx, t, i)?.holds
        } else {
            try_weak_convergence_parts(ctx, engine, t, i)?.holds
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::expr::Expr;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
    use stsyn_protocol::Protocol;

    fn one_var(n: u32, actions: Vec<Action>) -> SymbolicContext {
        let vars = vec![VarDecl::new("c", n)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        SymbolicContext::new(Protocol::new(vars, procs, actions).unwrap())
    }

    fn c() -> Expr {
        Expr::var(VarIdx(0))
    }

    #[test]
    fn ramp_is_strongly_stabilizing() {
        // c < 3 → c := c+1 converges to {c == 3}.
        let inc =
            Action::new(ProcIdx(0), c().lt(Expr::int(3)), vec![(VarIdx(0), c().add(Expr::int(1)))]);
        let mut ctx = one_var(4, vec![inc]);
        let t = ctx.protocol_relation();
        let i = ctx.compile(&c().eq(Expr::int(3)));
        assert!(closure_holds(&mut ctx, t, i));
        assert!(strong_convergence(&mut ctx, t, i).holds);
        assert!(weak_convergence(&mut ctx, t, i).holds);
        assert!(self_stabilizing(&mut ctx, t, i, true));
    }

    #[test]
    fn deadlock_breaks_strong_convergence() {
        // Only c == 0 moves (to 1); c == 2 is a ¬I deadlock.
        let step = Action::new(ProcIdx(0), c().eq(Expr::int(0)), vec![(VarIdx(0), Expr::int(1))]);
        let mut ctx = one_var(3, vec![step]);
        let t = ctx.protocol_relation();
        let i = ctx.compile(&c().eq(Expr::int(1)));
        let dead = deadlock_states(&mut ctx, t, i);
        assert_eq!(ctx.count_states(dead), 1.0);
        assert_eq!(ctx.pick_state(dead).unwrap(), vec![2]);
        let verdict = strong_convergence(&mut ctx, t, i);
        assert!(!verdict.holds);
        assert_eq!(verdict.witness, dead);
        // And weak convergence fails for the same reason here.
        assert!(!weak_convergence(&mut ctx, t, i).holds);
    }

    #[test]
    fn cycle_outside_i_breaks_strong_but_not_weak() {
        // 0↔1 cycle plus 0→2; I = {2}. Strong fails (cycle), weak holds.
        let a01 = Action::new(ProcIdx(0), c().eq(Expr::int(0)), vec![(VarIdx(0), Expr::int(1))]);
        let a10 = Action::new(ProcIdx(0), c().eq(Expr::int(1)), vec![(VarIdx(0), Expr::int(0))]);
        let a02 = Action::new(ProcIdx(0), c().eq(Expr::int(0)), vec![(VarIdx(0), Expr::int(2))]);
        let mut ctx = one_var(3, vec![a01, a10, a02]);
        let t = ctx.protocol_relation();
        let i = ctx.compile(&c().eq(Expr::int(2)));
        assert!(closure_holds(&mut ctx, t, i)); // 2 has no outgoing action
        let strong = strong_convergence(&mut ctx, t, i);
        assert!(!strong.holds);
        // The witness covers the 0↔1 cycle.
        assert_eq!(ctx.count_states(strong.witness), 2.0);
        assert!(weak_convergence(&mut ctx, t, i).holds);
        assert!(self_stabilizing(&mut ctx, t, i, false));
        assert!(!self_stabilizing(&mut ctx, t, i, true));
    }

    #[test]
    fn closure_violation_detected() {
        // I = {0,1} but 1 → 2 escapes.
        let a = Action::new(ProcIdx(0), c().eq(Expr::int(1)), vec![(VarIdx(0), Expr::int(2))]);
        let mut ctx = one_var(3, vec![a]);
        let t = ctx.protocol_relation();
        let i = ctx.compile(&c().lt(Expr::int(2)));
        assert!(!closure_holds(&mut ctx, t, i));
    }

    #[test]
    fn deadlock_inside_i_is_fine() {
        // I = {2}, and 2 is silent — that is a *silent* stabilizing
        // protocol, not a deadlock violation.
        let a0 = Action::new(ProcIdx(0), c().eq(Expr::int(0)), vec![(VarIdx(0), Expr::int(2))]);
        let a1 = Action::new(ProcIdx(0), c().eq(Expr::int(1)), vec![(VarIdx(0), Expr::int(2))]);
        let mut ctx = one_var(3, vec![a0, a1]);
        let t = ctx.protocol_relation();
        let i = ctx.compile(&c().eq(Expr::int(2)));
        assert!(deadlock_states(&mut ctx, t, i).is_false());
        assert!(strong_convergence(&mut ctx, t, i).holds);
    }
}
