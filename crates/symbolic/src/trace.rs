//! Counterexample and witness traces, extracted symbolically.
//!
//! §VIII positions the synthesizer as a companion to model checkers:
//! "model checkers generate a scenario as to how a protocol fails to
//! self-stabilize". This module produces those scenarios from the BDD
//! side, so every verdict the checker returns can be justified with a
//! concrete execution:
//!
//! * [`SymbolicContext::extract_path`] — a shortest path between two
//!   predicates under a transition relation,
//! * [`SymbolicContext::extract_cycle`] — a concrete non-progress cycle
//!   inside a region (the witness for a strong-convergence failure),
//! * [`SymbolicContext::recovery_trace`] — a convergence demonstration:
//!   from a given state to the legitimate set.

use crate::encode::SymbolicContext;
use stsyn_bdd::Bdd;
use stsyn_protocol::state::State;

impl SymbolicContext {
    /// A shortest path `s_0 → s_1 → … → s_m` with `s_0 ∈ from`,
    /// `s_m ∈ to`, every transition drawn from `relation`. `None` when
    /// `to` is unreachable from `from`. (`from ∩ to ≠ ∅` yields the
    /// single-state path.)
    pub fn extract_path(&mut self, relation: Bdd, from: Bdd, to: Bdd) -> Option<Vec<State>> {
        if from.is_false() {
            return None;
        }
        // Forward BFS layers until `to` is hit.
        let mut layers: Vec<Bdd> = vec![from];
        let mut explored = from;
        loop {
            let current = *layers.last().unwrap();
            let hit = self.mgr().and(current, to);
            if !hit.is_false() {
                break;
            }
            let next = self.img(relation, current);
            let not_explored = self.mgr().not(explored);
            let fresh = self.mgr().and(next, not_explored);
            if fresh.is_false() {
                return None; // `to` unreachable
            }
            explored = self.mgr().or(explored, fresh);
            layers.push(fresh);
        }
        // Backtrack: pick a state in the final intersection, then walk
        // predecessors layer by layer.
        let last = *layers.last().unwrap();
        let target_hit = self.mgr().and(last, to);
        let mut state = self.pick_state(target_hit).expect("non-empty hit");
        let mut path = vec![state.clone()];
        for layer in layers.iter().rev().skip(1) {
            let cube = self.singleton(&state);
            let preds = self.pre(relation, cube);
            let in_layer = self.mgr().and(preds, *layer);
            state = self.pick_state(in_layer).expect("BFS layer must contain a predecessor");
            path.push(state.clone());
        }
        path.reverse();
        Some(path)
    }

    /// A concrete cycle of `relation` inside `x`: a state sequence
    /// `s_0 → … → s_m = s_0` (the first state repeated at the end).
    /// `None` when `relation | x` is acyclic.
    pub fn extract_cycle(&mut self, relation: Bdd, x: Bdd) -> Option<Vec<State>> {
        // The forward core: states with infinite forward paths inside x.
        let mut core = x;
        loop {
            if core.is_false() {
                return None;
            }
            let with_succ = self.pre(relation, core);
            let next = self.mgr().and(core, with_succ);
            if next == core {
                break;
            }
            core = next;
        }
        // Every core state has a successor inside the core; follow them
        // until a repeat. (Bounded by |core|.)
        let start = self.pick_state(core).expect("non-empty core");
        let mut seen: Vec<State> = vec![start.clone()];
        let mut cur = start;
        loop {
            let cube = self.singleton(&cur);
            let succs = self.img(relation, cube);
            let in_core = self.mgr().and(succs, core);
            let next = self.pick_state(in_core).expect("core state must have core successor");
            if let Some(pos) = seen.iter().position(|s| *s == next) {
                let mut cycle = seen.split_off(pos);
                cycle.push(next);
                return Some(cycle);
            }
            seen.push(next.clone());
            cur = next;
        }
    }

    /// A convergence demonstration: a shortest execution of `relation`
    /// from `state` into `i`. `None` if `state` cannot reach `i`.
    pub fn recovery_trace(&mut self, relation: Bdd, state: &State, i: Bdd) -> Option<Vec<State>> {
        let from = self.singleton(state);
        self.extract_path(relation, from, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::expr::Expr;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
    use stsyn_protocol::Protocol;

    fn c() -> Expr {
        Expr::var(VarIdx(0))
    }

    fn one_var(n: u32, actions: Vec<Action>) -> SymbolicContext {
        let vars = vec![VarDecl::new("c", n)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        SymbolicContext::new(Protocol::new(vars, procs, actions).unwrap())
    }

    fn inc_mod(n: u32) -> Action {
        Action::new(
            ProcIdx(0),
            Expr::Bool(true),
            vec![(VarIdx(0), c().add(Expr::int(1)).modulo(Expr::int(n as i64)))],
        )
    }

    #[test]
    fn path_on_counter() {
        let mut ctx = one_var(6, vec![inc_mod(6)]);
        let t = ctx.protocol_relation();
        let from = ctx.compile(&c().eq(Expr::int(1)));
        let to = ctx.compile(&c().eq(Expr::int(4)));
        let path = ctx.extract_path(t, from, to).unwrap();
        assert_eq!(path, vec![vec![1], vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn path_to_self_is_single_state() {
        let mut ctx = one_var(4, vec![inc_mod(4)]);
        let t = ctx.protocol_relation();
        let s = ctx.compile(&c().eq(Expr::int(2)));
        let path = ctx.extract_path(t, s, s).unwrap();
        assert_eq!(path, vec![vec![2]]);
    }

    #[test]
    fn unreachable_target_gives_none() {
        // Ramp up to 2 only: 3 is unreachable from 0 when the action stops
        // at 2.
        let ramp =
            Action::new(ProcIdx(0), c().lt(Expr::int(2)), vec![(VarIdx(0), c().add(Expr::int(1)))]);
        let mut ctx = one_var(4, vec![ramp]);
        let t = ctx.protocol_relation();
        let from = ctx.compile(&c().eq(Expr::int(0)));
        let to = ctx.compile(&c().eq(Expr::int(3)));
        assert!(ctx.extract_path(t, from, to).is_none());
    }

    #[test]
    fn cycle_on_counter() {
        let mut ctx = one_var(4, vec![inc_mod(4)]);
        let t = ctx.protocol_relation();
        let all = ctx.all_states();
        let cycle = ctx.extract_cycle(t, all).unwrap();
        // A 4-cycle: 5 entries with the first repeated at the end.
        assert_eq!(cycle.len(), 5);
        assert_eq!(cycle.first(), cycle.last());
        // Consecutive entries really are transitions.
        for w in cycle.windows(2) {
            assert_eq!(w[1][0], (w[0][0] + 1) % 4);
        }
    }

    #[test]
    fn no_cycle_in_dag() {
        let ramp =
            Action::new(ProcIdx(0), c().lt(Expr::int(3)), vec![(VarIdx(0), c().add(Expr::int(1)))]);
        let mut ctx = one_var(4, vec![ramp]);
        let t = ctx.protocol_relation();
        let all = ctx.all_states();
        assert!(ctx.extract_cycle(t, all).is_none());
    }

    #[test]
    fn cycle_respects_region_restriction() {
        let mut ctx = one_var(4, vec![inc_mod(4)]);
        let t = ctx.protocol_relation();
        // Exclude state 0: the 4-cycle is broken, no cycle remains.
        let s0 = ctx.compile(&c().eq(Expr::int(0)));
        let region = ctx.not_states(s0);
        let restricted = ctx.restrict_relation(t, region);
        assert!(ctx.extract_cycle(restricted, region).is_none());
    }

    #[test]
    fn recovery_trace_is_shortest() {
        let ramp =
            Action::new(ProcIdx(0), c().lt(Expr::int(5)), vec![(VarIdx(0), c().add(Expr::int(1)))]);
        let mut ctx = one_var(6, vec![ramp]);
        let t = ctx.protocol_relation();
        let i = ctx.compile(&c().eq(Expr::int(5)));
        let trace = ctx.recovery_trace(t, &vec![2], i).unwrap();
        assert_eq!(trace.len(), 4); // 2 → 3 → 4 → 5
        assert_eq!(trace[0], vec![2]);
        assert_eq!(trace[3], vec![5]);
    }
}
