//! Symbolic strongly-connected-component decomposition.
//!
//! `Identify_Resolve_Cycles` (Fig. 3 of the paper) needs the state sets of
//! the SCCs of `p_ss | ¬I`; STSyn used the skeleton-based algorithm of
//! Gentilini, Piazza and Policriti ("Computing strongly connected
//! components in a linear number of symbolic steps", SODA 2003). This
//! module implements that algorithm ([`SccAlgorithm::Skeleton`]) along with
//! two classical alternatives used for cross-validation and for the
//! ablation benchmark:
//!
//! * [`SccAlgorithm::Lockstep`] — Bloem–Gabow–Somenzi lockstep search,
//! * [`SccAlgorithm::XieBeerel`] — the original forward/backward-set
//!   algorithm.
//!
//! All three return the same partition (verified against explicit Tarjan
//! in the property tests). A cheaper trimming-based *cycle existence* test
//! ([`has_cycle`]) serves the preprocessing step and the convergence
//! verifier, which only need a yes/no answer.

use crate::encode::{SymbolicContext, INFALLIBLE};
use crate::partition::PartitionedRelation;
use stsyn_bdd::{Bdd, BddError};
use stsyn_obs::{Json, TraceLevel};

/// Which symbolic SCC algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SccAlgorithm {
    /// Gentilini–Piazza–Policriti skeleton-based SCC-Find (the paper's
    /// choice; linear number of symbolic steps).
    Skeleton,
    /// Bloem–Gabow–Somenzi lockstep search (O(n log n) symbolic steps).
    Lockstep,
    /// Xie–Beerel forward/backward decomposition.
    XieBeerel,
}

/// Does `relation` restricted to `x` contain a cycle?
///
/// Computed by trimming: repeatedly drop states lacking a successor or a
/// predecessor inside the set; the fixpoint is non-empty iff a cycle
/// exists. Much cheaper than a full SCC decomposition when only existence
/// matters (the preprocessing check of §V and Proposition II.1's second
/// condition).
pub fn has_cycle(ctx: &mut SymbolicContext, relation: Bdd, x: Bdd) -> bool {
    try_has_cycle(ctx, relation, x).expect(INFALLIBLE)
}

/// Fallible variant of [`has_cycle`] for budgeted runs.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_has_cycle(ctx: &mut SymbolicContext, relation: Bdd, x: Bdd) -> Result<bool, BddError> {
    // νZ. X ∧ pre(Z): the states with an infinite forward path inside X —
    // non-empty iff a cycle exists. One-directional trimming converges in
    // the same number of iterations but halves the image computations and
    // keeps the intermediate sets backward-closed (empirically far smaller
    // BDDs than the two-directional variant).
    Ok(!forward_core(ctx, relation, x)?.is_false())
}

/// νZ. X ∧ pre(Z): states from which an infinite path inside `x` exists.
fn forward_core(ctx: &mut SymbolicContext, relation: Bdd, x: Bdd) -> Result<Bdd, BddError> {
    let mut set = x;
    loop {
        if set.is_false() {
            return Ok(set);
        }
        let with_succ = ctx.try_pre(relation, set)?;
        let next = ctx.mgr().try_and(set, with_succ)?;
        if next == set {
            return Ok(set);
        }
        set = next;
    }
}

/// Infallible [`try_has_cycle_parts`].
pub fn has_cycle_parts(ctx: &mut SymbolicContext, t: &PartitionedRelation, x: Bdd) -> bool {
    try_has_cycle_parts(ctx, t, x).expect(INFALLIBLE)
}

/// Does the partitioned relation, restricted to `x`, contain a cycle?
///
/// Unlike [`try_has_cycle`] this never materializes the restricted
/// relation: the forward core starts from `x` and every iterate stays
/// inside it, so conjoining with the full-relation preimage visits
/// exactly the transitions with both endpoints in `x`. The iterates —
/// and hence the verdict — match the monolithic computation BDD for
/// BDD.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_has_cycle_parts(
    ctx: &mut SymbolicContext,
    t: &PartitionedRelation,
    x: Bdd,
) -> Result<bool, BddError> {
    Ok(!forward_core_parts(ctx, t, x)?.is_false())
}

/// νZ. X ∧ pre(Z) over a partitioned relation; see [`forward_core`].
/// Greatest fixpoints do not decompose over the OR of per-partition
/// preimages, so every iteration takes one full clustered preimage.
pub(crate) fn forward_core_parts(
    ctx: &mut SymbolicContext,
    t: &PartitionedRelation,
    x: Bdd,
) -> Result<Bdd, BddError> {
    let mut set = x;
    loop {
        if set.is_false() {
            return Ok(set);
        }
        let with_succ = ctx.try_pre_parts(t, set)?;
        let next = ctx.mgr().try_and(set, with_succ)?;
        if next == set {
            return Ok(set);
        }
        set = next;
    }
}

/// νZ. X ∧ img(Z): states into which an infinite path inside `x` leads.
fn backward_core(ctx: &mut SymbolicContext, relation: Bdd, x: Bdd) -> Result<Bdd, BddError> {
    let mut set = x;
    loop {
        if set.is_false() {
            return Ok(set);
        }
        let with_pred = ctx.try_img(relation, set)?;
        let next = ctx.mgr().try_and(set, with_pred)?;
        if next == set {
            return Ok(set);
        }
        set = next;
    }
}

/// Decompose `relation | x` into its **non-trivial** SCCs (components
/// containing at least one internal transition — i.e. a cycle; a singleton
/// qualifies only with a self-loop). Returns one state-set BDD per SCC.
pub fn scc_decomposition(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    x: Bdd,
    algorithm: SccAlgorithm,
) -> Vec<Bdd> {
    try_scc_decomposition(ctx, relation, x, algorithm).expect(INFALLIBLE)
}

/// Fallible variant of [`scc_decomposition`] for budgeted runs. Tick,
/// deadline and cancellation budgets are honoured throughout; the node
/// ceiling is *not* enforced mid-decomposition (the worklists hold
/// handles that are not registered roots), so node pressure surfaces at
/// the next safe point of the caller instead.
#[must_use = "a budget violation is reported through the Result"]
pub fn try_scc_decomposition(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    x: Bdd,
    algorithm: SccAlgorithm,
) -> Result<Vec<Bdd>, BddError> {
    // Pre-trim: only states on or between cycles can belong to a
    // non-trivial SCC, and trimming is cheap. This mirrors the "restrict
    // attention to the cyclic core" optimization in symbolic SCC practice.
    let core = trim(ctx, relation, x)?;
    let mut iters = 0usize;
    let mut keep = Vec::new();
    if !core.is_false() {
        let mut all = match algorithm {
            SccAlgorithm::Skeleton => skeleton_sccs(ctx, relation, core, &mut iters)?,
            SccAlgorithm::Lockstep => lockstep_sccs(ctx, relation, core, &mut iters)?,
            SccAlgorithm::XieBeerel => xie_beerel_sccs(ctx, relation, core, &mut iters)?,
        };
        keep.reserve(all.len());
        for scc in all.drain(..) {
            let internal = ctx.try_restrict_relation(relation, scc)?;
            if !internal.is_false() {
                keep.push(scc);
            }
        }
    }
    if ctx.mgr_ref().tracer().level_enabled(TraceLevel::Info) {
        let nodes: usize = keep.iter().map(|&s| ctx.mgr_ref().node_count(s)).sum();
        ctx.mgr_ref().tracer().info(
            "scc.call",
            &[
                ("algorithm", Json::from(format!("{algorithm:?}").as_str())),
                ("sccs", Json::from(keep.len() as u64)),
                ("iterations", Json::from(iters as u64)),
                ("nodes", Json::from(nodes as u64)),
            ],
        );
    }
    Ok(keep)
}

/// Trimming fixpoint: the intersection of the two ν-fixpoints — states on
/// or between cycles. Every non-trivial SCC lies inside this core.
fn trim(ctx: &mut SymbolicContext, relation: Bdd, x: Bdd) -> Result<Bdd, BddError> {
    let fwd = forward_core(ctx, relation, x)?;
    if fwd.is_false() {
        return Ok(fwd);
    }
    backward_core(ctx, relation, fwd)
}

/// A single concrete state of a non-empty set, as a BDD cube.
fn pick_singleton(ctx: &mut SymbolicContext, set: Bdd) -> Result<Bdd, BddError> {
    let state = ctx.pick_state(set).expect("pick from empty set");
    ctx.try_singleton(&state)
}

// --- Gentilini–Piazza–Policriti skeleton algorithm -----------------------

/// Forward search from `start` inside `v`, returning the forward set, the
/// skeleton path (as a node set) and its final node.
fn skel_forward(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    v: Bdd,
    start: Bdd,
) -> Result<(Bdd, Bdd, Bdd), BddError> {
    // Onion rings of the BFS.
    let mut rings: Vec<Bdd> = Vec::new();
    let mut fw = Bdd::FALSE;
    let mut layer = start;
    while !layer.is_false() {
        rings.push(layer);
        fw = ctx.mgr().try_or(fw, layer)?;
        let next = ctx.try_img(relation, layer)?;
        let in_v = ctx.mgr().try_and(next, v)?;
        let not_fw = ctx.mgr().try_not(fw)?;
        layer = ctx.mgr().try_and(in_v, not_fw)?;
    }
    // Build the skeleton path backwards from a node of the last ring.
    let last = *rings.last().expect("start was non-empty");
    let mut node = pick_singleton(ctx, last)?;
    let new_n = node;
    let mut new_s = node;
    for ring in rings.iter().rev().skip(1) {
        let preds = ctx.try_pre(relation, node)?;
        let in_ring = ctx.mgr().try_and(preds, *ring)?;
        node = pick_singleton(ctx, in_ring)?;
        new_s = ctx.mgr().try_or(new_s, node)?;
    }
    Ok((fw, new_s, new_n))
}

/// SCC-Find with skeletons, iterative via an explicit worklist.
fn skeleton_sccs(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    x: Bdd,
    iters: &mut usize,
) -> Result<Vec<Bdd>, BddError> {
    let mut out = Vec::new();
    // (vertex set V, skeleton S, skeleton head N); invariant N ⊆ S ⊆ V and
    // S = ∅ ⟺ N = ∅.
    let mut work: Vec<(Bdd, Bdd, Bdd)> = vec![(x, Bdd::FALSE, Bdd::FALSE)];
    while let Some((v, s, n)) = work.pop() {
        *iters += 1;
        if v.is_false() {
            continue;
        }
        let pivot = if s.is_false() { pick_singleton(ctx, v)? } else { pick_singleton(ctx, n)? };
        let (fw, new_s, new_n) = skel_forward(ctx, relation, v, pivot)?;
        // SCC(pivot) = backward closure of pivot inside FW.
        let mut scc = pivot;
        loop {
            let preds = ctx.try_pre(relation, scc)?;
            let in_fw = ctx.mgr().try_and(preds, fw)?;
            let grown = ctx.mgr().try_or(scc, in_fw)?;
            if grown == scc {
                break;
            }
            scc = grown;
        }
        out.push(scc);
        let not_scc = ctx.mgr().try_not(scc)?;
        // Recursion 1: V ∖ FW with the surviving prefix of the old path.
        let not_fw = ctx.mgr().try_not(fw)?;
        let v1 = ctx.mgr().try_and(v, not_fw)?;
        let s1 = ctx.mgr().try_and(s, not_scc)?;
        let swallowed = ctx.mgr().try_and(scc, s)?;
        let n1 = {
            let preds = ctx.try_pre(relation, swallowed)?;
            ctx.mgr().try_and(preds, s1)?
        };
        // If the SCC swallowed none of the old path, keep the old head.
        let n1 = if swallowed.is_false() { ctx.mgr().try_and(n, not_scc)? } else { n1 };
        work.push((v1, s1, n1));
        // Recursion 2: FW ∖ SCC with the suffix of the new path.
        let v2 = ctx.mgr().try_and(fw, not_scc)?;
        let s2 = ctx.mgr().try_and(new_s, not_scc)?;
        let n2 = ctx.mgr().try_and(new_n, not_scc)?;
        work.push((v2, s2, n2));
    }
    Ok(out)
}

// --- Lockstep (Bloem–Gabow–Somenzi) ---------------------------------------

fn lockstep_sccs(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    x: Bdd,
    iters: &mut usize,
) -> Result<Vec<Bdd>, BddError> {
    let mut out = Vec::new();
    let mut work: Vec<Bdd> = vec![x];
    while let Some(v) = work.pop() {
        *iters += 1;
        if v.is_false() {
            continue;
        }
        let pivot = pick_singleton(ctx, v)?;
        let mut fw = pivot;
        let mut bw = pivot;
        let mut f_front = pivot;
        let mut b_front = pivot;
        // Advance both searches in lockstep until one stabilizes.
        let (converged, mut other, mut other_front, other_is_fw) = loop {
            if !f_front.is_false() {
                let next = ctx.try_img(relation, f_front)?;
                let in_v = ctx.mgr().try_and(next, v)?;
                let not_fw = ctx.mgr().try_not(fw)?;
                f_front = ctx.mgr().try_and(in_v, not_fw)?;
                fw = ctx.mgr().try_or(fw, f_front)?;
            }
            if f_front.is_false() {
                break (fw, bw, b_front, false);
            }
            if !b_front.is_false() {
                let next = ctx.try_pre(relation, b_front)?;
                let in_v = ctx.mgr().try_and(next, v)?;
                let not_bw = ctx.mgr().try_not(bw)?;
                b_front = ctx.mgr().try_and(in_v, not_bw)?;
                bw = ctx.mgr().try_or(bw, b_front)?;
            }
            if b_front.is_false() {
                break (bw, fw, f_front, true);
            }
        };
        // Finish the slower search, but only inside the converged set.
        while !ctx.mgr().try_and(other_front, converged)?.is_false() {
            let next = if other_is_fw {
                ctx.try_img(relation, other_front)?
            } else {
                ctx.try_pre(relation, other_front)?
            };
            let in_conv = ctx.mgr().try_and(next, converged)?;
            let not_other = ctx.mgr().try_not(other)?;
            other_front = ctx.mgr().try_and(in_conv, not_other)?;
            other = ctx.mgr().try_or(other, other_front)?;
        }
        let scc = ctx.mgr().try_and(converged, other)?;
        out.push(scc);
        let not_scc = ctx.mgr().try_not(scc)?;
        let rest_inside = ctx.mgr().try_and(converged, not_scc)?;
        let not_conv = ctx.mgr().try_not(converged)?;
        let rest_outside = ctx.mgr().try_and(v, not_conv)?;
        work.push(rest_inside);
        work.push(rest_outside);
    }
    Ok(out)
}

// --- Xie–Beerel ------------------------------------------------------------

fn xie_beerel_sccs(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    x: Bdd,
    iters: &mut usize,
) -> Result<Vec<Bdd>, BddError> {
    let mut out = Vec::new();
    let mut work: Vec<Bdd> = vec![x];
    while let Some(v) = work.pop() {
        *iters += 1;
        if v.is_false() {
            continue;
        }
        let pivot = pick_singleton(ctx, v)?;
        let fw = closure_within(ctx, relation, v, pivot, true)?;
        let bw = closure_within(ctx, relation, v, pivot, false)?;
        let scc = ctx.mgr().try_and(fw, bw)?;
        out.push(scc);
        let not_scc = ctx.mgr().try_not(scc)?;
        let f_rest = ctx.mgr().try_and(fw, not_scc)?;
        let b_rest = ctx.mgr().try_and(bw, not_scc)?;
        let fw_or_bw = ctx.mgr().try_or(fw, bw)?;
        let not_either = ctx.mgr().try_not(fw_or_bw)?;
        let outside = ctx.mgr().try_and(v, not_either)?;
        work.push(f_rest);
        work.push(b_rest);
        work.push(outside);
    }
    Ok(out)
}

fn closure_within(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    v: Bdd,
    start: Bdd,
    forward: bool,
) -> Result<Bdd, BddError> {
    let mut reach = start;
    loop {
        let step =
            if forward { ctx.try_img(relation, reach)? } else { ctx.try_pre(relation, reach)? };
        let in_v = ctx.mgr().try_and(step, v)?;
        let next = ctx.mgr().try_or(reach, in_v)?;
        if next == reach {
            return Ok(reach);
        }
        reach = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::topology::{ProcessDecl, VarDecl, VarIdx};
    use stsyn_protocol::Protocol;

    /// Protocol shell over one variable of domain `n` with no actions;
    /// tests install arbitrary relations over it.
    fn shell(n: u32) -> SymbolicContext {
        let vars = vec![VarDecl::new("c", n)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        SymbolicContext::new(Protocol::new(vars, procs, vec![]).unwrap())
    }

    /// Build a relation from explicit (value, value) edges over variable 0.
    fn relation(ctx: &mut SymbolicContext, edges: &[(u32, u32)]) -> Bdd {
        let mut rel = Bdd::FALSE;
        for &(a, b) in edges {
            let src = ctx.value(VarIdx(0), a);
            let dst = ctx.value_primed(VarIdx(0), b);
            let edge = ctx.mgr().and(src, dst);
            rel = ctx.mgr().or(rel, edge);
        }
        rel
    }

    fn decode_scc(ctx: &mut SymbolicContext, scc: Bdd, n: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for v in 0..n {
            let cube = ctx.value(VarIdx(0), v);
            if !ctx.mgr().and(cube, scc).is_false() {
                out.push(v);
            }
        }
        out
    }

    const ALGOS: [SccAlgorithm; 3] =
        [SccAlgorithm::Skeleton, SccAlgorithm::Lockstep, SccAlgorithm::XieBeerel];

    #[test]
    fn single_cycle_one_scc() {
        for algo in ALGOS {
            let mut ctx = shell(4);
            let t = relation(&mut ctx, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
            let all = ctx.all_states();
            let sccs = scc_decomposition(&mut ctx, t, all, algo);
            assert_eq!(sccs.len(), 1, "{algo:?}");
            assert_eq!(decode_scc(&mut ctx, sccs[0], 4), vec![0, 1, 2, 3]);
            assert!(has_cycle(&mut ctx, t, all));
        }
    }

    #[test]
    fn dag_has_no_nontrivial_scc() {
        for algo in ALGOS {
            let mut ctx = shell(4);
            let t = relation(&mut ctx, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
            let all = ctx.all_states();
            assert!(scc_decomposition(&mut ctx, t, all, algo).is_empty(), "{algo:?}");
            assert!(!has_cycle(&mut ctx, t, all));
        }
    }

    #[test]
    fn self_loop_is_nontrivial() {
        for algo in ALGOS {
            let mut ctx = shell(3);
            let t = relation(&mut ctx, &[(0, 1), (1, 1), (1, 2)]);
            let all = ctx.all_states();
            let sccs = scc_decomposition(&mut ctx, t, all, algo);
            assert_eq!(sccs.len(), 1, "{algo:?}");
            assert_eq!(decode_scc(&mut ctx, sccs[0], 3), vec![1]);
        }
    }

    #[test]
    fn two_separate_cycles() {
        for algo in ALGOS {
            let mut ctx = shell(6);
            let t = relation(&mut ctx, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2)]);
            let all = ctx.all_states();
            let mut sccs: Vec<Vec<u32>> = scc_decomposition(&mut ctx, t, all, algo)
                .into_iter()
                .map(|s| decode_scc(&mut ctx, s, 6))
                .collect();
            sccs.sort();
            assert_eq!(sccs, vec![vec![0, 1], vec![2, 3, 4]], "{algo:?}");
        }
    }

    #[test]
    fn restricted_vertex_set_breaks_cycle() {
        for algo in ALGOS {
            let mut ctx = shell(4);
            let t = relation(&mut ctx, &[(0, 1), (1, 2), (2, 0)]);
            // Exclude state 2 from the vertex set: no cycle remains.
            let s2 = ctx.value(VarIdx(0), 2);
            let x = ctx.not_states(s2);
            assert!(scc_decomposition(&mut ctx, t, x, algo).is_empty(), "{algo:?}");
            assert!(!has_cycle(&mut ctx, t, x));
        }
    }

    #[test]
    fn tangled_graph_matches_tarjan_shape() {
        // A graph with nested cycles and a tail:
        // 0→1→2→0 (SCC A), 2→3, 3→4→5→3 (SCC B), 5→6 (tail), 6→6 (self).
        for algo in ALGOS {
            let mut ctx = shell(7);
            let t = relation(
                &mut ctx,
                &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (5, 6), (6, 6)],
            );
            let all = ctx.all_states();
            let mut sccs: Vec<Vec<u32>> = scc_decomposition(&mut ctx, t, all, algo)
                .into_iter()
                .map(|s| decode_scc(&mut ctx, s, 7))
                .collect();
            sccs.sort();
            assert_eq!(sccs, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]], "{algo:?}");
        }
    }

    #[test]
    fn sccs_are_disjoint_and_cover_cyclic_core() {
        for algo in ALGOS {
            let mut ctx = shell(8);
            let t = relation(
                &mut ctx,
                &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (4, 4), (5, 6), (6, 7)],
            );
            let all = ctx.all_states();
            let sccs = scc_decomposition(&mut ctx, t, all, algo);
            let mut union = Bdd::FALSE;
            for &s in &sccs {
                assert!(ctx.mgr().and(union, s).is_false(), "{algo:?}: SCCs overlap");
                union = ctx.mgr().or(union, s);
            }
            // Cyclic states: {0,1}, {2,3}, {4}.
            assert_eq!(decode_scc(&mut ctx, union, 8), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn empty_vertex_set() {
        for algo in ALGOS {
            let mut ctx = shell(3);
            let t = relation(&mut ctx, &[(0, 1), (1, 0)]);
            assert!(scc_decomposition(&mut ctx, t, Bdd::FALSE, algo).is_empty());
            assert!(!has_cycle(&mut ctx, t, Bdd::FALSE));
        }
    }
}
