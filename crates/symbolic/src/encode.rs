//! Log-encoding of protocols onto BDD variables.
//!
//! Every finite-domain protocol variable `v` with domain `d` occupies
//! `⌈log₂ d⌉` boolean variable *pairs*: the current-state bit at an even
//! level and its primed (next-state) partner immediately after it. This
//! interleaving keeps the identity relation `v' = v` — and hence each
//! process's frame condition — linear in the number of bits, which is the
//! standard CUDD-era layout the original STSyn inherits.
//!
//! Domains that are not powers of two leave *invalid codes*; every
//! predicate built here is intersected with the valid-code constraint, and
//! complements must go through [`SymbolicContext::not_states`] (which does
//! that intersection) rather than raw BDD negation.

use stsyn_bdd::{Bdd, BddError, Budget, Manager, RenameId, VarId, VarSetId};
use stsyn_protocol::expr::{BinOp, Expr, Ty, UnOp};
use stsyn_protocol::group::GroupDesc;
use stsyn_protocol::state::State;
use stsyn_protocol::topology::{ProcIdx, VarIdx};
use stsyn_protocol::Protocol;

/// Bit layout of one protocol variable.
#[derive(Debug, Clone)]
struct VarBits {
    /// Current-state bits, least-significant first.
    cur: Vec<VarId>,
    /// Primed bits, aligned with `cur`.
    primed: Vec<VarId>,
    domain: u32,
}

/// The symbolic encoding of one protocol: owns the BDD manager plus every
/// precomputed constant the algorithms need.
pub struct SymbolicContext {
    protocol: Protocol,
    mgr: Manager,
    order: VarOrder,
    bits: Vec<VarBits>,
    /// Conjunction of valid-code constraints over current bits.
    valid_cur: Bdd,
    /// Same over primed bits.
    valid_primed: Bdd,
    /// Per-variable value cubes: `value_cur[v][val]`.
    value_cur: Vec<Vec<Bdd>>,
    value_primed: Vec<Vec<Bdd>>,
    /// Per-variable identity `v' = v`.
    var_identity: Vec<Bdd>,
    /// Per-process frame: identity over every variable the process does
    /// not write.
    frames: Vec<Bdd>,
    cur_set: VarSetId,
    primed_set: VarSetId,
    cur_to_primed: RenameId,
    primed_to_cur: RenameId,
    cur_vars_sorted: Vec<VarId>,
}

/// How current and primed boolean variables are laid out in the BDD
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarOrder {
    /// Each current bit immediately followed by its primed partner —
    /// the CUDD-era default that keeps identity/frame relations linear.
    #[default]
    Interleaved,
    /// All current bits first, then all primed bits. Deliberately bad for
    /// relations (each `v' = v` conjunct spans the whole order); provided
    /// for the variable-ordering ablation benchmark.
    Blocked,
}

/// Panic message of the infallible wrappers: with a budget installed the
/// fallible `try_*` variants must be used instead.
pub(crate) const INFALLIBLE: &str = "budget exhausted inside an infallible symbolic \
     operation (use the try_* variants when a budget is installed)";

impl SymbolicContext {
    /// Build the encoding for a protocol with the default
    /// ([`VarOrder::Interleaved`]) layout.
    pub fn new(protocol: Protocol) -> Self {
        Self::with_order(protocol, VarOrder::Interleaved)
    }

    /// Build the encoding with an explicit variable layout.
    pub fn with_order(protocol: Protocol, order: VarOrder) -> Self {
        let mut mgr = Manager::new();
        let mut bits = Vec::with_capacity(protocol.num_vars());
        match order {
            VarOrder::Interleaved => {
                for v in protocol.vars() {
                    let nbits = bits_for(v.domain);
                    let mut cur = Vec::with_capacity(nbits);
                    let mut primed = Vec::with_capacity(nbits);
                    for _ in 0..nbits {
                        cur.push(mgr.new_var());
                        primed.push(mgr.new_var());
                    }
                    bits.push(VarBits { cur, primed, domain: v.domain });
                }
            }
            VarOrder::Blocked => {
                // All current bits, then all primed bits (cur → primed
                // stays order-preserving, so renaming still works).
                for v in protocol.vars() {
                    let nbits = bits_for(v.domain);
                    let cur = (0..nbits).map(|_| mgr.new_var()).collect();
                    bits.push(VarBits { cur, primed: Vec::new(), domain: v.domain });
                }
                for (v, vb) in protocol.vars().iter().zip(bits.iter_mut()) {
                    let nbits = bits_for(v.domain);
                    vb.primed = (0..nbits).map(|_| mgr.new_var()).collect();
                }
            }
        }

        // Value cubes.
        let mut value_cur = Vec::with_capacity(bits.len());
        let mut value_primed = Vec::with_capacity(bits.len());
        for vb in &bits {
            let mut vc = Vec::with_capacity(vb.domain as usize);
            let mut vp = Vec::with_capacity(vb.domain as usize);
            for val in 0..vb.domain {
                vc.push(encode_value(&mut mgr, &vb.cur, val));
                vp.push(encode_value(&mut mgr, &vb.primed, val));
            }
            value_cur.push(vc);
            value_primed.push(vp);
        }

        // Valid-code constraints.
        let mut valid_cur = mgr.one();
        let mut valid_primed = mgr.one();
        for (i, vb) in bits.iter().enumerate() {
            if !vb.domain.is_power_of_two() {
                let vc = mgr.or_many(&value_cur[i]);
                valid_cur = mgr.and(valid_cur, vc);
                let vp = mgr.or_many(&value_primed[i]);
                valid_primed = mgr.and(valid_primed, vp);
            }
        }

        // Per-variable identity relations.
        let mut var_identity = Vec::with_capacity(bits.len());
        for vb in &bits {
            let mut id = mgr.one();
            // Build bottom-up (highest level first) to keep intermediate
            // BDDs small under the interleaved order.
            for k in (0..vb.cur.len()).rev() {
                let c = mgr.var(vb.cur[k]);
                let p = mgr.var(vb.primed[k]);
                let eq = mgr.iff(c, p);
                id = mgr.and(id, eq);
            }
            var_identity.push(id);
        }

        // Per-process frames.
        let mut frames = Vec::with_capacity(protocol.num_processes());
        for j in 0..protocol.num_processes() {
            let proc = &protocol.processes()[j];
            let mut frame = mgr.one();
            for i in (0..bits.len()).rev() {
                if !proc.writes.contains(&VarIdx(i)) {
                    frame = mgr.and(frame, var_identity[i]);
                }
            }
            frames.push(frame);
        }

        let all_cur: Vec<VarId> = bits.iter().flat_map(|vb| vb.cur.iter().copied()).collect();
        let all_primed: Vec<VarId> = bits.iter().flat_map(|vb| vb.primed.iter().copied()).collect();
        let cur_set = mgr.varset(&all_cur);
        let primed_set = mgr.varset(&all_primed);
        let fwd: Vec<(VarId, VarId)> =
            all_cur.iter().copied().zip(all_primed.iter().copied()).collect();
        let bwd: Vec<(VarId, VarId)> =
            all_primed.iter().copied().zip(all_cur.iter().copied()).collect();
        let cur_to_primed = mgr.rename_map(&fwd);
        let primed_to_cur = mgr.rename_map(&bwd);
        let mut cur_vars_sorted = all_cur;
        cur_vars_sorted.sort_unstable();

        SymbolicContext {
            protocol,
            mgr,
            order,
            bits,
            valid_cur,
            valid_primed,
            value_cur,
            value_primed,
            var_identity,
            frames,
            cur_set,
            primed_set,
            cur_to_primed,
            primed_to_cur,
            cur_vars_sorted,
        }
    }

    /// Install a resource budget on the underlying manager.
    ///
    /// Also registers this context's precomputed constants as the
    /// persistent GC root set and — under the interleaved layout — the
    /// `(current, primed)` bit pairs the node-pressure degradation path
    /// may reorder with [`Manager::sift_pairs`]. Callers that hold further
    /// long-lived handles (relations, invariants, rank layers, ...) must
    /// extend the root set via [`SymbolicContext::register_roots`] before
    /// any budgeted call that may hit a node-ceiling safe point.
    pub fn set_budget(&mut self, budget: &Budget) {
        let roots = self.roots();
        let pairs: Vec<(VarId, VarId)> = self
            .bits
            .iter()
            .flat_map(|vb| vb.cur.iter().copied().zip(vb.primed.iter().copied()))
            .collect();
        self.mgr.set_gc_roots(roots);
        self.mgr.set_reorder_pairs(pairs);
        self.mgr.set_budget(budget.clone());
    }

    /// Remove any installed budget; the tick counter is preserved so
    /// callers can still read [`Manager::ticks_used`].
    pub fn clear_budget(&mut self) {
        self.mgr.clear_budget();
    }

    /// Re-register the persistent GC root set as this context's constants
    /// plus `extra`. Replaces (does not accumulate) previous extras.
    pub fn register_roots(&mut self, extra: &[Bdd]) {
        let mut roots = self.roots();
        roots.extend_from_slice(extra);
        self.mgr.set_gc_roots(roots);
    }

    /// The encoded protocol.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The variable layout this context was built with. Partial renames
    /// (as used by the partitioned engines) are only order-preserving
    /// under [`VarOrder::Interleaved`].
    pub fn var_order(&self) -> VarOrder {
        self.order
    }

    /// Current-state bits of one protocol variable (LSB first).
    pub(crate) fn cur_bits(&self, v: VarIdx) -> &[VarId] {
        &self.bits[v.0].cur
    }

    /// Primed bits of one protocol variable, aligned with
    /// [`SymbolicContext::cur_bits`].
    pub(crate) fn primed_bits(&self, v: VarIdx) -> &[VarId] {
        &self.bits[v.0].primed
    }

    /// Mutable access to the underlying BDD manager.
    pub fn mgr(&mut self) -> &mut Manager {
        &mut self.mgr
    }

    /// Read-only access to the underlying BDD manager.
    pub fn mgr_ref(&self) -> &Manager {
        &self.mgr
    }

    /// The set of all current-state boolean variables.
    pub fn cur_set(&self) -> VarSetId {
        self.cur_set
    }

    /// The set of all primed boolean variables.
    pub fn primed_set(&self) -> VarSetId {
        self.primed_set
    }

    /// Rename map current → primed.
    pub fn cur_to_primed(&self) -> RenameId {
        self.cur_to_primed
    }

    /// Rename map primed → current.
    pub fn primed_to_cur(&self) -> RenameId {
        self.primed_to_cur
    }

    /// The valid-code constraint over current bits — the symbolic
    /// representation of the full state space `S_p`.
    pub fn all_states(&self) -> Bdd {
        self.valid_cur
    }

    /// Complement **within the state space**: `S_p ∧ ¬f`.
    pub fn not_states(&mut self, f: Bdd) -> Bdd {
        self.try_not_states(f).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::not_states`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_not_states(&mut self, f: Bdd) -> Result<Bdd, BddError> {
        let nf = self.mgr.try_not(f)?;
        self.mgr.try_and(self.valid_cur, nf)
    }

    /// The cube `v = val` over current bits.
    pub fn value(&self, v: VarIdx, val: u32) -> Bdd {
        self.value_cur[v.0][val as usize]
    }

    /// The cube `v' = val` over primed bits.
    pub fn value_primed(&self, v: VarIdx, val: u32) -> Bdd {
        self.value_primed[v.0][val as usize]
    }

    /// The identity relation `v' = v` for one variable.
    pub fn identity_of(&self, v: VarIdx) -> Bdd {
        self.var_identity[v.0]
    }

    /// The frame relation of process `j`: every non-written variable
    /// unchanged.
    pub fn frame(&self, j: ProcIdx) -> Bdd {
        self.frames[j.0]
    }

    /// The singleton predicate {s}.
    pub fn state_cube(&mut self, s: &State) -> Bdd {
        self.try_state_cube(s).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::state_cube`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_state_cube(&mut self, s: &State) -> Result<Bdd, BddError> {
        let cubes: Vec<Bdd> =
            s.iter().enumerate().map(|(i, &val)| self.value_cur[i][val as usize]).collect();
        self.mgr.try_and_many(&cubes)
    }

    /// Number of protocol states in a (current-vocabulary) predicate.
    pub fn count_states(&self, f: Bdd) -> f64 {
        self.mgr.sat_count_over(f, &self.cur_vars_sorted)
    }

    /// Extract one concrete protocol state from a non-empty predicate.
    pub fn pick_state(&self, f: Bdd) -> Option<State> {
        let cube = self.mgr.pick_cube(f)?;
        let mut asg = vec![false; self.mgr.num_vars() as usize];
        for (v, b) in cube {
            asg[v.0 as usize] = b;
        }
        // Don't-care bits default to false — still inside `f`, and inside
        // the valid region because f ⊆ valid_cur for all predicates built
        // through this context.
        let mut state = Vec::with_capacity(self.bits.len());
        for vb in &self.bits {
            let mut val = 0u32;
            for (k, bit) in vb.cur.iter().enumerate() {
                if asg[bit.0 as usize] {
                    val |= 1 << k;
                }
            }
            debug_assert!(val < vb.domain, "picked an invalid code");
            state.push(val);
        }
        Some(state)
    }

    /// The singleton predicate {s} as a BDD, from a picked state — inverse
    /// of [`SymbolicContext::pick_state`].
    pub fn singleton(&mut self, s: &State) -> Bdd {
        self.state_cube(s)
    }

    /// Fallible variant of [`SymbolicContext::singleton`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_singleton(&mut self, s: &State) -> Result<Bdd, BddError> {
        self.try_state_cube(s)
    }

    /// Compile a boolean expression into a current-vocabulary predicate
    /// (intersected with the valid-code constraint).
    pub fn compile(&mut self, e: &Expr) -> Bdd {
        self.try_compile(e).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::compile`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_compile(&mut self, e: &Expr) -> Result<Bdd, BddError> {
        debug_assert_eq!(e.typecheck().ok(), Some(Ty::Bool));
        let raw = self.compile_bool(e)?;
        self.mgr.try_and(raw, self.valid_cur)
    }

    fn compile_bool(&mut self, e: &Expr) -> Result<Bdd, BddError> {
        Ok(match e {
            Expr::Bool(b) => {
                if *b {
                    self.mgr.one()
                } else {
                    self.mgr.zero()
                }
            }
            Expr::Un(UnOp::Not, inner) => {
                let f = self.compile_bool(inner)?;
                self.mgr.try_not(f)?
            }
            Expr::Bin(op, a, b) => {
                use BinOp::*;
                match op {
                    And | Or | Implies | Iff => {
                        let fa = self.compile_bool(a)?;
                        let fb = self.compile_bool(b)?;
                        match op {
                            And => self.mgr.try_and(fa, fb)?,
                            Or => self.mgr.try_or(fa, fb)?,
                            Implies => self.mgr.try_implies(fa, fb)?,
                            Iff => self.mgr.try_iff(fa, fb)?,
                            _ => unreachable!(),
                        }
                    }
                    Eq | Ne if a.typecheck() == Ok(Ty::Bool) => {
                        let fa = self.compile_bool(a)?;
                        let fb = self.compile_bool(b)?;
                        let eq = self.mgr.try_iff(fa, fb)?;
                        if *op == Eq {
                            eq
                        } else {
                            self.mgr.try_not(eq)?
                        }
                    }
                    Eq | Ne | Lt | Le | Gt | Ge => {
                        let ta = self.compile_int(a)?;
                        let tb = self.compile_int(b)?;
                        let mut acc = self.mgr.zero();
                        for &(va, ca) in &ta {
                            for &(vb, cb) in &tb {
                                let holds = match op {
                                    Eq => va == vb,
                                    Ne => va != vb,
                                    Lt => va < vb,
                                    Le => va <= vb,
                                    Gt => va > vb,
                                    Ge => va >= vb,
                                    _ => unreachable!(),
                                };
                                if holds {
                                    let both = self.mgr.try_and(ca, cb)?;
                                    acc = self.mgr.try_or(acc, both)?;
                                }
                            }
                        }
                        acc
                    }
                    _ => panic!("non-boolean operator in boolean position: {op:?}"),
                }
            }
            Expr::Int(_) | Expr::Var(_) | Expr::Un(UnOp::Neg, _) => {
                panic!("integer expression in boolean position")
            }
        })
    }

    /// Compile an integer expression into its value partition: a list of
    /// `(value, condition)` pairs whose conditions are disjoint and cover
    /// the valid states. Exponential in the number of *distinct variables
    /// mentioned*, which locality keeps tiny.
    fn compile_int(&mut self, e: &Expr) -> Result<Vec<(i64, Bdd)>, BddError> {
        Ok(match e {
            Expr::Int(i) => vec![(*i, self.mgr.one())],
            Expr::Var(v) => (0..self.bits[v.0].domain)
                .map(|val| (val as i64, self.value_cur[v.0][val as usize]))
                .collect(),
            Expr::Un(UnOp::Neg, inner) => {
                self.compile_int(inner)?.into_iter().map(|(v, c)| (-v, c)).collect()
            }
            Expr::Bin(op, a, b) => {
                use BinOp::*;
                let ta = self.compile_int(a)?;
                let tb = self.compile_int(b)?;
                let mut merged: Vec<(i64, Bdd)> = Vec::new();
                for &(va, ca) in &ta {
                    for &(vb, cb) in &tb {
                        let cond = self.mgr.try_and(ca, cb)?;
                        if cond.is_false() {
                            continue;
                        }
                        let val = match op {
                            Add => va + vb,
                            Sub => va - vb,
                            Mul => va * vb,
                            // Moduli are validated at parse/problem-construction
                            // time (`Expr::validate_moduli`); reaching zero here
                            // is an internal invariant violation.
                            Mod => {
                                assert!(vb != 0, "modulo by zero in predicate");
                                va.rem_euclid(vb)
                            }
                            _ => panic!("boolean operator in integer position: {op:?}"),
                        };
                        match merged.iter_mut().find(|(v, _)| *v == val) {
                            Some((_, c)) => *c = self.mgr.try_or(*c, cond)?,
                            None => merged.push((val, cond)),
                        }
                    }
                }
                merged
            }
            Expr::Bool(_) | Expr::Un(UnOp::Not, _) => {
                panic!("boolean expression in integer position")
            }
        })
    }

    /// The transition relation of one group: readable source cube ∧
    /// written target cube ∧ the process frame.
    pub fn group_relation(&mut self, g: &GroupDesc) -> Bdd {
        self.try_group_relation(g).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::group_relation`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_group_relation(&mut self, g: &GroupDesc) -> Result<Bdd, BddError> {
        // Value cubes are Copy handles: collect them while the process
        // borrow is live, then conjoin — no per-call clone of the
        // read/write sets in this hot path.
        let proc = &self.protocol.processes()[g.process.0];
        let mut constraints: Vec<Bdd> = Vec::with_capacity(g.pre.len() + g.post.len());
        for (r, &val) in proc.reads.iter().zip(&g.pre) {
            constraints.push(self.value_cur[r.0][val as usize]);
        }
        for (w, &val) in proc.writes.iter().zip(&g.post) {
            constraints.push(self.value_primed[w.0][val as usize]);
        }
        let mut rel = self.frame(g.process);
        // Conjoin highest-level constraints first (reads/writes are sorted
        // ascending; go in reverse to build bottom-up).
        for c in constraints.into_iter().rev() {
            rel = self.mgr.try_and(rel, c)?;
        }
        Ok(rel)
    }

    /// Frameless local relation of one group: readable source cube ∧
    /// written target cube, **without** the process frame. The disjunctive
    /// partitioning (`partition.rs`) builds per-process relations from
    /// these — each partition quantifies/renames only its own written
    /// bits, so the frame over everything else would be dead weight.
    pub(crate) fn try_group_frameless(&mut self, g: &GroupDesc) -> Result<Bdd, BddError> {
        let proc = &self.protocol.processes()[g.process.0];
        let mut constraints: Vec<Bdd> = Vec::with_capacity(g.pre.len() + g.post.len());
        for (r, &val) in proc.reads.iter().zip(&g.pre) {
            constraints.push(self.value_cur[r.0][val as usize]);
        }
        for (w, &val) in proc.writes.iter().zip(&g.post) {
            constraints.push(self.value_primed[w.0][val as usize]);
        }
        let mut rel = self.mgr.one();
        for c in constraints.into_iter().rev() {
            rel = self.mgr.try_and(rel, c)?;
        }
        Ok(rel)
    }

    /// The source-state predicate of a group: the cube over its readable
    /// variables (i.e. all states from which the group has a transition).
    pub fn group_source(&mut self, g: &GroupDesc) -> Bdd {
        self.try_group_source(g).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::group_source`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_group_source(&mut self, g: &GroupDesc) -> Result<Bdd, BddError> {
        let proc = &self.protocol.processes()[g.process.0];
        let cubes: Vec<Bdd> = proc
            .reads
            .iter()
            .zip(&g.pre)
            .map(|(r, &val)| self.value_cur[r.0][val as usize])
            .collect();
        let mut src = self.valid_cur;
        for c in cubes.into_iter().rev() {
            src = self.mgr.try_and(src, c)?;
        }
        Ok(src)
    }

    /// The transition relation denoted by the protocol's guarded commands,
    /// `δ_p`, as the union of each process's action groups.
    pub fn protocol_relation(&mut self) -> Bdd {
        self.try_protocol_relation().expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::protocol_relation`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_protocol_relation(&mut self) -> Result<Bdd, BddError> {
        let mut rel = self.mgr.zero();
        for j in 0..self.protocol.num_processes() {
            let groups = stsyn_protocol::group::groups_of_actions(&self.protocol, ProcIdx(j));
            for g in &groups {
                let gr = self.try_group_relation(g)?;
                rel = self.mgr.try_or(rel, gr)?;
            }
        }
        Ok(rel)
    }

    /// The literal list (current bits, sorted by level) encoding `v = val`
    /// — the cube form used for cofactoring.
    pub fn cur_literals(&self, v: VarIdx, val: u32) -> Vec<(VarId, bool)> {
        let vb = &self.bits[v.0];
        vb.cur.iter().enumerate().map(|(k, &bit)| (bit, (val >> k) & 1 == 1)).collect()
    }

    /// Existentially project a current-vocabulary predicate onto a subset
    /// of the protocol variables (quantifying out every other variable's
    /// current bits). Used to shrink a large state set to a process's
    /// locality before per-group cube tests.
    pub fn project_onto(&mut self, f: Bdd, keep: &[VarIdx]) -> Bdd {
        self.try_project_onto(f, keep).expect(INFALLIBLE)
    }

    /// Fallible variant of [`SymbolicContext::project_onto`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_project_onto(&mut self, f: Bdd, keep: &[VarIdx]) -> Result<Bdd, BddError> {
        // A membership bitmap over the protocol variables keeps this
        // O(vars + keep) instead of O(vars × keep) linear scans.
        let mut kept = vec![false; self.bits.len()];
        for v in keep {
            kept[v.0] = true;
        }
        let mut drop_bits: Vec<VarId> = Vec::new();
        for (vi, vb) in self.bits.iter().enumerate() {
            if !kept[vi] {
                drop_bits.extend(vb.cur.iter().copied());
            }
        }
        let set = self.mgr.varset(&drop_bits);
        self.mgr.try_exists(f, set)
    }

    /// Roots that must survive any garbage collection: every precomputed
    /// constant of this context.
    pub fn roots(&self) -> Vec<Bdd> {
        let mut r = vec![self.valid_cur, self.valid_primed];
        r.extend(self.value_cur.iter().flatten().copied());
        r.extend(self.value_primed.iter().flatten().copied());
        r.extend(self.var_identity.iter().copied());
        r.extend(self.frames.iter().copied());
        r
    }

    /// Garbage-collect the manager, keeping this context's constants and
    /// the caller's `extra` roots alive.
    pub fn gc(&mut self, extra: &[Bdd]) -> usize {
        let mut roots = self.roots();
        roots.extend_from_slice(extra);
        self.mgr.gc(&roots)
    }
}

/// Number of bits to encode a domain of size `d`.
fn bits_for(d: u32) -> usize {
    debug_assert!(d >= 1);
    if d == 1 {
        1 // keep one (constant-0) bit so every variable has a slot
    } else {
        (32 - (d - 1).leading_zeros()) as usize
    }
}

/// The cube `bits == val` (LSB-first).
fn encode_value(mgr: &mut Manager, bits: &[VarId], val: u32) -> Bdd {
    let mut cube = mgr.one();
    for (k, &b) in bits.iter().enumerate().rev() {
        let lit = mgr.literal(b, (val >> k) & 1 == 1);
        cube = mgr.and(cube, lit);
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::topology::{ProcessDecl, VarDecl};

    fn mini() -> Protocol {
        // Two vars of domain 3 (non-power-of-two exercises valid-code
        // handling), one process reading both, writing the first.
        let vars = vec![VarDecl::new("a", 3), VarDecl::new("b", 3)];
        let procs =
            vec![ProcessDecl::new("P0", vec![VarIdx(0), VarIdx(1)], vec![VarIdx(0)]).unwrap()];
        // a != b → a := b
        let a = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).ne(Expr::var(VarIdx(1))),
            vec![(VarIdx(0), Expr::var(VarIdx(1)))],
        );
        Protocol::new(vars, procs, vec![a]).unwrap()
    }

    #[test]
    fn bits_for_domains() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
    }

    #[test]
    fn state_space_count() {
        let ctx = SymbolicContext::new(mini());
        let all = ctx.all_states();
        assert_eq!(ctx.count_states(all), 9.0);
    }

    #[test]
    fn value_cubes_partition() {
        // Raw value cubes constrain only their own variable's bits; state
        // counting therefore goes through an intersection with the valid
        // state space (b's two bits admit an invalid fourth code).
        let mut ctx = SymbolicContext::new(mini());
        let all = ctx.all_states();
        let mut union = ctx.mgr().zero();
        for val in 0..3 {
            let c = ctx.value(VarIdx(0), val);
            let c_valid = ctx.mgr().and(c, all);
            assert_eq!(ctx.count_states(c_valid), 3.0); // b free over 3 values
            union = ctx.mgr().or(union, c_valid);
        }
        assert_eq!(union, all);
    }

    #[test]
    fn compile_matches_explicit_evaluation() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p.clone());
        let e =
            Expr::var(VarIdx(0)).add(Expr::int(1)).modulo(Expr::int(3)).eq(Expr::var(VarIdx(1)));
        let f = ctx.compile(&e);
        for s in p.space().states() {
            let cube = ctx.state_cube(&s);
            let inside = !ctx.mgr().and(cube, f).is_false();
            assert_eq!(inside, e.holds(&s), "state {s:?}");
        }
    }

    #[test]
    fn compile_bool_connectives() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p.clone());
        let e = Expr::var(VarIdx(0))
            .eq(Expr::int(0))
            .implies(Expr::var(VarIdx(1)).ne(Expr::int(2)))
            .and(Expr::Bool(true));
        let f = ctx.compile(&e);
        for s in p.space().states() {
            let cube = ctx.state_cube(&s);
            let inside = !ctx.mgr().and(cube, f).is_false();
            assert_eq!(inside, e.holds(&s));
        }
    }

    #[test]
    fn not_states_stays_within_space() {
        let mut ctx = SymbolicContext::new(mini());
        let zero = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(0)));
        let rest = ctx.not_states(zero);
        assert_eq!(ctx.count_states(rest), 6.0);
        let all = ctx.all_states();
        let union = ctx.mgr().or(zero, rest);
        assert_eq!(union, all);
    }

    #[test]
    fn group_relation_semantics() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p.clone());
        // Group: a=0, b=1 → a:=1.
        let g = GroupDesc { process: ProcIdx(0), pre: vec![0, 1], post: vec![1] };
        let rel = ctx.group_relation(&g);
        // Exactly one transition: ⟨0,1⟩ → ⟨1,1⟩ (b unreadable? no — b is
        // read, so the group pins b; frame keeps b unchanged).
        let src_states = ctx_src(&mut ctx, rel);
        let src = ctx.pick_state(src_states).unwrap();
        assert_eq!(src, vec![0, 1]);
        // Count transition pairs: source fixed (1 state) × target 1.
        let src_pred = ctx.group_source(&g);
        assert_eq!(ctx.count_states(src_pred), 1.0);
    }

    fn ctx_src(ctx: &mut SymbolicContext, rel: Bdd) -> Bdd {
        let pv = ctx.primed_set();
        ctx.mgr().exists(rel, pv)
    }

    #[test]
    fn protocol_relation_matches_explicit_graph() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p.clone());
        let rel = ctx.protocol_relation();
        let graph = stsyn_protocol::explicit::ExplicitGraph::of_protocol(&p);
        let space = p.space();
        // Each explicit edge must be in rel and vice versa (count check +
        // membership check).
        let mut expected = 0;
        for s in space.states() {
            let sid = space.encode(&s);
            for &t in graph.successors(sid) {
                expected += 1;
                let t_state = space.decode(t as u64);
                let s_cube = ctx.state_cube(&s);
                let t_cube = ctx.state_cube(&t_state);
                let map = ctx.cur_to_primed();
                let t_primed = ctx.mgr().rename(t_cube, map);
                let edge = ctx.mgr().and(s_cube, t_primed);
                assert!(!ctx.mgr().and(edge, rel).is_false(), "missing edge {s:?}→{t_state:?}");
            }
        }
        // Total symbolic edges equal the explicit count.
        let cur = ctx.cur_vars_sorted.clone();
        let primed: Vec<VarId> = {
            let pv = ctx.primed_set();
            ctx.mgr_ref().varset_vars(pv)
        };
        let mut all: Vec<VarId> = cur.into_iter().chain(primed).collect();
        all.sort_unstable();
        assert_eq!(ctx.mgr_ref().sat_count_over(rel, &all), expected as f64);
    }

    #[test]
    fn frame_keeps_unwritten_vars() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p.clone());
        let frame = ctx.frame(ProcIdx(0));
        // b (index 1) must be unchanged: frame ∧ (b=0) ∧ (b'=1) is empty.
        let b0 = ctx.value(VarIdx(1), 0);
        let b1p = ctx.value_primed(VarIdx(1), 1);
        let both = ctx.mgr().and(b0, b1p);
        assert!(ctx.mgr().and(frame, both).is_false());
        // a is unconstrained by the frame.
        let a0 = ctx.value(VarIdx(0), 0);
        let a1p = ctx.value_primed(VarIdx(0), 1);
        let moved = ctx.mgr().and(a0, a1p);
        assert!(!ctx.mgr().and(frame, moved).is_false());
    }

    #[test]
    fn pick_state_roundtrip() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p.clone());
        let e = Expr::var(VarIdx(0)).eq(Expr::int(2)).and(Expr::var(VarIdx(1)).eq(Expr::int(1)));
        let f = ctx.compile(&e);
        let s = ctx.pick_state(f).unwrap();
        assert_eq!(s, vec![2, 1]);
        let cube = ctx.singleton(&s);
        assert_eq!(cube, f);
        assert!(ctx.pick_state(Bdd::FALSE).is_none());
    }

    #[test]
    fn blocked_order_is_semantically_identical_but_bigger() {
        use crate::encode::VarOrder;
        let p = mini();
        let mut inter = SymbolicContext::new(p.clone());
        let mut blocked = SymbolicContext::with_order(p.clone(), VarOrder::Blocked);
        // Same state counts, same predicate semantics.
        let e = Expr::var(VarIdx(0)).ne(Expr::var(VarIdx(1)));
        let fi = inter.compile(&e);
        let fb = blocked.compile(&e);
        assert_eq!(inter.count_states(fi), blocked.count_states(fb));
        // Same relation semantics: image of a state agrees.
        let ti = inter.protocol_relation();
        let tb = blocked.protocol_relation();
        for s in p.space().states() {
            let ci = inter.state_cube(&s);
            let cb = blocked.state_cube(&s);
            let img_i = inter.img(ti, ci);
            let img_b = blocked.img(tb, cb);
            assert_eq!(inter.count_states(img_i), blocked.count_states(img_b), "{s:?}");
        }
        // The frame (identity) relation is strictly larger when blocked —
        // the point of the interleaved default.
        let frame_i = inter.frame(ProcIdx(0));
        let frame_b = blocked.frame(ProcIdx(0));
        assert!(
            blocked.mgr_ref().node_count(frame_b) >= inter.mgr_ref().node_count(frame_i),
            "blocked frame must not be smaller"
        );
    }

    #[test]
    fn project_onto_empty_and_full_keep_sets() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p);
        let f = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::int(1)));
        // Keeping every variable quantifies nothing.
        let full = ctx.project_onto(f, &[VarIdx(0), VarIdx(1)]);
        assert_eq!(full, f);
        // Keeping nothing quantifies all current bits: any non-empty
        // predicate projects to true, the empty one stays false.
        let none = ctx.project_onto(f, &[]);
        assert!(none.is_true());
        let empty = ctx.project_onto(Bdd::FALSE, &[]);
        assert!(empty.is_false());
        // Projection onto one variable drops only the other's bits.
        let both = {
            let g = ctx.compile(&Expr::var(VarIdx(1)).eq(Expr::int(2)));
            ctx.mgr().and(f, g)
        };
        // (re-intersect with the state space: projection frees the
        // dropped variable's bits beyond its valid codes)
        let onto_b = ctx.project_onto(both, &[VarIdx(1)]);
        let all = ctx.all_states();
        let onto_b = ctx.mgr().and(onto_b, all);
        let b2 = ctx.compile(&Expr::var(VarIdx(1)).eq(Expr::int(2)));
        assert_eq!(onto_b, b2);
    }

    #[test]
    fn gc_keeps_context_usable() {
        let p = mini();
        let mut ctx = SymbolicContext::new(p.clone());
        let keep = ctx.compile(&Expr::var(VarIdx(0)).eq(Expr::var(VarIdx(1))));
        let _garbage = ctx.protocol_relation();
        ctx.gc(&[keep]);
        assert_eq!(ctx.count_states(keep), 3.0);
        // Context constants still valid after GC.
        let rel = ctx.protocol_relation();
        assert!(!rel.is_false());
    }
}
