//! `ComputeRanks` (Fig. 2 of the paper): the backward-BFS layering of the
//! state space that approximates strong convergence.
//!
//! Given a transition relation `T` (normally the *maximal candidate
//! protocol* `p_im`) and a closed predicate `I`, `Rank[i]` is the set of
//! states whose shortest `T`-path to `I` has length exactly `i`
//! (`Rank[0] = I`). States never reached by the backward search have rank
//! ∞; by Theorem IV.1 their existence proves **no** stabilizing version of
//! the protocol exists, and their absence makes `p_im` itself a weakly
//! stabilizing version — `ComputeRanks` is a sound and complete decision
//! procedure for weak stabilization.

use crate::encode::{SymbolicContext, INFALLIBLE};
use crate::partition::PartitionedRelation;
use stsyn_bdd::{Bdd, BddError, Manager};
use stsyn_obs::{Json, TraceLevel};

/// Callback invoked after every rank layer is committed (checkpointing
/// hook): receives the manager, the layer index and the layer predicate.
pub type RankLayerObserver<'a> = &'a mut dyn FnMut(&Manager, usize, Bdd);

/// The result of `ComputeRanks`.
#[derive(Debug, Clone)]
pub struct RankTable {
    /// `ranks[i]` is the predicate `Rank[i]`; `ranks[0] = I`.
    pub ranks: Vec<Bdd>,
    /// Union of every rank — the backward-reachable set `explored`.
    pub explored: Bdd,
    /// States with rank ∞ (empty iff a weakly stabilizing version exists).
    pub infinite: Bdd,
}

impl RankTable {
    /// Highest finite rank `M`.
    pub fn max_rank(&self) -> usize {
        self.ranks.len() - 1
    }

    /// The predicate `Rank[i]`, or `false` when `i` exceeds `M`.
    pub fn rank(&self, i: usize) -> Bdd {
        self.ranks.get(i).copied().unwrap_or(Bdd::FALSE)
    }

    /// Is every state covered by some finite rank? (Theorem IV.1: iff a
    /// weakly stabilizing version exists.)
    pub fn complete(&self) -> bool {
        self.infinite.is_false()
    }
}

/// A `ComputeRanks` run cut short by the resource budget. The layers
/// computed before the interruption are a *correct prefix* of the full
/// table: `ranks_so_far[i]` is exactly the set of states at backward
/// distance `i` from `I`, and `explored` is their union.
#[derive(Debug, Clone)]
pub struct RanksInterrupted {
    /// The budget violation that stopped the computation.
    pub cause: BddError,
    /// Correctly-layered rank prefix (`ranks_so_far[0] = I`).
    pub ranks_so_far: Vec<Bdd>,
    /// Union of the prefix layers.
    pub explored: Bdd,
}

/// Compute the rank layering of `relation` towards `i` (which must be a
/// current-vocabulary predicate). Mirrors Fig. 2: repeated one-step
/// backward images, each minus the already-explored set, until a fixpoint.
pub fn compute_ranks(ctx: &mut SymbolicContext, relation: Bdd, i: Bdd) -> RankTable {
    match try_compute_ranks(ctx, relation, i) {
        Ok(table) => table,
        Err(e) => panic!("{INFALLIBLE}: {}", e.cause),
    }
}

/// Fallible variant of [`compute_ranks`] for budgeted runs. Checks the
/// node ceiling at a safe point before every backward step (callers
/// holding further long-lived handles must have registered them, see
/// [`SymbolicContext::register_roots`]); on any budget violation the
/// layers completed so far are returned as [`RanksInterrupted`].
#[must_use = "an interrupted ranking is reported through the Result"]
pub fn try_compute_ranks(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    i: Bdd,
) -> Result<RankTable, Box<RanksInterrupted>> {
    try_compute_ranks_resumed(ctx, relation, i, &[], None)
}

/// [`try_compute_ranks`] with checkpoint/resume support.
///
/// `prefix` is a correctly-layered rank prefix *excluding* `Rank[0] = I`
/// (e.g. the `ranks_so_far[1..]` of an earlier [`RanksInterrupted`], or
/// layers replayed from a journal): the backward search continues from its
/// frontier instead of starting at `I`. Because each layer is uniquely
/// determined by `relation` and `I`, the completed table is identical to
/// an uninterrupted run's. `observer`, when given, fires after every
/// *newly computed* layer is committed (not for the replayed prefix, which
/// the caller has already journaled) so a checkpointing caller can persist
/// layers as they are produced.
#[must_use = "an interrupted ranking is reported through the Result"]
pub fn try_compute_ranks_resumed(
    ctx: &mut SymbolicContext,
    relation: Bdd,
    i: Bdd,
    prefix: &[Bdd],
    mut observer: Option<RankLayerObserver<'_>>,
) -> Result<RankTable, Box<RanksInterrupted>> {
    let mut ranks = vec![i];
    let mut explored = i;
    for &layer in prefix {
        match ctx.mgr().try_or(explored, layer) {
            Ok(e) => {
                explored = e;
                ranks.push(layer);
            }
            Err(cause) => {
                return Err(Box::new(RanksInterrupted { cause, ranks_so_far: ranks, explored }))
            }
        }
    }
    macro_rules! step {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(cause) => {
                    return Err(Box::new(RanksInterrupted { cause, ranks_so_far: ranks, explored }))
                }
            }
        };
    }
    loop {
        {
            let mut extra: Vec<Bdd> = Vec::with_capacity(ranks.len() + 2);
            extra.push(relation);
            extra.push(explored);
            extra.extend(ranks.iter().copied());
            step!(ctx.mgr().enforce_node_budget(&extra));
        }
        let back = step!(ctx.try_pre(relation, explored));
        let not_explored = step!(ctx.mgr().try_not(explored));
        let fresh = step!(ctx.mgr().try_and(back, not_explored));
        if fresh.is_false() {
            break;
        }
        ranks.push(fresh);
        explored = step!(ctx.mgr().try_or(explored, fresh));
        // The per-rank frontier size is the paper's Fig. 7/9 space metric;
        // the node count is only computed when a Debug-level sink wants it.
        if ctx.mgr_ref().tracer().level_enabled(TraceLevel::Debug) {
            let nodes = ctx.mgr_ref().node_count(fresh) as u64;
            ctx.mgr_ref().tracer().debug(
                "rank.layer",
                &[("rank", Json::from((ranks.len() - 1) as u64)), ("nodes", Json::from(nodes))],
            );
        }
        if let Some(obs) = observer.as_mut() {
            obs(ctx.mgr_ref(), ranks.len() - 1, fresh);
        }
    }
    let infinite = step!(ctx.try_not_states(explored));
    Ok(RankTable { ranks, explored, infinite })
}

/// Infallible [`try_compute_ranks_parts`] for unbudgeted runs.
pub fn compute_ranks_parts(
    ctx: &mut SymbolicContext,
    relation: &PartitionedRelation,
    i: Bdd,
) -> RankTable {
    match try_compute_ranks_parts(ctx, relation, i) {
        Ok(table) => table,
        Err(e) => panic!("{INFALLIBLE}: {}", e.cause),
    }
}

/// `ComputeRanks` over a partitioned relation. Produces a [`RankTable`]
/// identical to [`try_compute_ranks`] on the monolithic relation.
#[must_use = "an interrupted ranking is reported through the Result"]
pub fn try_compute_ranks_parts(
    ctx: &mut SymbolicContext,
    relation: &PartitionedRelation,
    i: Bdd,
) -> Result<RankTable, Box<RanksInterrupted>> {
    try_compute_ranks_parts_resumed(ctx, relation, i, &[], None)
}

/// [`try_compute_ranks_parts`] with checkpoint/resume support — the
/// partitioned counterpart of [`try_compute_ranks_resumed`], with the
/// same prefix/observer contract.
///
/// Two differences from the monolithic loop, neither visible in the
/// result:
///
/// * the backward step is the clustered per-partition preimage,
/// * it steps from the last committed *frontier* rather than the whole
///   explored set. That is the same layer: a state outside `explored`
///   with a successor at distance ≤ k must have a successor at distance
///   exactly k (else it would already be explored), so
///   `pre(frontier) ∖ explored = pre(explored) ∖ explored`. Layer
///   boundaries — and hence checkpoints and synthesized protocols —
///   are byte-identical across engines.
#[must_use = "an interrupted ranking is reported through the Result"]
pub fn try_compute_ranks_parts_resumed(
    ctx: &mut SymbolicContext,
    relation: &PartitionedRelation,
    i: Bdd,
    prefix: &[Bdd],
    mut observer: Option<RankLayerObserver<'_>>,
) -> Result<RankTable, Box<RanksInterrupted>> {
    let mut ranks = vec![i];
    let mut explored = i;
    for &layer in prefix {
        match ctx.mgr().try_or(explored, layer) {
            Ok(e) => {
                explored = e;
                ranks.push(layer);
            }
            Err(cause) => {
                return Err(Box::new(RanksInterrupted { cause, ranks_so_far: ranks, explored }))
            }
        }
    }
    macro_rules! step {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(cause) => {
                    return Err(Box::new(RanksInterrupted { cause, ranks_so_far: ranks, explored }))
                }
            }
        };
    }
    loop {
        {
            let mut extra: Vec<Bdd> = relation.roots();
            extra.push(explored);
            extra.extend(ranks.iter().copied());
            step!(ctx.mgr().enforce_node_budget(&extra));
        }
        let frontier = *ranks.last().expect("rank 0 is always present");
        let back = step!(ctx.try_pre_parts(relation, frontier));
        let not_explored = step!(ctx.mgr().try_not(explored));
        let fresh = step!(ctx.mgr().try_and(back, not_explored));
        if fresh.is_false() {
            break;
        }
        ranks.push(fresh);
        explored = step!(ctx.mgr().try_or(explored, fresh));
        if ctx.mgr_ref().tracer().level_enabled(TraceLevel::Debug) {
            let nodes = ctx.mgr_ref().node_count(fresh) as u64;
            ctx.mgr_ref().tracer().debug(
                "rank.layer",
                &[("rank", Json::from((ranks.len() - 1) as u64)), ("nodes", Json::from(nodes))],
            );
        }
        if let Some(obs) = observer.as_mut() {
            obs(ctx.mgr_ref(), ranks.len() - 1, fresh);
        }
    }
    let infinite = step!(ctx.try_not_states(explored));
    Ok(RankTable { ranks, explored, infinite })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::explicit::{predicate_states, ExplicitGraph};
    use stsyn_protocol::expr::Expr;
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
    use stsyn_protocol::Protocol;

    fn ramp(n: u32) -> (Protocol, Expr) {
        let vars = vec![VarDecl::new("c", n)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let a = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).lt(Expr::int((n - 1) as i64)),
            vec![(VarIdx(0), Expr::var(VarIdx(0)).add(Expr::int(1)))],
        );
        let p = Protocol::new(vars, procs, vec![a]).unwrap();
        let i = Expr::var(VarIdx(0)).eq(Expr::int((n - 1) as i64));
        (p, i)
    }

    #[test]
    fn ranks_of_ramp_are_distances() {
        let (p, i) = ramp(5);
        let mut ctx = SymbolicContext::new(p);
        let t = ctx.protocol_relation();
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        assert_eq!(table.max_rank(), 4);
        assert!(table.complete());
        for r in 0..=4u32 {
            let pred = table.rank(r as usize);
            assert_eq!(ctx.count_states(pred), 1.0);
            let s = ctx.pick_state(pred).unwrap();
            assert_eq!(s[0], 4 - r);
        }
        assert!(table.rank(99).is_false());
    }

    #[test]
    fn ranks_match_explicit_bfs() {
        let (p, i) = ramp(7);
        let graph = ExplicitGraph::of_protocol(&p);
        let i_set = predicate_states(&p, &i);
        let explicit = graph.backward_ranks(&i_set);
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        for (id, s) in p.space().states().enumerate() {
            let cube = ctx.state_cube(&s);
            let symbolic_rank = (0..=table.max_rank())
                .find(|&r| {
                    let pred = table.rank(r);
                    !ctx.mgr().and(cube, pred).is_false()
                })
                .map(|r| r as u32)
                .unwrap_or(u32::MAX);
            assert_eq!(symbolic_rank, explicit[id], "state {s:?}");
        }
    }

    #[test]
    fn infinite_ranks_detected() {
        // No actions: every ¬I state has rank ∞ — no stabilizing version.
        let vars = vec![VarDecl::new("c", 3)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = Expr::var(VarIdx(0)).eq(Expr::int(0));
        let mut ctx = SymbolicContext::new(p);
        let t = ctx.protocol_relation(); // empty
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        assert!(!table.complete());
        assert_eq!(ctx.count_states(table.infinite), 2.0);
        assert_eq!(table.max_rank(), 0);
    }

    #[test]
    fn interrupted_ranks_are_a_correct_prefix() {
        use stsyn_bdd::Budget;

        // Reference table from a budgeted-but-unlimited run (so both runs
        // share the tick coordinate system and the op trajectory).
        let (p, i) = ramp(8);
        let huge = Budget::unlimited().with_max_ticks(u64::MAX >> 1);
        let mut ctx = SymbolicContext::new(p.clone());
        ctx.set_budget(&huge);
        let t = ctx.try_protocol_relation().unwrap();
        let i_bdd = ctx.try_compile(&i).unwrap();
        let full = try_compute_ranks(&mut ctx, t, i_bdd).unwrap();
        let total = ctx.mgr_ref().ticks_used();
        assert!(total > 0);

        for n in 1..=total {
            let mut ctx2 = SymbolicContext::new(p.clone());
            ctx2.set_budget(&Budget::unlimited().with_fail_at_tick(n));
            // Injection may fire during setup; those points exercise the
            // callers' setup phases, not ComputeRanks.
            let Ok(t2) = ctx2.try_protocol_relation() else { continue };
            let Ok(i2) = ctx2.try_compile(&i) else { continue };
            match try_compute_ranks(&mut ctx2, t2, i2) {
                Ok(table) => assert_eq!(table.ranks, full.ranks, "tick {n}"),
                Err(ri) => {
                    // Identical deterministic op sequences give identical
                    // hash-consed handles, so prefix layers compare exactly.
                    assert!(ri.ranks_so_far.len() <= full.ranks.len(), "tick {n}");
                    for (layer, (got, want)) in ri.ranks_so_far.iter().zip(&full.ranks).enumerate()
                    {
                        assert_eq!(got, want, "tick {n}, layer {layer}");
                    }
                    ctx2.mgr_ref().check_consistency().expect("manager corrupted");
                }
            }
        }
    }

    #[test]
    fn rank_zero_is_exactly_i() {
        let (p, i) = ramp(4);
        let mut ctx = SymbolicContext::new(p);
        let t = ctx.protocol_relation();
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        assert_eq!(table.rank(0), i_bdd);
        // Ranks partition the explored set.
        let mut union = Bdd::FALSE;
        for r in 0..=table.max_rank() {
            let pred = table.rank(r);
            assert!(ctx.mgr().and(union, pred).is_false(), "ranks overlap");
            union = ctx.mgr().or(union, pred);
        }
        assert_eq!(union, table.explored);
    }
}
