//! `ComputeRanks` (Fig. 2 of the paper): the backward-BFS layering of the
//! state space that approximates strong convergence.
//!
//! Given a transition relation `T` (normally the *maximal candidate
//! protocol* `p_im`) and a closed predicate `I`, `Rank[i]` is the set of
//! states whose shortest `T`-path to `I` has length exactly `i`
//! (`Rank[0] = I`). States never reached by the backward search have rank
//! ∞; by Theorem IV.1 their existence proves **no** stabilizing version of
//! the protocol exists, and their absence makes `p_im` itself a weakly
//! stabilizing version — `ComputeRanks` is a sound and complete decision
//! procedure for weak stabilization.

use crate::encode::SymbolicContext;
use stsyn_bdd::Bdd;

/// The result of `ComputeRanks`.
#[derive(Debug, Clone)]
pub struct RankTable {
    /// `ranks[i]` is the predicate `Rank[i]`; `ranks[0] = I`.
    pub ranks: Vec<Bdd>,
    /// Union of every rank — the backward-reachable set `explored`.
    pub explored: Bdd,
    /// States with rank ∞ (empty iff a weakly stabilizing version exists).
    pub infinite: Bdd,
}

impl RankTable {
    /// Highest finite rank `M`.
    pub fn max_rank(&self) -> usize {
        self.ranks.len() - 1
    }

    /// The predicate `Rank[i]`, or `false` when `i` exceeds `M`.
    pub fn rank(&self, i: usize) -> Bdd {
        self.ranks.get(i).copied().unwrap_or(Bdd::FALSE)
    }

    /// Is every state covered by some finite rank? (Theorem IV.1: iff a
    /// weakly stabilizing version exists.)
    pub fn complete(&self) -> bool {
        self.infinite.is_false()
    }
}

/// Compute the rank layering of `relation` towards `i` (which must be a
/// current-vocabulary predicate). Mirrors Fig. 2: repeated one-step
/// backward images, each minus the already-explored set, until a fixpoint.
pub fn compute_ranks(ctx: &mut SymbolicContext, relation: Bdd, i: Bdd) -> RankTable {
    let mut ranks = vec![i];
    let mut explored = i;
    loop {
        let back = ctx.pre(relation, explored);
        let not_explored = ctx.mgr().not(explored);
        let fresh = ctx.mgr().and(back, not_explored);
        if fresh.is_false() {
            break;
        }
        ranks.push(fresh);
        explored = ctx.mgr().or(explored, fresh);
    }
    let infinite = ctx.not_states(explored);
    RankTable { ranks, explored, infinite }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stsyn_protocol::action::Action;
    use stsyn_protocol::expr::Expr;
    use stsyn_protocol::explicit::{predicate_states, ExplicitGraph};
    use stsyn_protocol::topology::{ProcIdx, ProcessDecl, VarDecl, VarIdx};
    use stsyn_protocol::Protocol;

    fn ramp(n: u32) -> (Protocol, Expr) {
        let vars = vec![VarDecl::new("c", n)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let a = Action::new(
            ProcIdx(0),
            Expr::var(VarIdx(0)).lt(Expr::int((n - 1) as i64)),
            vec![(VarIdx(0), Expr::var(VarIdx(0)).add(Expr::int(1)))],
        );
        let p = Protocol::new(vars, procs, vec![a]).unwrap();
        let i = Expr::var(VarIdx(0)).eq(Expr::int((n - 1) as i64));
        (p, i)
    }

    #[test]
    fn ranks_of_ramp_are_distances() {
        let (p, i) = ramp(5);
        let mut ctx = SymbolicContext::new(p);
        let t = ctx.protocol_relation();
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        assert_eq!(table.max_rank(), 4);
        assert!(table.complete());
        for r in 0..=4u32 {
            let pred = table.rank(r as usize);
            assert_eq!(ctx.count_states(pred), 1.0);
            let s = ctx.pick_state(pred).unwrap();
            assert_eq!(s[0], 4 - r);
        }
        assert!(table.rank(99).is_false());
    }

    #[test]
    fn ranks_match_explicit_bfs() {
        let (p, i) = ramp(7);
        let graph = ExplicitGraph::of_protocol(&p);
        let i_set = predicate_states(&p, &i);
        let explicit = graph.backward_ranks(&i_set);
        let mut ctx = SymbolicContext::new(p.clone());
        let t = ctx.protocol_relation();
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        for (id, s) in p.space().states().enumerate() {
            let cube = ctx.state_cube(&s);
            let symbolic_rank = (0..=table.max_rank())
                .find(|&r| {
                    let pred = table.rank(r);
                    !ctx.mgr().and(cube, pred).is_false()
                })
                .map(|r| r as u32)
                .unwrap_or(u32::MAX);
            assert_eq!(symbolic_rank, explicit[id], "state {s:?}");
        }
    }

    #[test]
    fn infinite_ranks_detected() {
        // No actions: every ¬I state has rank ∞ — no stabilizing version.
        let vars = vec![VarDecl::new("c", 3)];
        let procs = vec![ProcessDecl::new("P0", vec![VarIdx(0)], vec![VarIdx(0)]).unwrap()];
        let p = Protocol::new(vars, procs, vec![]).unwrap();
        let i = Expr::var(VarIdx(0)).eq(Expr::int(0));
        let mut ctx = SymbolicContext::new(p);
        let t = ctx.protocol_relation(); // empty
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        assert!(!table.complete());
        assert_eq!(ctx.count_states(table.infinite), 2.0);
        assert_eq!(table.max_rank(), 0);
    }

    #[test]
    fn rank_zero_is_exactly_i() {
        let (p, i) = ramp(4);
        let mut ctx = SymbolicContext::new(p);
        let t = ctx.protocol_relation();
        let i_bdd = ctx.compile(&i);
        let table = compute_ranks(&mut ctx, t, i_bdd);
        assert_eq!(table.rank(0), i_bdd);
        // Ranks partition the explored set.
        let mut union = Bdd::FALSE;
        for r in 0..=table.max_rank() {
            let pred = table.rank(r);
            assert!(ctx.mgr().and(union, pred).is_false(), "ranks overlap");
            union = ctx.mgr().or(union, pred);
        }
        assert_eq!(union, table.explored);
    }
}
