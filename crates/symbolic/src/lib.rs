//! # stsyn-symbolic — BDD encodings and symbolic graph algorithms
//!
//! This crate bridges the modelling layer (`stsyn-protocol`) and the BDD
//! substrate (`stsyn-bdd`), providing everything §IV–V of the paper
//! compute symbolically:
//!
//! * [`SymbolicContext`] — log-encodes every finite-domain protocol
//!   variable onto *interleaved* current/primed boolean variables, compiles
//!   predicate expressions to BDDs, and builds per-group transition
//!   relations (`group relation = readable-source cube ∧ written-target
//!   cube ∧ frame`),
//! * [`image`] — image/preimage and forward/backward reachability,
//! * [`ranks`] — `ComputeRanks` (Fig. 2): the rank layering of `¬I` that
//!   both decides weak stabilization (Theorem IV.1) and guides the
//!   heuristic,
//! * [`scc`] — symbolic SCC decomposition: the skeleton-based SCC-Find of
//!   Gentilini–Piazza–Policriti (the algorithm the paper's
//!   `Detect_SCC` implements), plus the lockstep and Xie–Beerel
//!   algorithms for cross-validation and ablation, plus a cheap
//!   trimming-based cycle-existence test,
//! * [`check`] — symbolic closure / deadlock / strong- and weak-
//!   convergence checking (Proposition II.1), used to *verify* every
//!   synthesized protocol,
//! * [`partition`] — disjunctively partitioned transition relations:
//!   per-process frameless relation clusters with early-quantification
//!   schedules, plus saturation-ordered closures. The [`Engine`] choice
//!   (`monolithic` / `partitioned` / `saturation`) selects between them
//!   everywhere a fixpoint is driven; all engines return identical
//!   canonical BDDs,
//! * [`trace`] — concrete counterexample/witness executions (paths,
//!   non-progress cycles, recovery demonstrations) extracted from the
//!   symbolic representation.

#![warn(missing_docs)]

pub mod check;
pub mod encode;
pub mod image;
pub mod partition;
pub mod ranks;
pub mod scc;
pub mod trace;

pub use check::{
    closure_holds, deadlock_states, self_stabilizing_parts, strong_convergence,
    strong_convergence_parts, try_closure_holds_parts, try_deadlock_states_parts,
    try_self_stabilizing_parts, try_strong_convergence_parts, try_weak_convergence_parts,
    weak_convergence, weak_convergence_parts, Verdict,
};
pub use encode::{SymbolicContext, VarOrder};
pub use partition::{Engine, Partition, PartitionedRelation, DEFAULT_CLUSTER_CAP};
pub use ranks::{
    compute_ranks, compute_ranks_parts, try_compute_ranks, try_compute_ranks_parts,
    try_compute_ranks_parts_resumed, try_compute_ranks_resumed, RankLayerObserver, RankTable,
    RanksInterrupted,
};
pub use scc::{has_cycle, has_cycle_parts, scc_decomposition, try_has_cycle_parts, SccAlgorithm};
pub use stsyn_bdd::{BddError, Budget, Resource};
