//! # stsyn-symbolic — BDD encodings and symbolic graph algorithms
//!
//! This crate bridges the modelling layer (`stsyn-protocol`) and the BDD
//! substrate (`stsyn-bdd`), providing everything §IV–V of the paper
//! compute symbolically:
//!
//! * [`SymbolicContext`] — log-encodes every finite-domain protocol
//!   variable onto *interleaved* current/primed boolean variables, compiles
//!   predicate expressions to BDDs, and builds per-group transition
//!   relations (`group relation = readable-source cube ∧ written-target
//!   cube ∧ frame`),
//! * [`image`] — image/preimage and forward/backward reachability,
//! * [`ranks`] — `ComputeRanks` (Fig. 2): the rank layering of `¬I` that
//!   both decides weak stabilization (Theorem IV.1) and guides the
//!   heuristic,
//! * [`scc`] — symbolic SCC decomposition: the skeleton-based SCC-Find of
//!   Gentilini–Piazza–Policriti (the algorithm the paper's
//!   `Detect_SCC` implements), plus the lockstep and Xie–Beerel
//!   algorithms for cross-validation and ablation, plus a cheap
//!   trimming-based cycle-existence test,
//! * [`check`] — symbolic closure / deadlock / strong- and weak-
//!   convergence checking (Proposition II.1), used to *verify* every
//!   synthesized protocol,
//! * [`trace`] — concrete counterexample/witness executions (paths,
//!   non-progress cycles, recovery demonstrations) extracted from the
//!   symbolic representation.

#![warn(missing_docs)]

pub mod check;
pub mod encode;
pub mod image;
pub mod ranks;
pub mod scc;
pub mod trace;

pub use check::{closure_holds, deadlock_states, strong_convergence, weak_convergence, Verdict};
pub use encode::{SymbolicContext, VarOrder};
pub use ranks::{
    compute_ranks, try_compute_ranks, try_compute_ranks_resumed, RankLayerObserver, RankTable,
    RanksInterrupted,
};
pub use scc::{has_cycle, scc_decomposition, SccAlgorithm};
pub use stsyn_bdd::{BddError, Budget, Resource};
