//! Loopback integration tests of the job service: concurrent clients,
//! backpressure, cancel/completion races, checkpoint shutdowns, and a
//! real SIGKILL + restart cycle driving the `stsyn serve` binary.

use std::io::BufRead;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use stsyn_serve::{
    Client, ClientError, JobSource, Json, RetryPolicy, Server, ServerConfig, ShutdownMode,
    SubmitSpec,
};

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-serve-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn case(name: &str, n: usize) -> SubmitSpec {
    SubmitSpec::new(JobSource::Case { name: name.into(), n, d: 0 })
}

/// What an uninterrupted single-shot run of the same spec produces — the
/// reference the service results are diffed against.
fn direct_protocol_text(spec: &SubmitSpec) -> String {
    spec.materialize().unwrap().run().unwrap().emitted_dsl
}

fn start(cfg: ServerConfig) -> (stsyn_serve::ServerHandle, std::net::SocketAddr) {
    let handle = Server::start(cfg).unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn poll_state(client: &mut Client, id: u64, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = client.state(id).unwrap();
        if state == want {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{state}` waiting for `{want}`");
        std::thread::sleep(Duration::from_millis(10));
    }
}

const WAIT: Duration = Duration::from_secs(300);

#[test]
fn concurrent_submissions_match_single_shot_results() {
    let dir = tempdir::TempDir::new("concurrent");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 3;
    let (handle, addr) = start(cfg);

    // 9 concurrent clients across the paper's three case studies.
    let specs: Vec<SubmitSpec> = ["coloring", "matching", "token_ring"]
        .iter()
        .flat_map(|name| (0..3).map(|_| case(name, 3)))
        .collect();
    let expected: Vec<String> = specs.iter().map(direct_protocol_text).collect();

    let joins: Vec<_> = specs
        .into_iter()
        .zip(expected)
        .map(|(spec, want)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let id = client.submit(&spec).unwrap();
                let result = client.wait(id, WAIT).unwrap();
                assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
                assert_eq!(
                    result.get("protocol").and_then(Json::as_str),
                    Some(want.as_str()),
                    "service result diverged from the single-shot run"
                );
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(9));
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(9));
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert!(stats.get("peak_nodes_max").and_then(Json::as_u64).unwrap() > 0);

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn metrics_verb_and_job_trace() {
    let dir = tempdir::TempDir::new("metrics");
    let trace_path = dir.path.join("daemon.trace");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    cfg.tracer = stsyn_obs::Tracer::to_file(&trace_path, stsyn_obs::TraceLevel::Debug).unwrap();
    let (handle, addr) = start(cfg);

    let mut client = Client::connect(addr).unwrap();
    let id = client.submit(&case("coloring", 3)).unwrap();
    client.wait(id, WAIT).unwrap();

    // Prometheus text exposition over the wire.
    let text = client.metrics().unwrap();
    for series in [
        "stsyn_jobs_accepted_total 1",
        "stsyn_jobs_completed_total 1",
        "stsyn_queue_depth 0",
        "stsyn_workers 1",
    ] {
        assert!(text.contains(series), "metrics missing `{series}`:\n{text}");
    }
    assert!(text.contains("# TYPE stsyn_jobs_accepted_total counter"));
    assert!(text.contains("# TYPE stsyn_worker_utilization gauge"));

    // `stats` carries the new wait-time/utilization gauges.
    let stats = client.stats().unwrap();
    assert!(stats.get("queue_wait_ms_total").and_then(Json::as_u64).is_some());
    assert!(stats.get("run_ms_total").and_then(Json::as_u64).is_some());
    assert!(stats.get("uptime_secs").and_then(Json::as_f64).unwrap() > 0.0);

    handle.shutdown(ShutdownMode::Drain);
    handle.join();

    // The daemon's trace validates and contains a closed per-job span
    // wrapping the synthesis-phase spans.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let records = stsyn_obs::parse_trace(text.as_bytes()).unwrap();
    assert_eq!(stsyn_obs::open_spans(&records), 0);
    let serve_spans: Vec<&Json> = records
        .iter()
        .filter(|r| r.get("name").and_then(Json::as_str) == Some("serve.job"))
        .collect();
    assert_eq!(serve_spans.len(), 2, "expected open+close of one serve.job span");
    assert!(records
        .iter()
        .any(|r| r.get("name").and_then(Json::as_str) == Some("synthesis.stats")));
}

#[test]
fn full_queue_rejects_with_distinct_error() {
    let dir = tempdir::TempDir::new("backpressure");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    let (handle, addr) = start(cfg);
    // Fail fast: this test asserts the *first* rejection, so the default
    // retry-on-queue-full policy would hide what it is checking.
    let mut client = Client::connect_with(addr, RetryPolicy::none()).unwrap();

    // A long job occupies the single worker...
    let blocker = client.submit(&case("coloring", 16)).unwrap();
    poll_state(&mut client, blocker, "running", WAIT);
    // ...so two more fill the queue, and the third bounces.
    let q1 = client.submit(&case("token_ring", 3)).unwrap();
    let q2 = client.submit(&case("token_ring", 3)).unwrap();
    match client.submit(&case("token_ring", 3)) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "queue-full"),
        other => panic!("expected a queue-full rejection, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some(1));

    // Cancelling a queued job is immediate; cancelling the running
    // blocker is cooperative and lands within one tick-check interval.
    let _ = client.cancel(q1).unwrap();
    let _ = client.cancel(q2).unwrap();
    assert_eq!(client.state(q1).unwrap(), "cancelled");
    let _ = client.cancel(blocker).unwrap();
    poll_state(&mut client, blocker, "cancelled", WAIT);
    match client.result(blocker) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "cancelled"),
        other => panic!("expected a cancelled result, got {other:?}"),
    }

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn cancel_races_completion_without_wedging() {
    let dir = tempdir::TempDir::new("cancel-race");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 2;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    let want = direct_protocol_text(&case("token_ring", 3));
    let ids: Vec<u64> = (0..6).map(|_| client.submit(&case("token_ring", 3)).unwrap()).collect();
    for &id in &ids {
        let _ = client.cancel(id).unwrap();
    }
    // Every job must reach a terminal state: either the cancel won, or
    // the job had already finished — in which case its result is intact.
    let deadline = Instant::now() + WAIT;
    for &id in &ids {
        loop {
            match client.state(id).unwrap().as_str() {
                "cancelled" => break,
                "done" => {
                    let result = client.result(id).unwrap();
                    assert_eq!(result.get("protocol").and_then(Json::as_str), Some(want.as_str()));
                    break;
                }
                state @ ("queued" | "running") => {
                    assert!(Instant::now() < deadline, "job {id} wedged in `{state}`");
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("job {id} in unexpected state `{other}`"),
            }
        }
    }
    let stats = client.stats().unwrap();
    let done = stats.get("completed").and_then(Json::as_u64).unwrap();
    let cancelled = stats.get("cancelled").and_then(Json::as_u64).unwrap();
    assert_eq!(done + cancelled, 6, "stats: {stats}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn checkpoint_shutdown_resumes_on_next_start() {
    let dir = tempdir::TempDir::new("ckpt-shutdown");
    let want = direct_protocol_text(&case("coloring", 12));

    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();
    let id = client.submit(&case("coloring", 12)).unwrap();
    poll_state(&mut client, id, "running", WAIT);
    handle.shutdown(ShutdownMode::Checkpoint);
    handle.join();

    // The interrupted job resumes from its journal on the next start and
    // replays to the same bytes as an uninterrupted run.
    let (handle, addr) = start(ServerConfig::new(&dir.path));
    let mut client = Client::connect(addr).unwrap();
    let result = client.wait(id, WAIT).unwrap();
    assert_eq!(result.get("protocol").and_then(Json::as_str), Some(want.as_str()));
    assert_eq!(result.get("resumed").and_then(Json::as_bool), Some(true));
    let stats = client.stats().unwrap();
    assert!(stats.get("resumed").and_then(Json::as_u64).unwrap() >= 1, "stats: {stats}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn drain_shutdown_finishes_queue_and_results_survive_restart() {
    let dir = tempdir::TempDir::new("drain");
    let want = direct_protocol_text(&case("matching", 3));

    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();
    let a = client.submit(&case("matching", 3)).unwrap();
    let b = client.submit(&case("matching", 3)).unwrap();
    handle.shutdown(ShutdownMode::Drain);
    handle.join();

    // Drain ran both to completion; a fresh daemon serves their results
    // from the state directory.
    let (handle, addr) = start(ServerConfig::new(&dir.path));
    let mut client = Client::connect(addr).unwrap();
    for id in [a, b] {
        let result = client.result(id).unwrap();
        assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(result.get("protocol").and_then(Json::as_str), Some(want.as_str()));
    }
    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn panicking_job_lands_in_quarantine_while_pool_keeps_serving() {
    let dir = tempdir::TempDir::new("quarantine");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 2;
    cfg.quarantine_after = 2;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    // `__crash__` panics inside the worker's catch_unwind fence on every
    // attempt; a healthy job rides along on the other worker.
    let poison = client.submit(&case("__crash__", 3)).unwrap();
    let healthy = client.submit(&case("coloring", 3)).unwrap();

    poll_state(&mut client, poison, "quarantined", WAIT);
    let result = client.wait(healthy, WAIT).unwrap();
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));

    match client.result(poison) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "quarantined"),
        other => panic!("expected a quarantined rejection, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("quarantined").and_then(Json::as_u64), Some(1), "stats: {stats}");
    assert!(stats.get("crashed").and_then(Json::as_u64).unwrap() >= 2, "stats: {stats}");
    // The job directory moved to the durable quarantine area.
    let parked = dir.path.join("quarantine").join(format!("{poison:08}"));
    assert!(parked.join("spec.json").exists(), "missing {}", parked.display());
    assert!(parked.join("quarantine.json").exists());

    let text = client.metrics().unwrap();
    assert!(text.contains("stsyn_jobs_quarantined_total 1"), "{text}");
    assert!(text.contains("stsyn_quarantined_jobs 1"), "{text}");

    // A restart keeps the job parked — quarantine is what breaks the
    // crash-on-recovery loop — and the daemon stays healthy.
    handle.shutdown(ShutdownMode::Drain);
    handle.join();
    let (handle, addr) = start(ServerConfig::new(&dir.path));
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.state(poison).unwrap(), "quarantined");
    let id = client.submit(&case("coloring", 3)).unwrap();
    assert_eq!(client.wait(id, WAIT).unwrap().get("state").and_then(Json::as_str), Some("done"));
    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn killed_worker_is_respawned_by_the_supervisor() {
    let dir = tempdir::TempDir::new("respawn");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    cfg.quarantine_after = 1;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    // `__lose_worker__` panics *outside* the fence: the worker thread
    // dies with the job.
    let killer = client.submit(&case("__lose_worker__", 3)).unwrap();
    poll_state(&mut client, killer, "quarantined", WAIT);

    // With a pool of one, this job only completes if the supervisor
    // replaced the dead worker.
    let id = client.submit(&case("coloring", 3)).unwrap();
    let result = client.wait(id, WAIT).unwrap();
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
    let stats = client.stats().unwrap();
    assert!(stats.get("worker_respawns").and_then(Json::as_u64).unwrap() >= 1, "stats: {stats}");
    assert_eq!(stats.get("live_workers").and_then(Json::as_u64), Some(1), "stats: {stats}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn connection_cap_rejects_with_typed_busy_and_retry_heals() {
    let dir = tempdir::TempDir::new("busy");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    cfg.max_conns = 1;
    let (handle, addr) = start(cfg);

    // The first client's answered request proves its handler holds the
    // only slot before the second client dials.
    let mut first = Client::connect_with(addr, RetryPolicy::none()).unwrap();
    first.stats().unwrap();
    let mut second = Client::connect_with(addr, RetryPolicy::none()).unwrap();
    match second.stats() {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "busy"),
        other => panic!("expected a busy rejection, got {other:?}"),
    }
    let stats = first.stats().unwrap();
    assert!(stats.get("conn_rejected").and_then(Json::as_u64).unwrap() >= 1, "stats: {stats}");
    let text = first.metrics().unwrap();
    assert!(text.contains("stsyn_conns_rejected_total"), "{text}");

    // Once the slot frees, a retrying client gets through on its own.
    drop(first);
    let policy = RetryPolicy {
        max_retries: 40,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        io_timeout: Some(Duration::from_secs(5)),
        seed: Some(7),
    };
    let mut third = Client::connect_with(addr, policy).unwrap();
    assert!(third.stats().is_ok());

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn idempotent_resubmission_dedups_to_one_job() {
    let dir = tempdir::TempDir::new("idem");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    let spec = case("coloring", 3);
    let a = client.submit_dedup(&spec).unwrap();
    let b = client.submit_dedup(&spec).unwrap();
    assert_eq!(a, b, "content-addressed resubmission must return the same job");
    // Dedup is keyed on content, not connection: another client joins
    // the same job.
    let mut other = Client::connect(addr).unwrap();
    assert_eq!(other.submit_dedup(&spec).unwrap(), a);
    // Plain submits are distinct logical submissions and must NOT dedup.
    let c = client.submit(&spec).unwrap();
    assert_ne!(a, c);

    assert_eq!(client.wait(a, WAIT).unwrap().get("state").and_then(Json::as_str), Some("done"));
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(2), "stats: {stats}");
    assert!(stats.get("dedup_hits").and_then(Json::as_u64).unwrap() >= 2, "stats: {stats}");

    // The idempotency map is rebuilt from spec.json on recovery, so
    // dedup keeps working across a daemon restart.
    handle.shutdown(ShutdownMode::Drain);
    handle.join();
    let (handle, addr) = start(ServerConfig::new(&dir.path));
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.submit_dedup(&spec).unwrap(), a);
    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

/// A spawned `stsyn serve` daemon that is SIGKILLed on drop.
struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    fn spawn(state_dir: &std::path::Path) -> Daemon {
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_stsyn"))
            .arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg("1")
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--print-addr")
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        let mut line = String::new();
        std::io::BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"));
        Daemon { child, addr: addr.to_string() }
    }

    fn kill(&mut self) {
        let _ = self.child.kill(); // SIGKILL on Unix — no cleanup runs
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

#[test]
fn sigkill_and_restart_resumes_to_byte_identical_result() {
    let dir = tempdir::TempDir::new("sigkill");
    let want = direct_protocol_text(&case("coloring", 12));
    let journal: PathBuf =
        dir.path.join("jobs").join(format!("{:08}", 1)).join("ckpt").join("journal.bin");

    let mut daemon = Daemon::spawn(&dir.path);
    let id = {
        let mut client = Client::connect(daemon.addr.as_str()).unwrap();
        let id = client.submit(&case("coloring", 12)).unwrap();
        // Wait for the run to start journaling, then pull the plug.
        let deadline = Instant::now() + WAIT;
        while !journal.exists() {
            assert!(Instant::now() < deadline, "journal never appeared");
            std::thread::sleep(Duration::from_millis(5));
        }
        id
    };
    daemon.kill();

    let mut daemon = Daemon::spawn(&dir.path);
    let mut client = Client::connect(daemon.addr.as_str()).unwrap();
    let result = client.wait(id, WAIT).unwrap();
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(
        result.get("protocol").and_then(Json::as_str),
        Some(want.as_str()),
        "resumed run diverged from the uninterrupted reference"
    );
    let stats = client.stats().unwrap();
    assert!(stats.get("resumed").and_then(Json::as_u64).unwrap() >= 1, "stats: {stats}");
    client.shutdown(ShutdownMode::Drain).unwrap();
    let _ = daemon.child.wait();
}
