//! Loopback integration tests of the artifact store: exact-hit answers
//! from cache, warm-started resubmissions proven byte-identical to cold
//! runs for every case study, corruption downgraded to a typed miss
//! (never a stale or wrong result), concurrent identical submissions,
//! and completed-job retention pruning gated on store publication.

use std::time::{Duration, Instant};
use stsyn_serve::{
    Client, ClientError, JobSource, Json, Server, ServerConfig, ShutdownMode, SubmitSpec,
};

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-store-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn case(name: &str, n: usize) -> SubmitSpec {
    SubmitSpec::new(JobSource::Case { name: name.into(), n, d: 0 })
}

fn start(cfg: ServerConfig) -> (stsyn_serve::ServerHandle, std::net::SocketAddr) {
    let handle = Server::start(cfg).unwrap();
    let addr = handle.addr();
    (handle, addr)
}

const WAIT: Duration = Duration::from_secs(300);

/// Submit through the raw wire (with a fresh idempotency key, so the
/// daemon's dedup map cannot answer) and return the full response — the
/// only way to observe the `store` field on a submit answer.
fn raw_submit(client: &mut Client, spec: &SubmitSpec, salt: u64) -> Json {
    let mut spec = spec.clone();
    // Fold to 53 bits: JSON numbers are doubles on the wire.
    spec.idem =
        Some((spec.fingerprint() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & ((1 << 53) - 1));
    client.request(&Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())])).unwrap()
}

/// The deterministic slice of a result: everything the synthesis
/// produces, nothing the wall clock touches (`run_ms`, `*_secs`,
/// `bdd_ticks` and `peak_live_nodes` legitimately differ between a cold
/// run and a warm-started one).
fn deterministic_subset(result: &Json) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for k in ["state", "name", "weak", "verified", "schedule", "recovery", "protocol"] {
        out.push((k.into(), result.get(k).map(|v| v.to_string()).unwrap_or_default()));
    }
    if let Some(stats) = result.get("stats") {
        for k in ["candidates", "groups_added", "max_rank", "finished_in_pass", "program_nodes"] {
            out.push((
                format!("stats.{k}"),
                stats.get(k).map(|v| v.to_string()).unwrap_or_default(),
            ));
        }
    }
    out
}

/// Poll until the job is terminal (done or failed); returns the state.
fn wait_terminal(client: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + WAIT;
    loop {
        let state = client.state(id).unwrap();
        if state == "done" || state == "failed" {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} never reached a terminal state ({state})");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn exact_resubmission_hits_the_store_and_survives_restart() {
    let dir = tempdir::TempDir::new("hit");
    let mut cfg = ServerConfig::new(&dir.path).with_store(0);
    cfg.workers = 1;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    let spec = case("coloring", 3);
    let id1 = client.submit(&spec).unwrap();
    let r1 = client.wait(id1, WAIT).unwrap();
    assert_eq!(r1.get("state").and_then(Json::as_str), Some("done"));

    // Same content, fresh idempotency key: the store answers without
    // queueing — a brand-new id, already terminal, same bytes.
    let resp = raw_submit(&mut client, &spec, 1);
    assert_eq!(resp.get("store").and_then(Json::as_str), Some("hit"), "resp: {resp}");
    let id2 = resp.get("id").and_then(Json::as_u64).unwrap();
    assert_ne!(id1, id2, "a store hit is a new logical submission");
    assert_eq!(client.state(id2).unwrap(), "done", "a hit job must be born terminal");
    let r2 = client.result(id2).unwrap();
    assert_eq!(deterministic_subset(&r1), deterministic_subset(&r2));
    assert_eq!(r2.get("store").and_then(Json::as_str), Some("hit"));

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("store_hits").and_then(Json::as_u64), Some(1), "stats: {stats}");
    assert!(stats.get("store_entries").and_then(Json::as_u64).unwrap() >= 1, "stats: {stats}");
    let ss = client.store_stats().unwrap();
    assert_eq!(ss.get("hits").and_then(Json::as_u64), Some(1), "store-stats: {ss}");
    assert!(client.metrics().unwrap().contains("stsyn_store_hits_total 1"));

    // The store and the hit job both survive a restart: the cached
    // result is still served and the index still answers.
    handle.shutdown(ShutdownMode::Drain);
    handle.join();
    let (handle, addr) = start(ServerConfig::new(&dir.path).with_store(0));
    let mut client = Client::connect(addr).unwrap();
    let r2_again = client.result(id2).unwrap();
    assert_eq!(deterministic_subset(&r2), deterministic_subset(&r2_again));
    let resp = raw_submit(&mut client, &spec, 2);
    assert_eq!(resp.get("store").and_then(Json::as_str), Some("hit"), "resp: {resp}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn warm_start_matches_cold_run_for_every_case_study() {
    let cases = ["coloring", "matching", "token_ring", "two_ring", "mis"];

    // Cold references: a store-less daemon, full budget.
    let cold_dir = tempdir::TempDir::new("cold");
    let mut cfg = ServerConfig::new(&cold_dir.path);
    cfg.workers = 1;
    let (cold, cold_addr) = start(cfg);
    let mut cold_client = Client::connect(cold_addr).unwrap();
    let cold_results: Vec<Json> = cases
        .iter()
        .map(|name| {
            let id = cold_client.submit(&case(name, 3)).unwrap();
            cold_client.wait(id, WAIT).unwrap()
        })
        .collect();
    cold.shutdown(ShutdownMode::Drain);
    cold.join();

    // Warm runs: a tiny tick budget first (its checkpoint prefix is
    // published even though the job fails), then the full-budget spec —
    // which shares a warm key but not an exact key, so it seeds from the
    // stored checkpoint instead of starting from scratch.
    let warm_dir = tempdir::TempDir::new("warm");
    let mut cfg = ServerConfig::new(&warm_dir.path).with_store(0);
    cfg.workers = 1;
    let (warm, warm_addr) = start(cfg);
    let mut client = Client::connect(warm_addr).unwrap();
    for (name, cold_result) in cases.iter().zip(&cold_results) {
        let mut capped = case(name, 3);
        capped.max_ticks = Some(500);
        let id = client.submit(&capped).unwrap();
        let state = wait_terminal(&mut client, id);
        if state == "failed" {
            match client.result(id) {
                Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "budget-exhausted"),
                other => panic!("expected budget-exhausted for {name}, got {other:?}"),
            }
        }

        let id = client.submit(&case(name, 3)).unwrap();
        let result = client.wait(id, WAIT).unwrap();
        assert_eq!(
            deterministic_subset(cold_result),
            deterministic_subset(&result),
            "warm-started {name} diverged from the cold run"
        );
        // Warm-seeding is a cache detail, not a semantic difference: the
        // result must not claim it resumed an interrupted job.
        assert_eq!(result.get("resumed").and_then(Json::as_bool), Some(false));
    }
    let ss = client.store_stats().unwrap();
    assert_eq!(
        ss.get("partial_hits").and_then(Json::as_u64),
        Some(cases.len() as u64),
        "every full-budget resubmission must warm-start: {ss}"
    );

    warm.shutdown(ShutdownMode::Drain);
    warm.join();
}

#[test]
fn corrupt_artifacts_degrade_to_a_miss_never_a_wrong_result() {
    let dir = tempdir::TempDir::new("corrupt");
    let mut cfg = ServerConfig::new(&dir.path).with_store(0);
    cfg.workers = 1;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    let spec = case("coloring", 3);
    let id = client.submit(&spec).unwrap();
    let reference = client.wait(id, WAIT).unwrap();
    handle.shutdown(ShutdownMode::Drain);
    handle.join();

    // Flip bytes in every stored artifact — result and checkpoint alike.
    let objects = dir.path.join("store").join("objects");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&objects).unwrap() {
        let obj = entry.unwrap().path();
        for file in [obj.join("result.json"), obj.join("ckpt").join("journal.bin")] {
            if file.exists() {
                let mut bytes = std::fs::read(&file).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
                std::fs::write(&file, bytes).unwrap();
                corrupted += 1;
            }
        }
    }
    assert!(corrupted >= 2, "expected a stored result and checkpoint to corrupt");

    // The daemon reopens the store, the resubmission misses (CRC check),
    // the warm seed is rejected (CRC check), and the job runs fresh to
    // the same answer. Nothing stale or corrupt ever reaches the client.
    let (handle, addr) = start(ServerConfig::new(&dir.path).with_store(0));
    let mut client = Client::connect(addr).unwrap();
    let resp = raw_submit(&mut client, &spec, 7);
    assert!(resp.get("store").is_none(), "a corrupt entry must not answer: {resp}");
    let id = resp.get("id").and_then(Json::as_u64).unwrap();
    let rerun = client.wait(id, WAIT).unwrap();
    assert_eq!(deterministic_subset(&reference), deterministic_subset(&rerun));
    let ss = client.store_stats().unwrap();
    assert!(
        ss.get("corrupt_dropped").and_then(Json::as_u64).unwrap() >= 1,
        "the corrupt entry must be detected and dropped: {ss}"
    );

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn concurrent_identical_submissions_mix_hits_and_runs_consistently() {
    let dir = tempdir::TempDir::new("concurrent");
    let mut cfg = ServerConfig::new(&dir.path).with_store(0);
    cfg.workers = 3;
    let (handle, addr) = start(cfg);

    let spec = case("matching", 3);
    let joins: Vec<_> = (0..8)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let id = client.submit(&spec).unwrap();
                let result = client.wait(id, WAIT).unwrap();
                assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
                deterministic_subset(&result)
                    .into_iter()
                    .filter(|(k, _)| k != "state")
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let subsets: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    for s in &subsets[1..] {
        assert_eq!(&subsets[0], s, "hit results and executed results must agree");
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(8), "stats: {stats}");
    let ss = client.store_stats().unwrap();
    assert!(ss.get("publishes").and_then(Json::as_u64).unwrap() >= 1, "store-stats: {ss}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn retention_prunes_published_job_dirs_and_the_dedup_map() {
    let dir = tempdir::TempDir::new("retain");
    let mut cfg = ServerConfig::new(&dir.path).with_store(0);
    cfg.workers = 1;
    cfg.retain_jobs = Some(2);
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    let specs =
        [case("coloring", 3), case("matching", 3), case("token_ring", 3), case("two_ring", 3)];
    let mut ids = Vec::new();
    for spec in &specs {
        let id = client.submit_dedup(spec).unwrap();
        client.wait(id, WAIT).unwrap();
        ids.push(id);
    }

    // Only the two newest completed job dirs survive; the older two were
    // published to the store first, so nothing observable is lost.
    for (i, &id) in ids.iter().enumerate() {
        let job_dir = dir.path.join("jobs").join(format!("{id:08}"));
        if i < 2 {
            assert!(!job_dir.exists(), "job {id} should have been pruned");
        } else {
            assert!(job_dir.exists(), "job {id} is within the retention window");
        }
    }
    let stats = client.stats().unwrap();
    assert!(stats.get("jobs_pruned").and_then(Json::as_u64).unwrap() >= 2, "stats: {stats}");

    // The dedup map forgot the pruned ids (no dangling references), and a
    // content-addressed resubmission is answered by the store instead.
    let resp = raw_submit(&mut client, &specs[0], 11);
    assert_eq!(resp.get("store").and_then(Json::as_str), Some("hit"), "resp: {resp}");
    assert_ne!(resp.get("id").and_then(Json::as_u64), Some(ids[0]));
    // An id inside the window still dedups to its original job.
    assert_eq!(client.submit_dedup(&specs[3]).unwrap(), ids[3]);

    // `store gc` over the wire: with no cap nothing is evicted.
    let gc = client.store_gc(None).unwrap();
    assert_eq!(gc.get("evicted").and_then(Json::as_u64), Some(0), "gc: {gc}");
    assert!(gc.get("entries").and_then(Json::as_u64).unwrap() >= 4, "gc: {gc}");
    // A 1-byte cap evicts everything; the stored results are gone but
    // resubmission still works — it just runs again.
    let gc = client.store_gc(Some(1)).unwrap();
    assert!(gc.get("evicted").and_then(Json::as_u64).unwrap() >= 4, "gc: {gc}");
    let resp = raw_submit(&mut client, &specs[0], 12);
    assert!(resp.get("store").is_none(), "an evicted entry must not answer: {resp}");
    let id = resp.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(client.wait(id, WAIT).unwrap().get("state").and_then(Json::as_str), Some("done"));

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}
