//! Deterministic chaos sweep: a seeded fault proxy between client and
//! daemon injects disconnects, torn NDJSON frames, slow writes and
//! stalled reads — one scripted fault per sweep point — and the suite
//! asserts the end-to-end invariants self-healing must preserve:
//!
//! * **no job lost** — every submission completes despite its fault;
//! * **no job duplicated** — retried submissions dedup onto one id, so
//!   the daemon accepts exactly one job per sweep point;
//! * **results unchanged** — every completed result is byte-identical
//!   to a fault-free single-shot run.
//!
//! The sweep is `CHAOS_SWEEP_POINTS` points (default 240); every fault
//! plan derives from `(SWEEP_SEED, point)`, so a failing point
//! reproduces exactly.

use std::time::Duration;
use stsyn_serve::{
    ChaosProxy, Client, FaultPlan, JobSource, Json, RetryPolicy, Server, ServerConfig,
    ShutdownMode, SubmitSpec,
};

mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-chaos-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

const SWEEP_SEED: u64 = 0x00C0_FFEE;
/// Longer than the daemon's io_timeout below, so a stalled read really
/// exercises the server-side reap path.
const STALL: Duration = Duration::from_millis(300);

fn sweep_points() -> u64 {
    std::env::var("CHAOS_SWEEP_POINTS").ok().and_then(|v| v.parse().ok()).unwrap_or(240)
}

#[test]
fn seeded_fault_sweep_loses_nothing_duplicates_nothing_changes_nothing() {
    let points = sweep_points();
    let dir = tempdir::TempDir::new("sweep");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 2;
    cfg.queue_capacity = 4096;
    // Short server deadline: stalled proxied connections are reaped
    // quickly instead of each pinning a handler for the whole sweep.
    cfg.io_timeout = Duration::from_millis(150);
    let handle = Server::start(cfg).unwrap();
    let upstream = handle.addr();

    let spec = SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 });
    let reference = spec.materialize().unwrap().run().unwrap().emitted_dsl;

    let mut ids: Vec<u64> = Vec::new();
    let mut fired_total: u64 = 0;
    for point in 0..points {
        let plan = FaultPlan::derive(SWEEP_SEED, point, STALL);
        let proxy = ChaosProxy::start(upstream, plan)
            .unwrap_or_else(|e| panic!("point {point}: proxy failed to start: {e}"));
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            io_timeout: Some(Duration::from_millis(500)),
            seed: Some(point),
        };
        let mut client = Client::connect_with(proxy.addr(), policy)
            .unwrap_or_else(|e| panic!("point {point} ({plan:?}): connect failed: {e}"));
        let id = client
            .submit(&spec)
            .unwrap_or_else(|e| panic!("point {point} ({plan:?}): submit failed: {e}"));
        let result = client
            .wait(id, Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("point {point} ({plan:?}): job {id} lost: {e}"));
        assert_eq!(
            result.get("protocol").and_then(Json::as_str),
            Some(reference.as_str()),
            "point {point} ({plan:?}): job {id} diverged from the fault-free reference"
        );
        ids.push(id);
        fired_total += proxy.fired();
        proxy.stop();
    }

    // No duplicate executions: retried submissions deduped onto their
    // original id, so ids are unique and the daemon admitted exactly one
    // job per point.
    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len() as u64, points, "duplicate job ids in {ids:?}");

    let mut client = Client::connect(upstream).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(points), "stats: {stats}");
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(points), "stats: {stats}");

    // The sweep would prove nothing if the faults never fired: most
    // offsets land inside a submit request or its response.
    assert!(fired_total >= points / 4, "only {fired_total}/{points} fault points actually fired");

    // Durable results on disk are the reference bytes too.
    for &id in &ids {
        let path = dir.path.join("jobs").join(format!("{id:08}")).join("result.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("job {id}: unreadable {}: {e}", path.display()));
        let stored = Json::parse(&text).unwrap();
        assert_eq!(
            stored.get("protocol").and_then(Json::as_str),
            Some(reference.as_str()),
            "job {id}: stored result diverged"
        );
    }

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}
