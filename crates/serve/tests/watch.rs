//! Integration tests of the `watch` streaming verb: live rank-layer
//! frames end to end, heartbeats outliving `--io-timeout`, re-attach
//! through the router across a shard SIGKILL, and a seeded chaos sweep
//! cutting watch streams mid-flight without disturbing the job.

use std::time::{Duration, Instant};
use stsyn_serve::{
    ChaosProxy, Client, FaultPlan, JobSource, Json, RetryPolicy, Server, ServerConfig,
    ShutdownMode, SubmitSpec, WatchFrame,
};

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-watch-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

const WAIT: Duration = Duration::from_secs(300);

fn case(name: &str, n: usize) -> SubmitSpec {
    SubmitSpec::new(JobSource::Case { name: name.into(), n, d: 0 })
}

fn start(cfg: ServerConfig) -> (stsyn_serve::ServerHandle, std::net::SocketAddr) {
    let handle = Server::start(cfg).unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn poll_state(client: &mut Client, id: u64, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = client.state(id).unwrap();
        if state == want {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{state}` waiting for `{want}`");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Everything a test wants to know about one watch stream, gathered by
/// the `on_frame` callback.
#[derive(Default)]
struct Collected {
    /// `rank` field of every `rank.layer` progress frame, in order.
    ranks: Vec<u64>,
    /// `max_rank` from the `synthesis.stats` progress frame, if seen.
    max_rank: Option<u64>,
    /// Names of all progress-frame events, in order.
    names: Vec<String>,
    /// Heartbeat states, in order.
    heartbeats: Vec<String>,
    /// Frames lost to gap markers.
    gaps: u64,
    /// Did the terminal status frame arrive, and was it the last frame?
    terminal_last: bool,
}

impl Collected {
    fn sink(&mut self) -> impl FnMut(&WatchFrame) + '_ {
        |frame| {
            self.terminal_last = false;
            match frame {
                WatchFrame::Progress { event, .. } => {
                    let name = event.get("name").and_then(Json::as_str).unwrap_or("").to_string();
                    if name == "rank.layer" {
                        if let Some(rank) = event.get("rank").and_then(Json::as_u64) {
                            self.ranks.push(rank);
                        }
                    }
                    if name == "synthesis.stats" {
                        self.max_rank = event.get("max_rank").and_then(Json::as_u64);
                    }
                    self.names.push(name);
                }
                WatchFrame::Gap { missed } => self.gaps += missed,
                WatchFrame::Heartbeat { state } => self.heartbeats.push(state.clone()),
                WatchFrame::Status(_) => self.terminal_last = true,
            }
        }
    }
}

/// The tentpole acceptance path: a watch attached while the job is still
/// queued streams one `rank.layer` frame per rank layer of a token-ring
/// synthesis, the stream ends with the terminal status frame, and the
/// daemon's `metrics` expose the latency histograms the run fed.
#[test]
fn watch_streams_every_rank_layer_then_terminal_status() {
    let dir = tempdir::TempDir::new("layers");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    let (handle, addr) = start(cfg);
    let mut client = Client::connect(addr).unwrap();

    // A long job pins the single worker so the watch attaches while the
    // token-ring job is still queued: the tracer tee only emits detail
    // while a subscriber is on the bus, so subscribing before the run
    // starts is what guarantees every rank layer is seen live.
    let _blocker = client.submit(&case("coloring", 12)).unwrap();
    let id = client.submit(&case("token_ring", 4)).unwrap();

    let mut got = Collected::default();
    let status = client.watch(id, got.sink()).unwrap();

    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"), "status: {status}");
    assert!(got.terminal_last, "the status frame must be the last frame of the stream");
    assert_eq!(got.gaps, 0, "a live watch of a small job must not drop frames");

    // One frame per rank layer: the observed ranks cover 1..=max_rank
    // exactly, with max_rank read from the synthesis.stats frame of the
    // same stream.
    let max_rank = got.max_rank.expect("stream carried no synthesis.stats frame");
    assert!(max_rank >= 1, "token_ring(4) must rank at least one layer");
    let seen: std::collections::HashSet<u64> = got.ranks.iter().copied().collect();
    let missing: Vec<u64> = (1..=max_rank).filter(|r| !seen.contains(r)).collect();
    assert!(
        missing.is_empty(),
        "rank.layer frames missing layers {missing:?} of 1..={max_rank} (saw {:?})",
        got.ranks
    );

    // Lifecycle frames replayed from the bus ring bracket the detail.
    assert!(
        got.names.iter().any(|n| n == "job.state"),
        "expected job.state lifecycle frames, saw {:?}",
        got.names
    );

    // The finished jobs fed the latency histograms surfaced by `stats`
    // and the Prometheus `metrics` exposition.
    let done = client.wait(id, WAIT).unwrap();
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let stats = client.stats().unwrap();
    let latency = stats.get("latency").expect("stats lacks the latency histograms");
    for key in ["queue_wait", "run", "submit_to_result"] {
        let h = latency.get(key).unwrap_or_else(|| panic!("latency lacks `{key}`: {latency}"));
        assert!(h.get("count").and_then(Json::as_u64).unwrap() >= 1, "{key}: {h}");
    }
    let text = client.metrics().unwrap();
    for series in [
        "stsyn_queue_wait_seconds_bucket",
        "stsyn_run_seconds_bucket",
        "stsyn_submit_to_result_seconds_bucket",
        "stsyn_run_seconds_sum",
        "stsyn_run_seconds_count",
    ] {
        assert!(text.contains(series), "metrics missing `{series}`:\n{text}");
    }
    assert!(text.contains("# TYPE stsyn_run_seconds histogram"), "{text}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

/// A watch with *nothing to say* — the job is parked in the queue behind
/// a long blocker — must survive well past the socket deadline on
/// heartbeats alone. The client uses a no-retry policy with a read
/// timeout shorter than the blocker's runtime, so if heartbeats stopped
/// the watch would fail instead of completing.
#[test]
fn heartbeats_keep_a_quiet_watch_alive_past_io_timeout() {
    let dir = tempdir::TempDir::new("heartbeat");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    // Tight daemon deadline: heartbeats fire every ~100 ms.
    cfg.io_timeout = Duration::from_millis(200);
    let (handle, addr) = start(cfg);

    let policy = RetryPolicy {
        max_retries: 0,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        io_timeout: Some(Duration::from_millis(500)),
        seed: Some(11),
    };
    let mut client = Client::connect_with(addr, policy).unwrap();
    let blocker = client.submit(&case("coloring", 12)).unwrap();
    poll_state(&mut client, blocker, "running", WAIT);
    let id = client.submit(&case("token_ring", 3)).unwrap();

    let mut got = Collected::default();
    let status = client.watch(id, got.sink()).unwrap();

    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"), "status: {status}");
    assert!(got.terminal_last);
    assert!(
        got.heartbeats.iter().filter(|s| s.as_str() == "queued").count() >= 2,
        "expected queued-state heartbeats while parked behind the blocker, saw {:?}",
        got.heartbeats
    );

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

/// One real `stsyn serve` child process (SIGKILLed on drop).
struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    fn spawn(state_dir: &std::path::Path) -> Daemon {
        use std::io::BufRead;
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_stsyn"))
            .arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg("1")
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--print-addr")
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        let mut line = String::new();
        std::io::BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"));
        Daemon { child, addr: addr.to_string() }
    }

    fn kill(&mut self) {
        let _ = self.child.kill(); // SIGKILL on Unix — no cleanup runs
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// SIGKILL the shard that owns a watched job: the router re-attaches the
/// stream to the failover shard and still delivers the terminal status
/// frame — under the router's identity — without the client redialing.
/// The fleet metrics then expose the merged latency histograms.
#[test]
fn watch_reattaches_through_router_after_shard_sigkill() {
    let dir = tempdir::TempDir::new("failover");
    let spec = case("coloring", 14);
    let reference = spec.materialize().unwrap().run().unwrap().emitted_dsl;

    let mut daemons: Vec<Daemon> =
        (0..2).map(|i| Daemon::spawn(&dir.path.join(format!("shard{i}")))).collect();
    let mut cfg = stsyn_serve::RouterConfig::new(daemons.iter().map(|d| d.addr.clone()).collect());
    cfg.probe_interval = Duration::from_millis(50);
    cfg.probe_timeout = Duration::from_millis(250);
    cfg.down_after = 2;
    cfg.shard_io_timeout = Duration::from_secs(2);
    let router = stsyn_serve::Router::start(cfg).unwrap();

    let policy = RetryPolicy {
        max_retries: 10,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(1),
        io_timeout: Some(Duration::from_secs(30)),
        seed: Some(23),
    };
    let mut client = Client::connect_with(router.addr(), policy.clone()).unwrap();
    let resp =
        client.request(&Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())])).unwrap();
    let id = resp.get("id").and_then(Json::as_u64).unwrap();
    let victim = resp.get("shard").and_then(Json::as_u64).unwrap() as usize;
    poll_state(&mut client, id, "running", WAIT);

    // Watch from a second connection so killing the shard interrupts a
    // stream that is genuinely mid-flight.
    let router_addr = router.addr();
    let watcher = std::thread::spawn(move || {
        let mut client = Client::connect_with(router_addr, policy).unwrap();
        let mut got = Collected::default();
        let status = client.watch(id, got.sink());
        (status, got)
    });
    // Give the watcher a moment to attach, then pull the shard out.
    std::thread::sleep(Duration::from_millis(150));
    daemons[victim].kill();

    let (status, got) = watcher.join().unwrap();
    let status = status.expect("watch lost across the shard failover");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"), "status: {status}");
    assert_eq!(
        status.get("id").and_then(Json::as_u64),
        Some(id),
        "terminal frame must carry the router's job id, not the shard's"
    );
    assert!(status.get("shard").is_some(), "terminal frame lacks the owning shard: {status}");
    assert!(got.terminal_last, "the stream must end with the terminal status frame");

    // The job itself is intact: byte-identical to the single-shot run,
    // and the router recorded the failover.
    let result = client.wait(id, WAIT).unwrap();
    assert_eq!(result.get("protocol").and_then(Json::as_str), Some(reference.as_str()));
    let fs = client.fleet_stats().unwrap();
    let failovers = fs.get("router").and_then(|r| r.get("failovers")).and_then(Json::as_u64);
    assert!(failovers.unwrap() >= 1, "router never failed the job over: {fs}");

    // Fleet metrics aggregate the shards' latency histograms.
    let text = client.fleet_metrics().unwrap();
    for series in [
        "stsyn_fleet_queue_wait_seconds_bucket",
        "stsyn_fleet_run_seconds_bucket",
        "stsyn_fleet_submit_to_result_seconds_bucket",
    ] {
        assert!(text.contains(series), "fleet metrics missing `{series}`:\n{text}");
    }

    router.shutdown();
    router.join();
    for d in &mut daemons {
        d.kill();
    }
}

fn watch_sweep_points() -> u64 {
    std::env::var("WATCH_SWEEP_POINTS").ok().and_then(|v| v.parse().ok()).unwrap_or(6)
}

/// Seeded chaos sweep over watch streams: each point routes a fresh
/// watch through a fault proxy that cuts, tears, stalls or slow-walks
/// the stream mid-flight. The client resumes from its cursor; every
/// watched job still completes exactly once with reference bytes.
#[test]
fn chaos_cut_watch_streams_resume_and_leave_jobs_untouched() {
    let points = watch_sweep_points();
    let dir = tempdir::TempDir::new("chaos");
    let mut cfg = ServerConfig::new(&dir.path);
    cfg.workers = 1;
    // Short deadline: severed watch connections are reaped quickly and
    // heartbeats (deadline/2) outpace the client's per-read timeout.
    cfg.io_timeout = Duration::from_millis(250);
    let handle = Server::start(cfg).unwrap();
    let upstream = handle.addr();

    let spec = case("coloring", 10);
    let reference = spec.materialize().unwrap().run().unwrap().emitted_dsl;

    let mut ids = Vec::new();
    let mut fired_total: u64 = 0;
    for point in 0..points {
        let plan = FaultPlan::derive(0x57A7C4, point, Duration::from_millis(300));
        let proxy = ChaosProxy::start(upstream, plan)
            .unwrap_or_else(|e| panic!("point {point}: proxy failed to start: {e}"));
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            io_timeout: Some(Duration::from_millis(800)),
            seed: Some(point),
        };
        let mut client = Client::connect_with(proxy.addr(), policy)
            .unwrap_or_else(|e| panic!("point {point} ({plan:?}): connect failed: {e}"));
        let id = client
            .submit(&spec)
            .unwrap_or_else(|e| panic!("point {point} ({plan:?}): submit failed: {e}"));
        let mut got = Collected::default();
        let status = client
            .watch(id, got.sink())
            .unwrap_or_else(|e| panic!("point {point} ({plan:?}): watch of job {id} lost: {e}"));
        assert_eq!(
            status.get("state").and_then(Json::as_str),
            Some("done"),
            "point {point} ({plan:?}): job {id} did not complete: {status}"
        );
        assert!(got.terminal_last, "point {point} ({plan:?}): stream did not end on status");
        ids.push(id);
        fired_total += proxy.fired();
        proxy.stop();
    }

    // Each point was a distinct logical submission; faults must not have
    // duplicated (or lost) any of them, and the watched jobs' results
    // are byte-identical to the fault-free reference.
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len() as u64, points, "duplicate job ids in {ids:?}");
    let mut direct = Client::connect(upstream).unwrap();
    for &id in &ids {
        let result = direct.result(id).unwrap();
        assert_eq!(
            result.get("protocol").and_then(Json::as_str),
            Some(reference.as_str()),
            "job {id}: result diverged after its watch was cut"
        );
    }
    let stats = direct.stats().unwrap();
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(points), "stats: {stats}");
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(points), "stats: {stats}");
    // The sweep proves nothing if the faults never landed mid-stream.
    assert!(fired_total >= points / 3, "only {fired_total}/{points} fault points fired");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}
