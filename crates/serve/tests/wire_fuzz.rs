//! Fuzz-style table test for the NDJSON wire layer: malformed frames —
//! truncated, oversized, interleaved, non-JSON, non-UTF-8 — must each
//! produce a **typed** error response (or a clean connection drop where
//! the framing is unrecoverable), never a panic, and must never wedge
//! the daemon for the next well-formed client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;
use stsyn_serve::{Client, Json, Server, ServerConfig, ShutdownMode};

mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-fuzz-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn raw_conn(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

/// Read one NDJSON response line, tolerating a connection the server
/// already dropped (returns `None`).
fn read_response(stream: &TcpStream) -> Option<Json> {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(Json::parse(line.trim_end()).expect("response must be valid JSON")),
        Err(_) => None,
    }
}

fn assert_typed_error(resp: &Json, table_entry: &str) {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{table_entry}: {resp}");
    let code = resp.get("code").and_then(Json::as_str).unwrap_or_default();
    assert_eq!(code, "bad-request", "{table_entry}: {resp}");
    assert!(
        resp.get("error").and_then(Json::as_str).is_some_and(|m| !m.is_empty()),
        "{table_entry}: error message missing in {resp}"
    );
}

/// The daemon must still serve a fresh well-formed client after every
/// hostile frame — the real invariant the table is sweeping.
fn assert_daemon_alive(addr: SocketAddr, table_entry: &str) {
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("ok").and_then(Json::as_bool),
        Some(true),
        "{table_entry}: daemon unhealthy after hostile frame"
    );
}

#[test]
fn malformed_frames_get_typed_errors_and_never_wedge_the_daemon() {
    let dir = tempdir::TempDir::new("table");
    let handle = Server::start(ServerConfig::new(&dir.path)).unwrap();
    let addr = handle.addr();

    // Each entry: a hostile byte sequence and whether the server keeps
    // the connection open afterwards (parse errors are recoverable; a
    // broken framing layer is answered once, then dropped).
    let table: &[(&str, &[u8], bool)] = &[
        ("plain garbage text", b"this is not json\n", true),
        ("non-object JSON scalar", b"42\n", true),
        ("JSON array instead of object", b"[1,2,3]\n", true),
        ("missing op field", b"{\"job\":{}}\n", true),
        ("unknown op", b"{\"op\":\"explode\"}\n", true),
        ("two objects interleaved in one frame", b"{\"op\":\"stats\"}{\"op\":\"stats\"}\n", true),
        ("unterminated JSON object", b"{\"op\":\"stats\"\n", true),
        ("non-UTF-8 bytes", b"{\"op\":\xff\xfe\"stats\"}\n", false),
    ];

    for &(name, bytes, conn_survives) in table {
        let mut stream = raw_conn(addr);
        stream.write_all(bytes).unwrap();
        stream.flush().unwrap();
        let resp = read_response(&stream)
            .unwrap_or_else(|| panic!("{name}: expected a typed error response, got EOF"));
        assert_typed_error(&resp, name);
        if conn_survives {
            // The same connection must recover and answer a valid request.
            stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
            let resp = read_response(&stream)
                .unwrap_or_else(|| panic!("{name}: connection died after recoverable error"));
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{name}: {resp}");
        } else {
            // Unrecoverable framing: after the one typed answer the
            // server hangs up.
            stream.write_all(b"{\"op\":\"stats\"}\n").ok();
            let mut rest = Vec::new();
            let _ = stream.try_clone().unwrap().take(4096).read_to_end(&mut rest);
            assert!(
                rest.is_empty(),
                "{name}: expected the server to drop the connection, got {rest:?}"
            );
        }
        assert_daemon_alive(addr, name);
    }

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn truncated_frame_at_eof_is_rejected_not_executed() {
    let dir = tempdir::TempDir::new("torn");
    let handle = Server::start(ServerConfig::new(&dir.path)).unwrap();
    let addr = handle.addr();

    // A frame torn mid-submit with the write side closed: the server
    // sees EOF before the newline and must reject the fragment — never
    // guess at the intent of half a request.
    let mut stream = raw_conn(addr);
    stream.write_all(b"{\"op\":\"submit\",\"job\":{\"case\":\"coloring\",\"n\":3").unwrap();
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let resp = read_response(&stream).expect("torn frame should get a typed reply");
    assert_typed_error(&resp, "torn submit frame");

    // Nothing was admitted.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(0), "stats: {stats}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn oversized_frame_is_refused_without_unbounded_buffering() {
    let dir = tempdir::TempDir::new("oversize");
    let handle = Server::start(ServerConfig::new(&dir.path)).unwrap();
    let addr = handle.addr();

    // 5 MiB of 'a' with no newline: past the 4 MiB frame cap the server
    // answers with a typed error (or resets the connection while we are
    // still writing the tail — both prove it stopped buffering).
    let stream = raw_conn(addr);
    let chunk = vec![b'a'; 64 * 1024];
    let mut wrote_all = true;
    {
        let mut w = stream.try_clone().unwrap();
        for _ in 0..80 {
            if w.write_all(&chunk).is_err() {
                wrote_all = false;
                break;
            }
        }
    }
    match read_response(&stream) {
        Some(resp) => assert_typed_error(&resp, "oversized frame"),
        None => assert!(
            !wrote_all || read_response(&stream).is_none(),
            "oversized frame: server neither answered nor hung up"
        ),
    }
    assert_daemon_alive(addr, "oversized frame");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}

#[test]
fn blank_lines_are_skipped_not_answered() {
    let dir = tempdir::TempDir::new("blank");
    let handle = Server::start(ServerConfig::new(&dir.path)).unwrap();
    let addr = handle.addr();

    // Blank keep-alive lines before a real request: exactly one
    // response must come back.
    let mut stream = raw_conn(addr);
    stream.write_all(b"\n\n  \n{\"op\":\"stats\"}\n").unwrap();
    stream.flush().unwrap();
    let resp = read_response(&stream).expect("stats after blank lines should be answered");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    stream.shutdown(Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    let _ = stream.try_clone().unwrap().take(4096).read_to_end(&mut rest);
    assert!(rest.is_empty(), "blank lines produced spurious responses: {rest:?}");

    handle.shutdown(ShutdownMode::Drain);
    handle.join();
}
