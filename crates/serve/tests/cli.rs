//! End-to-end tests of the `stsyn` command-line tool, driving the real
//! binary the way a user would.

use std::path::PathBuf;
use std::process::Command;

fn stsyn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stsyn"))
}

/// A protocol file in a fresh temp dir; returns (dir, path).
fn write_protocol(name: &str, body: &str) -> (tempdir::TempDir, PathBuf) {
    let dir = tempdir::TempDir::new(name);
    let path = dir.path.join(format!("{name}.stsyn"));
    std::fs::write(&path, body).unwrap();
    (dir, path)
}

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-cli-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

const RAMP: &str = r#"
    protocol Ramp {
      var c : 0..3;
      process P0 reads c writes c { }
      invariant c == 3;
    }
"#;

#[test]
fn synthesizes_a_file_and_reports_success() {
    let (_dir, path) = write_protocol("ramp", RAMP);
    let out = stsyn().arg(&path).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verification: PASS"), "{stdout}");
    assert!(stdout.contains("recovery actions added"), "{stdout}");
    assert!(stdout.contains("statistics:"), "{stdout}");
}

#[test]
fn quiet_suppresses_statistics() {
    let (_dir, path) = write_protocol("quiet", RAMP);
    let out = stsyn().arg(&path).arg("--quiet").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("statistics:"), "{stdout}");
}

#[test]
fn weak_mode_reports_weak_stabilization() {
    let (_dir, path) = write_protocol("weak", RAMP);
    let out = stsyn().arg(&path).arg("--weak").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("weak stabilization"), "{stdout}");
    assert!(stdout.contains("verification: PASS"), "{stdout}");
}

#[test]
fn emit_dsl_writes_a_reparsable_stabilizing_protocol() {
    let (dir, path) = write_protocol("emit", RAMP);
    let out_path = dir.path.join("out.stsyn");
    let out = stsyn().arg(&path).arg("--quiet").arg("--emit-dsl").arg(&out_path).output().unwrap();
    assert!(out.status.success());
    let emitted = std::fs::read_to_string(&out_path).unwrap();
    assert!(emitted.starts_with("protocol Ramp_SS"), "{emitted}");
    // Feeding the emitted file back: already stabilizing, still passes.
    let again = stsyn().arg(&out_path).arg("--quiet").output().unwrap();
    assert!(again.status.success());
    let stdout = String::from_utf8_lossy(&again.stdout);
    assert!(stdout.contains("no recovery needed"), "{stdout}");
}

#[test]
fn parse_errors_exit_nonzero_with_location() {
    let (_dir, path) = write_protocol("bad", "protocol Bad {\n  var a @ 0..1;\n}");
    let out = stsyn().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn unclosed_invariant_fails_with_explanation() {
    let src = r#"
        protocol Escape {
          var a : 0..2;
          process P0 reads a writes a {
            when a == 0 then a := 1;
          }
          invariant a == 0;
        }
    "#;
    let (_dir, path) = write_protocol("escape", src);
    let out = stsyn().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("closed"), "{stderr}");
}

#[test]
fn explicit_schedule_is_used() {
    let (_dir, path) = write_protocol("sched", RAMP);
    let out = stsyn().arg(&path).arg("--schedule").arg("0").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(P0)"), "{stdout}");
}

#[test]
fn missing_file_fails_gracefully() {
    let out = stsyn().arg("/nonexistent/path.stsyn").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn checkpoint_dir_writes_a_journal_and_resume_succeeds() {
    let (dir, path) = write_protocol("ckpt", RAMP);
    let ckpt = dir.path.join("ckpt");
    let out =
        stsyn().arg(&path).arg("--quiet").arg("--checkpoint-dir").arg(&ckpt).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(ckpt.join("journal.bin").exists());
    // Resume over the finished journal replays to the same result.
    let again = stsyn()
        .arg(&path)
        .arg("--quiet")
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--resume")
        .output()
        .unwrap();
    assert!(again.status.success(), "stderr: {}", String::from_utf8_lossy(&again.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&again.stdout));
}

#[test]
fn fresh_checkpoint_into_populated_directory_exits_5() {
    let (dir, path) = write_protocol("ckpt5", RAMP);
    let ckpt = dir.path.join("ckpt");
    let out =
        stsyn().arg(&path).arg("--quiet").arg("--checkpoint-dir").arg(&ckpt).output().unwrap();
    assert!(out.status.success());
    // Without --resume, the populated directory is a checkpoint error.
    let again =
        stsyn().arg(&path).arg("--quiet").arg("--checkpoint-dir").arg(&ckpt).output().unwrap();
    assert_eq!(again.status.code(), Some(5), "{}", String::from_utf8_lossy(&again.stderr));
    assert!(String::from_utf8_lossy(&again.stderr).contains("checkpoint error"));
}

#[test]
fn resume_requires_checkpoint_dir() {
    let (_dir, path) = write_protocol("resume-alone", RAMP);
    let out = stsyn().arg(&path).arg("--resume").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume requires"));
}

#[test]
fn checkpointing_rejects_weak_and_parallel() {
    let (dir, path) = write_protocol("ckpt-weak", RAMP);
    let ckpt = dir.path.join("ckpt");
    for extra in ["--weak", "--parallel"] {
        let out =
            stsyn().arg(&path).arg(extra).arg("--checkpoint-dir").arg(&ckpt).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{extra}");
    }
}

#[test]
fn help_documents_checkpoint_exit_code() {
    let out = stsyn().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--checkpoint-dir"), "{stderr}");
    assert!(stderr.contains("5 checkpoint error"), "{stderr}");
}

#[test]
fn resume_over_torn_journal_warns_and_succeeds() {
    let (dir, path) = write_protocol("torn", RAMP);
    let ckpt = dir.path.join("ckpt");
    let out =
        stsyn().arg(&path).arg("--quiet").arg("--checkpoint-dir").arg(&ckpt).output().unwrap();
    assert!(out.status.success());
    // Tear the last record mid-frame; resume must fall back to the valid
    // prefix with a warning, not fail.
    let journal = ckpt.join("journal.bin");
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).unwrap();
    let again = stsyn()
        .arg(&path)
        .arg("--quiet")
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--resume")
        .output()
        .unwrap();
    assert!(again.status.success(), "stderr: {}", String::from_utf8_lossy(&again.stderr));
    let stderr = String::from_utf8_lossy(&again.stderr);
    assert!(stderr.contains("checkpoint warning"), "{stderr}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&again.stdout));
}
