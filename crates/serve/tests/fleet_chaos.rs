//! Fleet-level chaos sweep: a router over three **real** `stsyn serve`
//! processes, with one whole-shard fault injected mid-job per point —
//! `SIGKILL` of the daemon, a black-holed router→shard link (which also
//! stalls probes: connects succeed, pongs never come), or a refused
//! link. After every fault, every submitted job must still complete
//! exactly once through the router with results byte-identical to
//! single-shot runs, and the router must keep answering (typed errors,
//! never hangs).
//!
//! The sweep is `FLEET_SWEEP_POINTS` points (default 8); each point's
//! fault derives from `(FLEET_SEED, point)`, so a failing point
//! reproduces in isolation.

use std::collections::HashMap;
use std::io::BufRead;
use std::time::{Duration, Instant};
use stsyn_serve::{
    Client, JobSource, Json, LinkMode, LinkProxy, RetryPolicy, SubmitSpec, XorShift64,
};

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-fleet-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

const FLEET_SEED: u64 = 0x00F1_EE7C;
const SHARDS: usize = 3;
/// The victim workload: big enough (~1 s single-shot) that the fault
/// reliably lands while it is running.
const LONG_N: usize = 14;
const WAIT: Duration = Duration::from_secs(300);

fn sweep_points() -> u64 {
    std::env::var("FLEET_SWEEP_POINTS").ok().and_then(|v| v.parse().ok()).unwrap_or(8)
}

fn case(name: &str, n: usize) -> SubmitSpec {
    SubmitSpec::new(JobSource::Case { name: name.into(), n, d: 0 })
}

/// One real `stsyn serve` child process.
struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    fn spawn(state_dir: &std::path::Path) -> Daemon {
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_stsyn"))
            .arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg("1")
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--print-addr")
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        let mut line = String::new();
        std::io::BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"));
        Daemon { child, addr: addr.to_string() }
    }

    fn kill(&mut self) {
        let _ = self.child.kill(); // SIGKILL on Unix — no cleanup runs
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

#[derive(Debug, Clone, Copy)]
enum FleetFault {
    /// SIGKILL the victim daemon: the process is gone mid-job.
    KillDaemon,
    /// Black-hole the victim's link: connects succeed, bytes vanish —
    /// this is also the probe-stall case (pings connect, pongs never come).
    BlackHole,
    /// Refuse the victim's link: instant connection errors.
    Refuse,
}

impl FleetFault {
    fn derive(seed: u64, point: u64) -> FleetFault {
        let mut rng = XorShift64::new(seed ^ point.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 1);
        match rng.below(3) {
            0 => FleetFault::KillDaemon,
            1 => FleetFault::BlackHole,
            _ => FleetFault::Refuse,
        }
    }
}

#[test]
fn fleet_faults_never_lose_or_duplicate_jobs() {
    let points = sweep_points();
    // Single-shot references, computed once across the sweep (the specs
    // repeat every point).
    let mut reference: HashMap<u64, String> = HashMap::new();
    let mut faults_seen = [0u64; 3];

    for point in 0..points {
        let fault = FleetFault::derive(FLEET_SEED, point);
        faults_seen[match fault {
            FleetFault::KillDaemon => 0,
            FleetFault::BlackHole => 1,
            FleetFault::Refuse => 2,
        }] += 1;
        run_point(point, fault, &mut reference);
    }
    // The seeded schedule must actually exercise the fault space.
    if points >= 6 {
        assert!(
            faults_seen.iter().all(|&c| c > 0),
            "seeded sweep of {points} points never hit some fault kind: {faults_seen:?}"
        );
    }
}

fn run_point(point: u64, fault: FleetFault, reference: &mut HashMap<u64, String>) {
    let dir = tempdir::TempDir::new(&format!("pt{point}"));
    let mut daemons: Vec<Daemon> =
        (0..SHARDS).map(|i| Daemon::spawn(&dir.path.join(format!("shard{i}")))).collect();
    let links: Vec<LinkProxy> =
        daemons.iter().map(|d| LinkProxy::start(d.addr.parse().unwrap()).unwrap()).collect();

    let mut cfg =
        stsyn_serve::RouterConfig::new(links.iter().map(|l| l.addr().to_string()).collect());
    cfg.probe_interval = Duration::from_millis(50);
    cfg.probe_timeout = Duration::from_millis(250);
    cfg.down_after = 2;
    cfg.shard_io_timeout = Duration::from_secs(2);
    let router = stsyn_serve::Router::start(cfg).unwrap();

    // A patient client: the window between a shard dying and the prober
    // marking it down surfaces as transient `degraded` answers, which
    // the retry policy must ride out.
    let policy = RetryPolicy {
        max_retries: 10,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(1),
        io_timeout: Some(Duration::from_secs(30)),
        seed: Some(FLEET_SEED ^ point),
    };
    let mut client = Client::connect_with(router.addr(), policy).unwrap();

    // One long victim job plus short jobs across the case studies. Every
    // spec gets a point-scoped idempotency key so points stay independent.
    let mut specs = vec![
        case("coloring", LONG_N),
        case("coloring", 3),
        case("matching", 3),
        case("token_ring", 3),
    ];
    for (j, spec) in specs.iter_mut().enumerate() {
        spec.idem =
            Some((spec.fingerprint() ^ point.wrapping_mul(131) ^ j as u64) & ((1 << 53) - 1));
    }
    for spec in &specs {
        reference
            .entry(spec.fingerprint())
            .or_insert_with(|| spec.materialize().unwrap().run().unwrap().emitted_dsl);
    }

    let mut ids = Vec::new();
    let mut victim_shard = 0usize;
    for (j, spec) in specs.iter().enumerate() {
        let resp = client
            .request(&Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())]))
            .unwrap();
        let id = resp.get("id").and_then(Json::as_u64).unwrap();
        if j == 0 {
            victim_shard = resp.get("shard").and_then(Json::as_u64).unwrap() as usize;
        }
        ids.push(id);
    }
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "point {point}: duplicate router ids");

    // Wait until the long job is actually running on its shard, then
    // pull the rug out from under it.
    let deadline = Instant::now() + WAIT;
    loop {
        let state = client.state(ids[0]).unwrap();
        if state == "running" || state == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "point {point}: victim job stuck in `{state}`");
        std::thread::sleep(Duration::from_millis(5));
    }
    match fault {
        FleetFault::KillDaemon => daemons[victim_shard].kill(),
        FleetFault::BlackHole => links[victim_shard].set_mode(LinkMode::BlackHole),
        FleetFault::Refuse => links[victim_shard].set_mode(LinkMode::Refuse),
    }

    // Despite a whole shard dying mid-job, every job completes exactly
    // once with bytes identical to the single-shot reference.
    for (spec, &id) in specs.iter().zip(&ids) {
        let result = client.wait(id, WAIT).unwrap_or_else(|e| {
            panic!("point {point} ({fault:?}): job {id} lost after shard fault: {e}")
        });
        assert_eq!(
            result.get("state").and_then(Json::as_str),
            Some("done"),
            "point {point} ({fault:?}): job {id} did not complete"
        );
        assert_eq!(
            result.get("id").and_then(Json::as_u64),
            Some(id),
            "point {point}: response id is not the router id"
        );
        assert_eq!(
            result.get("protocol").and_then(Json::as_str),
            Some(reference[&spec.fingerprint()].as_str()),
            "point {point} ({fault:?}): result bytes diverged from the single-shot run"
        );
    }

    // The router observed the fault and kept a coherent fleet view:
    // exactly our submissions were admitted (no duplicates), and the
    // victim shard's jobs failed over.
    let fs = client.fleet_stats().unwrap();
    let router_stats = fs.get("router").unwrap().clone();
    assert_eq!(
        router_stats.get("accepted").and_then(Json::as_u64),
        Some(ids.len() as u64),
        "point {point}: router admitted a different number of jobs than were submitted"
    );
    assert_eq!(router_stats.get("dedup_hits").and_then(Json::as_u64), Some(0));
    assert!(
        router_stats.get("failovers").and_then(Json::as_u64).unwrap() >= 1,
        "point {point} ({fault:?}): the victim's jobs never failed over"
    );

    router.shutdown();
    router.join();
    for l in links {
        l.stop();
    }
    for d in &mut daemons {
        d.kill();
    }
}
