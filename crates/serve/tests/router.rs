//! Loopback integration tests of the fleet router: shard-aware
//! proxying with id rewriting, router-level idempotency, typed
//! `degraded`/`no-shards` answers with bounded latency, failover to a
//! surviving shard, and automatic re-adoption after the fault heals.
//!
//! Shards here are in-process [`Server`]s behind [`LinkProxy`]s, so a
//! "shard death" is a black-holed or refused link — the daemon process
//! keeps running but is unreachable, exactly the partition case. Real
//! SIGKILL fleet faults live in `tests/fleet_chaos.rs`.

use std::time::{Duration, Instant};
use stsyn_serve::{
    Client, ClientError, JobSource, Json, LinkMode, LinkProxy, RetryPolicy, Router, RouterConfig,
    Server, ServerConfig, ShutdownMode, SubmitSpec,
};

/// Minimal self-cleaning temp dir (no external crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "stsyn-route-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn case(name: &str, n: usize) -> SubmitSpec {
    SubmitSpec::new(JobSource::Case { name: name.into(), n, d: 0 })
}

fn direct_protocol_text(spec: &SubmitSpec) -> String {
    spec.materialize().unwrap().run().unwrap().emitted_dsl
}

/// A fleet of in-process shards, each behind a switchable link, fronted
/// by one router.
struct Fleet {
    _dir: tempdir::TempDir,
    shards: Vec<stsyn_serve::ServerHandle>,
    links: Vec<LinkProxy>,
    router: stsyn_serve::RouterHandle,
}

impl Fleet {
    /// `n` single-worker shards with fast fault detection (probe every
    /// 50 ms, two consecutive failures mark a shard down).
    fn start(tag: &str, n: usize) -> Fleet {
        Fleet::start_cfg(tag, n, false)
    }

    /// Like [`Fleet::start`], with each shard's artifact store enabled.
    fn start_with_store(tag: &str, n: usize) -> Fleet {
        Fleet::start_cfg(tag, n, true)
    }

    fn start_cfg(tag: &str, n: usize, store: bool) -> Fleet {
        let dir = tempdir::TempDir::new(tag);
        let mut shards = Vec::new();
        let mut links = Vec::new();
        for i in 0..n {
            let mut cfg = ServerConfig::new(dir.path.join(format!("shard{i}")));
            if store {
                cfg = cfg.with_store(0);
            }
            cfg.workers = 1;
            let handle = Server::start(cfg).unwrap();
            links.push(LinkProxy::start(handle.addr()).unwrap());
            shards.push(handle);
        }
        let mut cfg = RouterConfig::new(links.iter().map(|l| l.addr().to_string()).collect());
        cfg.probe_interval = Duration::from_millis(50);
        cfg.probe_timeout = Duration::from_millis(250);
        cfg.down_after = 2;
        cfg.shard_io_timeout = Duration::from_millis(500);
        let router = Router::start(cfg).unwrap();
        Fleet { _dir: dir, shards, links, router }
    }

    fn client(&self) -> Client {
        Client::connect_with(self.router.addr(), RetryPolicy::default()).unwrap()
    }

    /// Wait until the router sees the shard in the wanted health state.
    fn await_health(&self, shard: usize, want: stsyn_serve::ShardHealth, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            let got = self.router.shard_health(shard).unwrap();
            if got == want {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "shard {shard} stuck in {got:?} waiting for {want:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn stop(self) {
        self.router.shutdown();
        self.router.join();
        for l in self.links {
            l.stop();
        }
        for s in self.shards {
            s.shutdown(ShutdownMode::Drain);
            s.join();
        }
    }
}

const WAIT: Duration = Duration::from_secs(300);

#[test]
fn router_proxies_verbs_with_router_identities() {
    let fleet = Fleet::start("proxy", 2);
    let mut client = fleet.client();

    // The router pongs with its role.
    let pong = client.ping().unwrap();
    assert_eq!(pong.get("role").and_then(Json::as_str), Some("router"));
    assert_eq!(pong.get("shards").and_then(Json::as_u64), Some(2));

    // Enough submissions to hit both shards with overwhelming likelihood.
    let specs: Vec<SubmitSpec> = ["coloring", "matching", "token_ring"]
        .iter()
        .flat_map(|c| (0..2).map(|_| case(c, 3)))
        .collect();
    let mut ids = Vec::new();
    let mut shards_used = std::collections::HashSet::new();
    for spec in &specs {
        let resp = {
            let mut spec = spec.clone();
            spec.idem = Some(spec.fingerprint() ^ ids.len() as u64);
            client
                .request(&Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())]))
                .unwrap()
        };
        let id = resp.get("id").and_then(Json::as_u64).unwrap();
        shards_used.insert(resp.get("shard").and_then(Json::as_u64).unwrap());
        ids.push(id);
    }
    // Router ids are unique and dense from 1 (shard-local ids, which
    // also start at 1 per daemon, must never leak through).
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len());
    assert_eq!(shards_used.len(), 2, "6 workloads should spread across both shards");

    for (spec, &id) in specs.iter().zip(&ids) {
        let result = client.wait(id, WAIT).unwrap();
        assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
        // The top-level id is the router's, and the serving shard rides along.
        assert_eq!(result.get("id").and_then(Json::as_u64), Some(id));
        assert!(result.get("shard").and_then(Json::as_u64).is_some());
        assert_eq!(
            result.get("protocol").and_then(Json::as_str),
            Some(direct_protocol_text(spec).as_str()),
            "routed result diverged from the single-shot run"
        );
    }

    // Server-side wait: one blocking verb instead of client polling.
    let resp = client
        .request(&Json::obj(vec![
            ("op", "wait".into()),
            ("id", ids[0].into()),
            ("timeout_secs", 60u64.into()),
        ]))
        .unwrap();
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(ids[0]));

    // Unknown ids answer typed, not hang.
    let err = client.status(999_999).unwrap_err();
    assert_eq!(err.code(), Some("unknown-job"));

    // fleet-stats: both shards up, with their own stats inline.
    let fs = client.fleet_stats().unwrap();
    let shards = match fs.get("shards") {
        Some(Json::Arr(v)) => v.clone(),
        other => panic!("fleet-stats lacks a shards array: {other:?}"),
    };
    assert_eq!(shards.len(), 2);
    for s in &shards {
        assert_eq!(s.get("health").and_then(Json::as_str), Some("up"));
        assert!(s.get("stats").is_some(), "an up shard should report stats inline");
    }
    let router_accepted =
        fs.get("router").and_then(|r| r.get("accepted")).and_then(Json::as_u64).unwrap();
    assert_eq!(router_accepted, ids.len() as u64);

    // fleet-metrics aggregates shard counters into fleet series.
    let text = client.fleet_metrics().unwrap();
    assert!(text.contains("stsyn_fleet_shards_up 2"));
    assert!(text.contains(&format!("stsyn_route_accepted_total {}", ids.len())));
    assert!(text.contains(&format!("stsyn_fleet_jobs_completed_total {}", ids.len())));

    fleet.stop();
}

#[test]
fn router_dedups_idempotent_submissions() {
    let fleet = Fleet::start("dedup", 2);
    let mut a = fleet.client();
    let mut b = fleet.client();

    let spec = case("coloring", 3);
    let id_a = a.submit_dedup(&spec).unwrap();
    // A different client, same content-addressed key: same router id,
    // without a second shard submission.
    let id_b = b.submit_dedup(&spec).unwrap();
    assert_eq!(id_a, id_b);
    let result = a.wait(id_a, WAIT).unwrap();
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));

    let fs = a.fleet_stats().unwrap();
    let router = fs.get("router").unwrap().clone();
    assert_eq!(router.get("accepted").and_then(Json::as_u64), Some(1));
    assert_eq!(router.get("dedup_hits").and_then(Json::as_u64), Some(1));

    fleet.stop();
}

#[test]
fn router_fans_out_store_verbs_and_aggregates_store_metrics() {
    let fleet = Fleet::start_with_store("storestats", 2);
    let mut client = fleet.client();

    // One completed job on some shard publishes one store entry.
    let id = client.submit(&case("coloring", 3)).unwrap();
    let result = client.wait(id, WAIT).unwrap();
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));

    // store-stats fans out to every live shard and sums the counters.
    let ss = client.store_stats().unwrap();
    assert_eq!(ss.get("role").and_then(Json::as_str), Some("router"), "store-stats: {ss}");
    assert_eq!(ss.get("shards_reporting").and_then(Json::as_u64), Some(2), "store-stats: {ss}");
    assert_eq!(ss.get("entries").and_then(Json::as_u64), Some(1), "store-stats: {ss}");
    assert!(ss.get("bytes").and_then(Json::as_u64).unwrap() > 0, "store-stats: {ss}");
    let shards = match ss.get("shards") {
        Some(Json::Arr(v)) => v.clone(),
        other => panic!("store-stats lacks a shards array: {other:?}"),
    };
    assert_eq!(shards.len(), 2);
    assert!(shards.iter().all(|s| s.get("response").is_some()));

    // store-gc with no cap is a fleet-wide no-op that still reports.
    let gc = client.store_gc(None).unwrap();
    assert_eq!(gc.get("role").and_then(Json::as_str), Some("router"), "store-gc: {gc}");
    assert_eq!(gc.get("evicted").and_then(Json::as_u64), Some(0), "store-gc: {gc}");
    assert_eq!(gc.get("entries").and_then(Json::as_u64), Some(1), "store-gc: {gc}");

    // The fleet exposition carries the aggregated store series.
    let text = client.fleet_metrics().unwrap();
    assert!(text.contains("stsyn_fleet_store_entries 1"), "{text}");
    assert!(text.contains("stsyn_fleet_store_hits_total"), "{text}");
    assert!(text.contains("stsyn_fleet_store_misses_total"), "{text}");

    fleet.stop();
}

#[test]
fn router_surfaces_shard_store_hits() {
    // One shard, so the resubmission is guaranteed to land where the
    // artifact was published.
    let fleet = Fleet::start_with_store("storehit", 1);
    let mut client = fleet.client();

    let spec = case("matching", 3);
    let id = client.submit(&spec).unwrap();
    let first = client.wait(id, WAIT).unwrap();
    assert_eq!(first.get("state").and_then(Json::as_str), Some("done"));

    // Fresh idempotency key: the shard answers from its store and the
    // router passes the marker through with its own id.
    let resp = {
        let mut s = spec.clone();
        s.idem = Some(s.fingerprint() ^ 1);
        client.request(&Json::obj(vec![("op", "submit".into()), ("job", s.to_json())])).unwrap()
    };
    assert_eq!(resp.get("store").and_then(Json::as_str), Some("hit"), "resp: {resp}");
    let hit_id = resp.get("id").and_then(Json::as_u64).unwrap();
    assert_ne!(hit_id, id);
    let cached = client.wait(hit_id, WAIT).unwrap();
    assert_eq!(
        cached.get("protocol").and_then(Json::as_str),
        first.get("protocol").and_then(Json::as_str)
    );

    fleet.stop();
}

#[test]
fn dead_fleet_answers_no_shards_typed_and_fast() {
    let fleet = Fleet::start("noshards", 2);
    for l in &fleet.links {
        l.set_mode(LinkMode::Refuse);
    }
    fleet.await_health(0, stsyn_serve::ShardHealth::Down, Duration::from_secs(10));
    fleet.await_health(1, stsyn_serve::ShardHealth::Down, Duration::from_secs(10));

    // Fail-fast policy: the typed answer must come straight through.
    let mut client = Client::connect_with(fleet.router.addr(), RetryPolicy::none()).unwrap();
    let started = Instant::now();
    let err = client.submit(&case("coloring", 3)).unwrap_err();
    match err {
        ClientError::Rejected { ref code, .. } => assert_eq!(code, "no-shards"),
        other => panic!("expected a typed no-shards rejection, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a dead fleet must answer typed errors promptly, not hang"
    );

    fleet.stop();
}

#[test]
fn failover_completes_jobs_and_heals() {
    let fleet = Fleet::start("failover", 2);
    let mut client = fleet.client();

    // Submit via raw request to learn the home shard.
    let spec = {
        let mut s = case("coloring", 3);
        s.idem = Some(s.fingerprint());
        s
    };
    let want = direct_protocol_text(&spec);
    let resp =
        client.request(&Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())])).unwrap();
    let id = resp.get("id").and_then(Json::as_u64).unwrap();
    let home = resp.get("shard").and_then(Json::as_u64).unwrap() as usize;

    // Partition the home shard away mid-flight. The daemon still runs —
    // the router just can't reach it, the worst case for duplicates.
    fleet.links[home].set_mode(LinkMode::Refuse);
    fleet.await_health(home, stsyn_serve::ShardHealth::Down, Duration::from_secs(10));

    // The pending lookup fails over: same spec, same idempotency key,
    // surviving shard — and still one result, byte-identical.
    let result = client.wait(id, WAIT).unwrap();
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(result.get("id").and_then(Json::as_u64), Some(id));
    let survivor = result.get("shard").and_then(Json::as_u64).unwrap() as usize;
    assert_ne!(survivor, home, "the result must come from a surviving shard");
    assert_eq!(result.get("protocol").and_then(Json::as_str), Some(want.as_str()));

    // New submissions keep flowing while the shard is down, and the ring
    // walk never hands one to it.
    let id2 = client.submit(&case("matching", 3)).unwrap();
    let r2 = client.wait(id2, WAIT).unwrap();
    assert_eq!(r2.get("state").and_then(Json::as_str), Some("done"));
    assert_ne!(r2.get("shard").and_then(Json::as_u64), Some(home as u64));

    // Heal the link: the prober re-adopts the shard automatically.
    fleet.links[home].set_mode(LinkMode::Forward);
    fleet.await_health(home, stsyn_serve::ShardHealth::Up, Duration::from_secs(10));
    let fs = client.fleet_stats().unwrap();
    let router = fs.get("router").unwrap().clone();
    assert!(router.get("failovers").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(router.get("shards_down").and_then(Json::as_u64), Some(0));

    fleet.stop();
}

#[test]
fn lookup_with_whole_fleet_down_answers_degraded() {
    let fleet = Fleet::start("degraded", 1);
    let mut client = fleet.client();
    let id = client.submit(&case("coloring", 3)).unwrap();
    let result = client.wait(id, WAIT).unwrap();
    assert_eq!(result.get("state").and_then(Json::as_str), Some("done"));

    fleet.links[0].set_mode(LinkMode::Refuse);
    fleet.await_health(0, stsyn_serve::ShardHealth::Down, Duration::from_secs(10));

    // The only shard is down and there is nowhere to fail over: both the
    // lookup and the cancel answer typed `degraded`, promptly.
    let mut fast = Client::connect_with(fleet.router.addr(), RetryPolicy::none()).unwrap();
    let started = Instant::now();
    assert_eq!(fast.status(id).unwrap_err().code(), Some("degraded"));
    assert_eq!(fast.cancel(id).unwrap_err().code(), Some("degraded"));
    assert!(started.elapsed() < Duration::from_secs(5), "degraded answers must not hang");

    fleet.stop();
}
