//! The synthesis job daemon: listener, worker pool, job registry and
//! persistent state directory.
//!
//! ## Lifecycle of a job
//!
//! 1. **submit** — the spec is validated (DSL parsed, case bounds and
//!    schedule checked) *synchronously*, persisted to
//!    `state/jobs/<id>/spec.json`, registered, and pushed into the bounded
//!    priority queue. A full queue rejects the submission with a distinct
//!    `queue-full` error — backpressure, never unbounded memory.
//! 2. **run** — a worker claims the job, attaches its cancel flag (plus
//!    the server-wide checkpoint-shutdown flag) to the job's [`Budget`],
//!    and runs it through [`stsyn_core::job::JobSpec::run`]. Strong jobs
//!    checkpoint into `state/jobs/<id>/ckpt/`, so a killed daemon resumes
//!    them on restart.
//! 3. **finish** — the result (success or failure) is written atomically
//!    to `result.json`; a user cancellation leaves a `cancelled` marker.
//!    Either file makes the job terminal across restarts.
//!
//! ## Restart recovery
//!
//! On startup every `state/jobs/*` directory is reloaded: terminal jobs
//! (result or cancel marker present) come back queryable; everything else
//! is re-enqueued — with `resume` semantics when a checkpoint journal
//! exists, which replays the killed run's committed work and produces a
//! result byte-identical to an uninterrupted run (PR 2's guarantee).
//!
//! ## Shutdown
//!
//! * **drain** — stop admitting, finish queued and running jobs, exit.
//! * **checkpoint** — stop admitting, discard the in-memory queue (the
//!   jobs stay on disk), raise the shared cancel flag so running jobs cut
//!   a final checkpoint, exit. Both leave the state directory ready for
//!   the next daemon.

use crate::json::Json;
use crate::queue::{PriorityQueue, PushError};
use crate::wire::{SubmitSpec, MAX_REQUEST_BYTES};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stsyn_core::job::{JobCheckpoint, JobError, JobMode};
use stsyn_core::SynthesisError;
use stsyn_obs::{MetricsText, Tracer};
use stsyn_symbolic::Resource;

/// File names inside a job directory.
const SPEC_FILE: &str = "spec.json";
const RESULT_FILE: &str = "result.json";
const CANCEL_MARKER: &str = "cancelled";
const CKPT_DIR: &str = "ckpt";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each runs one synthesis job at a time).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Persistent state directory (created if missing).
    pub state_dir: PathBuf,
    /// Tracer for daemon diagnostics and per-job spans. Defaults to
    /// NDJSON warnings on stderr; `stsyn serve --trace` swaps in a file
    /// sink at the requested level.
    pub tracer: Tracer,
}

impl ServerConfig {
    /// Loopback defaults with the given state directory.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            state_dir: state_dir.into(),
            tracer: Tracer::to_stderr(stsyn_obs::TraceLevel::Warn),
        }
    }
}

/// How to stop the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Finish queued and running jobs, then exit.
    Drain,
    /// Checkpoint running jobs and exit; queued jobs wait on disk.
    Checkpoint,
}

/// Service counters (per daemon instance; job *state* is persistent,
/// counters are not).
#[derive(Debug, Default)]
pub struct Counters {
    /// Submissions admitted to the queue.
    pub accepted: AtomicU64,
    /// Submissions rejected by backpressure (`queue-full`).
    pub rejected: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs that failed (synthesis, input or budget failure).
    pub failed: AtomicU64,
    /// Jobs cancelled by a client.
    pub cancelled: AtomicU64,
    /// In-flight jobs re-enqueued from a checkpoint journal at startup.
    pub resumed: AtomicU64,
    /// Largest per-job peak live BDD node count seen so far.
    pub peak_nodes_max: AtomicU64,
    /// Total milliseconds completed claims spent queued (wait time).
    pub queue_wait_ms_total: AtomicU64,
    /// Number of claims contributing to `queue_wait_ms_total`.
    pub queue_waited: AtomicU64,
    /// Total milliseconds workers spent running jobs (busy time).
    pub run_ms_total: AtomicU64,
}

#[derive(Debug, Clone, PartialEq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
    /// Cut by a checkpoint shutdown; will resume on the next start.
    Interrupted,
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Interrupted => "interrupted",
        }
    }
}

struct JobEntry {
    spec: SubmitSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    user_cancelled: bool,
    queued_at: Instant,
    queue_ms: Option<u64>,
    run_ms: Option<u64>,
    resumed: bool,
    /// Terminal payload (the stored `result.json` value) for Done/Failed.
    result: Option<Json>,
}

struct Shared {
    cfg: ServerConfig,
    queue: PriorityQueue<u64>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    next_id: AtomicU64,
    counters: Counters,
    busy: AtomicUsize,
    live_workers: AtomicUsize,
    stop: AtomicBool,
    shutdown_cancel: Arc<AtomicBool>,
    started: Instant,
}

impl Shared {
    fn job_dir(&self, id: u64) -> PathBuf {
        self.cfg.state_dir.join("jobs").join(format!("{id:08}"))
    }

    fn begin_shutdown(&self, mode: ShutdownMode) {
        self.stop.store(true, Ordering::SeqCst);
        match mode {
            ShutdownMode::Drain => self.queue.close(),
            ShutdownMode::Checkpoint => {
                let _ = self.queue.close_and_clear();
                self.shutdown_cancel.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiate a shutdown (same path as the wire `shutdown` op).
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.shared.begin_shutdown(mode);
    }

    /// Wait for workers and the acceptor to exit.
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.acceptor.join();
    }
}

/// The job service.
pub struct Server;

impl Server {
    /// Start the daemon: recover persisted jobs, bind the listener, and
    /// spawn the worker pool and acceptor.
    pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
        let workers = cfg.workers.max(1);
        let queue_capacity = cfg.queue_capacity.max(1);
        std::fs::create_dir_all(cfg.state_dir.join("jobs"))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            queue: PriorityQueue::new(queue_capacity),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            busy: AtomicUsize::new(0),
            live_workers: AtomicUsize::new(workers),
            stop: AtomicBool::new(false),
            shutdown_cancel: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            cfg,
        });
        recover_jobs(&shared)?;

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    worker_loop(&shared);
                    shared.live_workers.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || {
                            let _ = handle_conn(&shared, stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Keep serving status/result queries while a drain
                        // shutdown lets the workers finish; exit once they
                        // are all gone.
                        if shared.stop.load(Ordering::SeqCst)
                            && shared.live_workers.load(Ordering::SeqCst) == 0
                        {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            })
        };

        Ok(ServerHandle { addr, shared, acceptor, workers: worker_handles })
    }
}

/// Reload the persistent state directory into the registry and queue.
fn recover_jobs(shared: &Shared) -> io::Result<()> {
    let jobs_dir = shared.cfg.state_dir.join("jobs");
    let mut ids: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(&jobs_dir)? {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(|s| s.parse::<u64>().ok()) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    let mut max_id = 0;
    for id in ids {
        max_id = max_id.max(id);
        let dir = shared.job_dir(id);
        let spec = match std::fs::read_to_string(dir.join(SPEC_FILE))
            .ok()
            .and_then(|s| Json::parse(&s).ok())
            .and_then(|v| SubmitSpec::from_json(&v).ok())
        {
            Some(s) => s,
            None => {
                shared.cfg.tracer.warn(
                    "serve.unreadable_spec",
                    &[
                        ("job", Json::from(id)),
                        ("message", Json::from("unreadable spec, skipping")),
                    ],
                );
                continue;
            }
        };
        let mut entry = JobEntry {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancelled: false,
            queued_at: Instant::now(),
            queue_ms: None,
            run_ms: None,
            resumed: false,
            result: None,
        };
        if let Ok(text) = std::fs::read_to_string(dir.join(RESULT_FILE)) {
            if let Ok(result) = Json::parse(&text) {
                entry.state = if result.get("ok").and_then(Json::as_bool).unwrap_or(false) {
                    JobState::Done
                } else {
                    JobState::Failed
                };
                entry.result = Some(result);
                shared.jobs.lock().unwrap().insert(id, entry);
                continue;
            }
        }
        if dir.join(CANCEL_MARKER).exists() {
            entry.state = JobState::Cancelled;
            shared.jobs.lock().unwrap().insert(id, entry);
            continue;
        }
        // Queued or in flight when the previous daemon died: re-enqueue.
        // A checkpoint journal means the run had started — it will resume
        // from its committed prefix.
        entry.resumed = dir.join(CKPT_DIR).join("journal.bin").exists();
        if entry.resumed {
            shared.counters.resumed.fetch_add(1, Ordering::Relaxed);
        }
        let priority = entry.spec.priority;
        shared.jobs.lock().unwrap().insert(id, entry);
        let _ = shared.queue.push_recovered(priority, id);
    }
    shared.next_id.store(max_id + 1, Ordering::SeqCst);
    Ok(())
}

/// Atomically persist a JSON document (temp file + rename + fsync).
fn write_json_atomic(path: &Path, value: &Json) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(value.to_string().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn worker_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop() {
        // Claim the job; a cancel that won the race leaves it non-Queued.
        let claimed = {
            let mut jobs = shared.jobs.lock().unwrap();
            match jobs.get_mut(&id) {
                Some(e) if e.state == JobState::Queued => {
                    e.state = JobState::Running;
                    let queue_ms = e.queued_at.elapsed().as_millis() as u64;
                    e.queue_ms = Some(queue_ms);
                    Some((e.spec.clone(), Arc::clone(&e.cancel), e.resumed, queue_ms))
                }
                _ => None,
            }
        };
        let Some((spec, cancel, resumed, queue_ms)) = claimed else { continue };
        shared.counters.queue_wait_ms_total.fetch_add(queue_ms, Ordering::Relaxed);
        shared.counters.queue_waited.fetch_add(1, Ordering::Relaxed);
        shared.busy.fetch_add(1, Ordering::SeqCst);
        let span = shared
            .cfg
            .tracer
            .span_with("serve.job", &[("id", Json::from(id)), ("queue_ms", Json::from(queue_ms))]);
        let started = Instant::now();
        let finished = execute_job(shared, id, &spec, &cancel);
        let run_ms = started.elapsed().as_millis() as u64;
        span.close();
        shared.counters.run_ms_total.fetch_add(run_ms, Ordering::Relaxed);
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        record_finish(shared, id, resumed, run_ms, finished);
    }
}

enum Finished {
    Done { result: Json, peak_nodes: u64 },
    Failed { code: &'static str, message: String },
    CancelledByUser,
    CutByShutdown,
}

/// Run one job under its budget and checkpoint directory.
fn execute_job(shared: &Shared, id: u64, spec: &SubmitSpec, cancel: &Arc<AtomicBool>) -> Finished {
    let mut job = match spec.materialize() {
        Ok(j) => j,
        Err(m) => return Finished::Failed { code: "input-error", message: m },
    };
    // Cancellation is always armed: the per-job flag (live `cancel` op)
    // and the server-wide checkpoint-shutdown flag.
    job.tracer = shared.cfg.tracer.clone();
    job.budget = Some(
        job.budget
            .take()
            .unwrap_or_default()
            .with_cancel(Arc::clone(cancel))
            .with_cancel(Arc::clone(&shared.shutdown_cancel)),
    );
    if job.mode == JobMode::Strong {
        let ckpt = shared.job_dir(id).join(CKPT_DIR);
        if std::fs::create_dir_all(&ckpt).is_err() {
            return Finished::Failed {
                code: "io-error",
                message: format!("cannot create checkpoint dir {}", ckpt.display()),
            };
        }
        job.checkpoint = Some(JobCheckpoint::auto(ckpt));
    }
    match job.run() {
        Ok(report) => {
            let s = &report.outcome.stats;
            let stats = Json::obj(vec![
                ("candidates", s.candidates.into()),
                ("groups_added", s.groups_added.into()),
                ("max_rank", s.max_rank.into()),
                ("finished_in_pass", u64::from(s.finished_in_pass).into()),
                ("ranking_secs", s.ranking_secs().into()),
                ("scc_secs", s.scc_secs().into()),
                ("total_secs", s.total_secs().into()),
                ("program_nodes", s.program_nodes.into()),
                ("peak_live_nodes", s.peak_live_nodes.into()),
                ("bdd_ticks", s.bdd_ticks.into()),
            ]);
            let result = Json::obj(vec![
                ("ok", true.into()),
                ("state", "done".into()),
                ("id", id.into()),
                ("name", report.name.as_str().into()),
                ("weak", report.weak.into()),
                ("verified", report.verified.into()),
                ("schedule", report.outcome.schedule.to_string().as_str().into()),
                ("recovery", report.outcome.describe_recovery().as_str().into()),
                ("protocol", report.emitted_dsl.as_str().into()),
                ("stats", stats),
            ]);
            Finished::Done { result, peak_nodes: s.peak_live_nodes as u64 }
        }
        Err(JobError::Synthesis(SynthesisError::ResourceExhausted { cause, .. }))
            if cause.resource() == Resource::Cancelled =>
        {
            if cancel.load(Ordering::SeqCst) {
                Finished::CancelledByUser
            } else {
                Finished::CutByShutdown
            }
        }
        Err(JobError::Synthesis(e @ SynthesisError::ResourceExhausted { .. })) => {
            Finished::Failed { code: "budget-exhausted", message: e.to_string() }
        }
        Err(JobError::Synthesis(SynthesisError::Checkpoint(e))) => {
            Finished::Failed { code: "checkpoint-error", message: e.to_string() }
        }
        Err(JobError::Synthesis(e)) => {
            Finished::Failed { code: "synthesis-failed", message: e.to_string() }
        }
        Err(JobError::Input(m)) => Finished::Failed { code: "input-error", message: m },
        Err(JobError::Spec(m)) => Finished::Failed { code: "bad-spec", message: m },
    }
}

fn record_finish(shared: &Shared, id: u64, resumed: bool, run_ms: u64, finished: Finished) {
    let dir = shared.job_dir(id);
    let (state, result) = match finished {
        Finished::Done { mut result, peak_nodes } => {
            if let Json::Obj(pairs) = &mut result {
                pairs.push(("run_ms".into(), run_ms.into()));
                pairs.push(("resumed".into(), resumed.into()));
            }
            let _ = write_json_atomic(&dir.join(RESULT_FILE), &result);
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.counters.peak_nodes_max.fetch_max(peak_nodes, Ordering::Relaxed);
            (JobState::Done, Some(result))
        }
        Finished::Failed { code, message } => {
            let result = Json::obj(vec![
                ("ok", false.into()),
                ("state", "failed".into()),
                ("id", id.into()),
                ("code", code.into()),
                ("error", message.as_str().into()),
                ("run_ms", run_ms.into()),
            ]);
            let _ = write_json_atomic(&dir.join(RESULT_FILE), &result);
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            (JobState::Failed, Some(result))
        }
        Finished::CancelledByUser => {
            let _ = std::fs::write(dir.join(CANCEL_MARKER), b"cancelled by client\n");
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            (JobState::Cancelled, None)
        }
        // Leave spec + checkpoint untouched: the next daemon resumes it.
        Finished::CutByShutdown => (JobState::Interrupted, None),
    };
    let mut jobs = shared.jobs.lock().unwrap();
    if let Some(e) = jobs.get_mut(&id) {
        e.state = state;
        e.run_ms = Some(run_ms);
        e.result = result;
    }
}

/// One client connection: newline-delimited JSON requests in, one JSON
/// response line per request out.
fn handle_conn(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let Some(line) = read_line_bounded(&mut reader, MAX_REQUEST_BYTES)? else {
            return Ok(()); // client closed
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line) {
            Ok(req) => dispatch(shared, &req),
            Err(e) => err_response("bad-request", &format!("malformed request: {e}")),
        };
        writer.write_all(response.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

fn read_line_bounded(reader: &mut BufReader<TcpStream>, max: usize) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = reader.by_ref().take(max as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') && buf.len() > max {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "request line too long"));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request is not UTF-8"))
}

fn err_response(code: &str, message: &str) -> Json {
    Json::obj(vec![("ok", false.into()), ("code", code.into()), ("error", message.into())])
}

fn dispatch(shared: &Shared, req: &Json) -> Json {
    match req.get("op").and_then(Json::as_str) {
        Some("submit") => op_submit(shared, req),
        Some("status") => op_status(shared, req),
        Some("result") => op_result(shared, req),
        Some("cancel") => op_cancel(shared, req),
        Some("stats") => op_stats(shared),
        Some("metrics") => op_metrics(shared),
        Some("shutdown") => op_shutdown(shared, req),
        Some(other) => err_response("bad-request", &format!("unknown op `{other}`")),
        None => err_response("bad-request", "request needs a string `op` field"),
    }
}

fn op_submit(shared: &Shared, req: &Json) -> Json {
    if shared.stop.load(Ordering::SeqCst) {
        return err_response("shutting-down", "daemon is shutting down");
    }
    let Some(job_field) = req.get("job") else {
        return err_response("bad-request", "submit needs a `job` object");
    };
    let spec = match SubmitSpec::from_json(job_field) {
        Ok(s) => s,
        Err(m) => return err_response("bad-request", &m),
    };
    // Validate the workload up front so a client learns about a bad
    // protocol now, not from a failed job later.
    if let Err(m) = spec.materialize() {
        return err_response("input-error", &m);
    }

    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let dir = shared.job_dir(id);
    let persisted = std::fs::create_dir_all(&dir)
        .and_then(|()| write_json_atomic(&dir.join(SPEC_FILE), &spec.to_json()));
    if let Err(e) = persisted {
        let _ = std::fs::remove_dir_all(&dir);
        return err_response("io-error", &format!("cannot persist job: {e}"));
    }
    let priority = spec.priority;
    shared.jobs.lock().unwrap().insert(
        id,
        JobEntry {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancelled: false,
            queued_at: Instant::now(),
            queue_ms: None,
            run_ms: None,
            resumed: false,
            result: None,
        },
    );
    match shared.queue.push(priority, id) {
        Ok(()) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            Json::obj(vec![("ok", true.into()), ("id", id.into())])
        }
        Err(kind) => {
            shared.jobs.lock().unwrap().remove(&id);
            let _ = std::fs::remove_dir_all(&dir);
            match kind {
                PushError::Full => {
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    err_response(
                        "queue-full",
                        &format!(
                            "queue is at capacity ({}); retry later",
                            shared.cfg.queue_capacity
                        ),
                    )
                }
                PushError::Closed => err_response("shutting-down", "daemon is shutting down"),
            }
        }
    }
}

fn req_id(req: &Json) -> Result<u64, Json> {
    req.get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| err_response("bad-request", "request needs an integer `id`"))
}

fn op_status(shared: &Shared, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let jobs = shared.jobs.lock().unwrap();
    match jobs.get(&id) {
        None => err_response("unknown-job", &format!("no job {id}")),
        Some(e) => {
            let mut pairs: Vec<(&str, Json)> = vec![
                ("ok", true.into()),
                ("id", id.into()),
                ("state", e.state.name().into()),
                ("resumed", e.resumed.into()),
            ];
            if let Some(q) = e.queue_ms {
                pairs.push(("queue_ms", q.into()));
            }
            if let Some(r) = e.run_ms {
                pairs.push(("run_ms", r.into()));
            }
            Json::obj(pairs)
        }
    }
}

fn op_result(shared: &Shared, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let jobs = shared.jobs.lock().unwrap();
    match jobs.get(&id) {
        None => err_response("unknown-job", &format!("no job {id}")),
        Some(e) => match (&e.state, &e.result) {
            (JobState::Done | JobState::Failed, Some(r)) => r.clone(),
            (JobState::Cancelled, _) => err_response("cancelled", "job was cancelled"),
            (JobState::Interrupted, _) => {
                err_response("interrupted", "job was checkpointed by a shutdown; resubmit-free resume happens on the next daemon start")
            }
            (state, _) => {
                let mut resp = err_response("not-finished", "job has not finished");
                if let Json::Obj(pairs) = &mut resp {
                    pairs.push(("state".into(), state.name().into()));
                }
                resp
            }
        },
    }
}

fn op_cancel(shared: &Shared, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let mut jobs = shared.jobs.lock().unwrap();
    match jobs.get_mut(&id) {
        None => err_response("unknown-job", &format!("no job {id}")),
        Some(e) => {
            match e.state {
                JobState::Queued => {
                    // Never ran: mark terminal directly; the worker skips
                    // non-Queued ids it pops.
                    e.state = JobState::Cancelled;
                    e.user_cancelled = true;
                    let _ = std::fs::write(
                        shared.job_dir(id).join(CANCEL_MARKER),
                        b"cancelled by client (queued)\n",
                    );
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                }
                JobState::Running => {
                    // Cooperative: the job's budget polls this flag and
                    // aborts within one tick-check interval.
                    e.user_cancelled = true;
                    e.cancel.store(true, Ordering::SeqCst);
                }
                _ => {} // already terminal: no-op
            }
            Json::obj(vec![
                ("ok", true.into()),
                ("id", id.into()),
                ("state", e.state.name().into()),
            ])
        }
    }
}

fn op_stats(shared: &Shared) -> Json {
    let c = &shared.counters;
    let busy = shared.busy.load(Ordering::SeqCst);
    let workers = shared.cfg.workers.max(1);
    Json::obj(vec![
        ("ok", true.into()),
        ("accepted", c.accepted.load(Ordering::Relaxed).into()),
        ("rejected", c.rejected.load(Ordering::Relaxed).into()),
        ("completed", c.completed.load(Ordering::Relaxed).into()),
        ("failed", c.failed.load(Ordering::Relaxed).into()),
        ("cancelled", c.cancelled.load(Ordering::Relaxed).into()),
        ("resumed", c.resumed.load(Ordering::Relaxed).into()),
        ("queue_depth", shared.queue.len().into()),
        ("running", busy.into()),
        ("workers", workers.into()),
        ("utilization", (busy as f64 / workers as f64).into()),
        ("peak_nodes_max", c.peak_nodes_max.load(Ordering::Relaxed).into()),
        ("queue_wait_ms_total", c.queue_wait_ms_total.load(Ordering::Relaxed).into()),
        ("queue_wait_ms_avg", avg_wait_ms(c).into()),
        ("run_ms_total", c.run_ms_total.load(Ordering::Relaxed).into()),
        ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
    ])
}

fn avg_wait_ms(c: &Counters) -> f64 {
    let n = c.queue_waited.load(Ordering::Relaxed);
    if n == 0 {
        0.0
    } else {
        c.queue_wait_ms_total.load(Ordering::Relaxed) as f64 / n as f64
    }
}

/// `metrics` op: the same counters and gauges as `stats`, rendered as
/// Prometheus text-format exposition (returned in the `metrics` field so
/// the response stays one JSON line on the wire).
fn op_metrics(shared: &Shared) -> Json {
    let c = &shared.counters;
    let busy = shared.busy.load(Ordering::SeqCst);
    let workers = shared.cfg.workers.max(1);
    let mut m = MetricsText::new();
    m.counter(
        "stsyn_jobs_accepted_total",
        "Submissions admitted to the queue",
        c.accepted.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_rejected_total",
        "Submissions rejected by backpressure",
        c.rejected.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_completed_total",
        "Jobs finished successfully",
        c.completed.load(Ordering::Relaxed),
    )
    .counter("stsyn_jobs_failed_total", "Jobs that failed", c.failed.load(Ordering::Relaxed))
    .counter(
        "stsyn_jobs_cancelled_total",
        "Jobs cancelled by a client",
        c.cancelled.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_resumed_total",
        "Jobs re-enqueued from a checkpoint journal",
        c.resumed.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_queue_wait_ms_total",
        "Milliseconds claimed jobs spent queued",
        c.queue_wait_ms_total.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_run_ms_total",
        "Milliseconds workers spent running jobs",
        c.run_ms_total.load(Ordering::Relaxed),
    )
    .gauge("stsyn_queue_depth", "Jobs currently queued", shared.queue.len() as f64)
    .gauge("stsyn_workers_busy", "Workers currently running a job", busy as f64)
    .gauge("stsyn_workers", "Worker pool size", workers as f64)
    .gauge("stsyn_worker_utilization", "Busy workers over pool size", busy as f64 / workers as f64)
    .gauge("stsyn_queue_wait_ms_avg", "Mean queue wait of claimed jobs", avg_wait_ms(c))
    .gauge(
        "stsyn_peak_nodes_max",
        "Largest per-job peak live BDD node count",
        c.peak_nodes_max.load(Ordering::Relaxed) as f64,
    )
    .gauge("stsyn_uptime_seconds", "Daemon uptime", shared.started.elapsed().as_secs_f64());
    Json::obj(vec![("ok", true.into()), ("metrics", m.render().into())])
}

fn op_shutdown(shared: &Shared, req: &Json) -> Json {
    let mode = match req.get("mode").and_then(Json::as_str) {
        None | Some("drain") => ShutdownMode::Drain,
        Some("checkpoint") => ShutdownMode::Checkpoint,
        Some(other) => {
            return err_response("bad-request", &format!("unknown shutdown mode `{other}`"))
        }
    };
    shared.begin_shutdown(mode);
    Json::obj(vec![
        ("ok", true.into()),
        (
            "mode",
            match mode {
                ShutdownMode::Drain => "drain".into(),
                ShutdownMode::Checkpoint => "checkpoint".into(),
            },
        ),
    ])
}
