//! The synthesis job daemon: listener, worker pool, job registry and
//! persistent state directory.
//!
//! ## Lifecycle of a job
//!
//! 1. **submit** — the spec is validated (DSL parsed, case bounds and
//!    schedule checked) *synchronously*, persisted to
//!    `state/jobs/<id>/spec.json`, registered, and pushed into the bounded
//!    priority queue. A full queue rejects the submission with a distinct
//!    `queue-full` error — backpressure, never unbounded memory. A
//!    submission carrying an idempotency key that the daemon has already
//!    admitted is answered with the existing job id instead of a second
//!    enqueue, which is what makes client-side retry safe.
//! 2. **run** — a worker claims the job, attaches its cancel flag (plus
//!    the server-wide checkpoint-shutdown flag) to the job's [`Budget`],
//!    and runs it through [`stsyn_core::job::JobSpec::run`]. Strong jobs
//!    checkpoint into `state/jobs/<id>/ckpt/`, so a killed daemon resumes
//!    them on restart. Every attempt is fenced by `catch_unwind`: a
//!    panicking job is recorded as a crash, not a lost worker.
//! 3. **finish** — the result (success or failure) is written atomically
//!    to `result.json`; a user cancellation leaves a `cancelled` marker.
//!    Either file makes the job terminal across restarts.
//!
//! ## Restart recovery
//!
//! On startup every `state/jobs/*` directory is reloaded: terminal jobs
//! (result or cancel marker present) come back queryable; everything else
//! is re-enqueued — with `resume` semantics when a checkpoint journal
//! exists, which replays the killed run's committed work and produces a
//! result byte-identical to an uninterrupted run (PR 2's guarantee).
//! Quarantined jobs (see below) are reloaded queryable but never re-run.
//!
//! ## Self-healing
//!
//! * Every accepted socket gets read/write deadlines; a stalled or idle
//!   connection is reaped instead of pinning a handler thread forever.
//! * Concurrent connection handlers are capped (`max_conns`); excess
//!   connections get a typed `busy` rejection.
//! * Each job attempt is appended to a durable `attempts.log` ledger in
//!   its job directory (`start` / `done` / `cut` / `crash <msg>` lines).
//!   An attempt that never closed — a panic, or a SIGKILL'd daemon that
//!   died mid-run without a checkpoint cut — leaves its `start`
//!   unmatched. A job accumulating `quarantine_after` suspect attempts is
//!   moved to `state/quarantine/<id>/` and never retried again, so one
//!   poison job cannot starve the pool across restarts.
//! * A supervisor thread respawns worker threads killed by a panic that
//!   escapes the job fence.
//!
//! ## Shutdown
//!
//! * **drain** — stop admitting, finish queued and running jobs, exit.
//! * **checkpoint** — stop admitting, discard the in-memory queue (the
//!   jobs stay on disk), raise the shared cancel flag so running jobs cut
//!   a final checkpoint, exit. Both leave the state directory ready for
//!   the next daemon.

use crate::json::Json;
use crate::queue::{PriorityQueue, PushError};
use crate::wire::{error_json, read_line_bounded, ChaosJob, SubmitSpec, MAX_REQUEST_BYTES};
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stsyn_core::job::{JobCheckpoint, JobError, JobMode};
use stsyn_core::SynthesisError;
use stsyn_obs::{LatencyHistogram, MetricsText, Progress, ProgressBus, Tracer};
use stsyn_store::Store;
use stsyn_symbolic::Resource;

/// File names inside a job directory.
const SPEC_FILE: &str = "spec.json";
const RESULT_FILE: &str = "result.json";
const CANCEL_MARKER: &str = "cancelled";
const CKPT_DIR: &str = "ckpt";
/// Durable per-attempt ledger (`start`/`done`/`cut`/`crash <msg>` lines).
const ATTEMPTS_FILE: &str = "attempts.log";
/// Marker + metadata written when a job is quarantined.
const QUARANTINE_INFO: &str = "quarantine.json";
/// Sibling of `jobs/` holding quarantined job directories.
const QUARANTINE_DIR: &str = "quarantine";

/// Bounded pool of short-lived threads that answer `busy` to connections
/// beyond `max_conns`; past this, excess sockets are simply dropped.
const MAX_REJECTORS: usize = 8;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each runs one synthesis job at a time).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Hard cap on concurrent connection-handler threads; connections
    /// beyond it receive a typed `busy` rejection.
    pub max_conns: usize,
    /// Read/write deadline on every accepted socket; a connection idle
    /// or stalled past it is reaped. Zero disables the deadlines.
    pub io_timeout: Duration,
    /// Quarantine a job once this many of its attempts died without a
    /// clean finish (panic or daemon kill mid-run).
    pub quarantine_after: u32,
    /// Persistent state directory (created if missing).
    pub state_dir: PathBuf,
    /// Artifact store directory. `None` (the default) disables the
    /// store entirely: no admission lookups, no publishes. `stsyn serve
    /// --store-dir` turns it on (conventionally `state/store/`).
    pub store_dir: Option<PathBuf>,
    /// Store byte cap for LRU eviction; 0 = unbounded.
    pub store_cap_bytes: u64,
    /// Keep at most this many completed job directories; older completed
    /// jobs are pruned **only once their result is published to the
    /// store** (so nothing observable is ever lost — a resubmission gets
    /// the stored result). `None` disables pruning.
    pub retain_jobs: Option<usize>,
    /// Tracer for daemon diagnostics and per-job spans. Defaults to
    /// NDJSON warnings on stderr; `stsyn serve --trace` swaps in a file
    /// sink at the requested level.
    pub tracer: Tracer,
}

impl ServerConfig {
    /// Loopback defaults with the given state directory.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_conns: 64,
            io_timeout: Duration::from_secs(30),
            quarantine_after: 3,
            state_dir: state_dir.into(),
            store_dir: None,
            store_cap_bytes: 0,
            retain_jobs: None,
            tracer: Tracer::to_stderr(stsyn_obs::TraceLevel::Warn),
        }
    }

    /// Enable the artifact store under `state/store/` (the conventional
    /// location) with the given byte cap.
    pub fn with_store(mut self, cap_bytes: u64) -> ServerConfig {
        self.store_dir = Some(self.state_dir.join("store"));
        self.store_cap_bytes = cap_bytes;
        self
    }
}

/// How to stop the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Finish queued and running jobs, then exit.
    Drain,
    /// Checkpoint running jobs and exit; queued jobs wait on disk.
    Checkpoint,
}

/// Service counters (per daemon instance; job *state* is persistent,
/// counters are not).
#[derive(Debug, Default)]
pub struct Counters {
    /// Submissions admitted to the queue.
    pub accepted: AtomicU64,
    /// Submissions rejected by backpressure (`queue-full`).
    pub rejected: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs that failed (synthesis, input or budget failure).
    pub failed: AtomicU64,
    /// Jobs cancelled by a client.
    pub cancelled: AtomicU64,
    /// In-flight jobs re-enqueued from a checkpoint journal at startup.
    pub resumed: AtomicU64,
    /// Job attempts that panicked (caught by the worker's fence).
    pub crashed: AtomicU64,
    /// Jobs moved to quarantine by this daemon instance.
    pub quarantined: AtomicU64,
    /// Connections rejected at the `max_conns` cap.
    pub conn_rejected: AtomicU64,
    /// Dead worker threads respawned by the supervisor.
    pub worker_respawns: AtomicU64,
    /// Submissions answered from the idempotency map (no new job).
    pub dedup_hits: AtomicU64,
    /// Largest per-job peak live BDD node count seen so far.
    pub peak_nodes_max: AtomicU64,
    /// Total milliseconds completed claims spent queued (wait time).
    pub queue_wait_ms_total: AtomicU64,
    /// Total milliseconds workers spent running jobs (busy time).
    pub run_ms_total: AtomicU64,
    /// Log-bucketed queue-wait distribution (claim time minus enqueue
    /// time), one sample per claimed attempt.
    pub queue_wait_hist: LatencyHistogram,
    /// Log-bucketed run-time distribution, one sample per finished
    /// attempt.
    pub run_hist: LatencyHistogram,
    /// Log-bucketed submit→result distribution: admission to terminal
    /// state, across retries and resumes (store hits observe ~0).
    pub submit_result_hist: LatencyHistogram,
    /// Completed job directories removed by retention GC (their results
    /// live on in the artifact store).
    pub pruned: AtomicU64,
}

#[derive(Debug, Clone, PartialEq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
    /// Cut by a checkpoint shutdown; will resume on the next start.
    Interrupted,
    /// Poison job: crashed its worker too often; parked durably, never
    /// retried.
    Quarantined,
}

impl JobState {
    /// No further state transitions (and no further progress frames).
    fn terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Interrupted => "interrupted",
            JobState::Quarantined => "quarantined",
        }
    }
}

struct JobEntry {
    spec: SubmitSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    user_cancelled: bool,
    queued_at: Instant,
    queue_ms: Option<u64>,
    run_ms: Option<u64>,
    resumed: bool,
    /// The job's checkpoint dir was seeded from a store warm hit; if the
    /// resume machinery rejects the seed, the job retries cold instead
    /// of failing.
    warm: bool,
    /// Terminal payload (the stored `result.json` value) for Done/Failed.
    result: Option<Json>,
    /// Admission time; unlike `queued_at` it is never reset by retries,
    /// so it anchors the submit→result latency histogram.
    submitted_at: Instant,
    /// Per-job progress ring the tracer tees into and `watch` streams
    /// from; closed when the job reaches a terminal state.
    bus: ProgressBus,
}

impl JobEntry {
    fn new(spec: SubmitSpec) -> JobEntry {
        JobEntry {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancelled: false,
            queued_at: Instant::now(),
            queue_ms: None,
            run_ms: None,
            resumed: false,
            warm: false,
            result: None,
            submitted_at: Instant::now(),
            bus: ProgressBus::default(),
        }
    }

    /// Force a state (used when registering already-terminal entries —
    /// recovery and store hits); terminal states close the progress bus
    /// so a `watch` ends immediately instead of waiting for frames.
    fn with_state(mut self, state: JobState) -> JobEntry {
        if state.terminal() {
            self.bus.close();
        }
        self.state = state;
        self
    }
}

struct Shared {
    cfg: ServerConfig,
    queue: PriorityQueue<u64>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    /// Idempotency key -> job id, for dedup of retried submissions.
    idem: Mutex<HashMap<u64, u64>>,
    next_id: AtomicU64,
    counters: Counters,
    busy: AtomicUsize,
    live_workers: AtomicUsize,
    /// Open (admitted) client connections, for the `max_conns` cap.
    conns: AtomicUsize,
    stop: AtomicBool,
    shutdown_cancel: Arc<AtomicBool>,
    started: Instant,
    /// Content-addressed artifact store; `None` when `--store-dir` is
    /// not configured.
    store: Option<Store>,
}

impl Shared {
    fn job_dir(&self, id: u64) -> PathBuf {
        self.cfg.state_dir.join("jobs").join(format!("{id:08}"))
    }

    fn quarantine_dir(&self, id: u64) -> PathBuf {
        self.cfg.state_dir.join(QUARANTINE_DIR).join(format!("{id:08}"))
    }

    fn begin_shutdown(&self, mode: ShutdownMode) {
        self.stop.store(true, Ordering::SeqCst);
        match mode {
            ShutdownMode::Drain => self.queue.close(),
            ShutdownMode::Checkpoint => {
                let _ = self.queue.close_and_clear();
                self.shutdown_cancel.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// Lock the job registry, recovering from a poisoned lock: a panicking
/// worker must not take the whole registry (and thus the daemon) down.
fn lock_jobs(shared: &Shared) -> MutexGuard<'_, HashMap<u64, JobEntry>> {
    shared.jobs.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_idem(shared: &Shared) -> MutexGuard<'_, HashMap<u64, u64>> {
    shared.idem.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    supervisor: JoinHandle<()>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiate a shutdown (same path as the wire `shutdown` op).
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.shared.begin_shutdown(mode);
    }

    /// Wait for workers (via their supervisor) and the acceptor to exit.
    pub fn join(self) {
        let _ = self.supervisor.join();
        let _ = self.acceptor.join();
    }
}

/// The job service.
pub struct Server;

impl Server {
    /// Start the daemon: recover persisted jobs, bind the listener, and
    /// spawn the worker pool, its supervisor, and the acceptor.
    pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
        let workers = cfg.workers.max(1);
        let queue_capacity = cfg.queue_capacity.max(1);
        std::fs::create_dir_all(cfg.state_dir.join("jobs"))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // The store opens (and recovers) before job recovery, so the
        // retention pass below can already trust `contains_result`.
        let store = match &cfg.store_dir {
            Some(dir) => Some(Store::open(dir, cfg.store_cap_bytes).map_err(io::Error::other)?),
            None => None,
        };

        let shared = Arc::new(Shared {
            queue: PriorityQueue::new(queue_capacity),
            jobs: Mutex::new(HashMap::new()),
            idem: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            busy: AtomicUsize::new(0),
            live_workers: AtomicUsize::new(workers),
            conns: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            shutdown_cancel: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            store,
            cfg,
        });
        recover_jobs(&shared)?;
        prune_job_dirs(&shared);

        let worker_handles: Vec<JoinHandle<()>> =
            (0..workers).map(|_| spawn_worker(&shared)).collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervise_workers(&shared, worker_handles))
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let rejectors = Arc::new(AtomicUsize::new(0));
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns.max(1) {
                                reject_busy(&shared, stream, &rejectors);
                                continue;
                            }
                            shared.conns.fetch_add(1, Ordering::SeqCst);
                            let shared = Arc::clone(&shared);
                            std::thread::spawn(move || {
                                let _ = handle_conn(&shared, stream);
                                shared.conns.fetch_sub(1, Ordering::SeqCst);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            // Keep serving status/result queries while a drain
                            // shutdown lets the workers finish; exit once they
                            // are all gone.
                            if shared.stop.load(Ordering::SeqCst)
                                && shared.live_workers.load(Ordering::SeqCst) == 0
                            {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(ServerHandle { addr, shared, acceptor, supervisor })
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        // Decrement on *any* exit, clean or panicking, so the acceptor's
        // drain condition and the supervisor both see the truth.
        struct LiveGuard(Arc<Shared>);
        impl Drop for LiveGuard {
            fn drop(&mut self) {
                self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _live = LiveGuard(Arc::clone(&shared));
        worker_loop(&shared);
    })
}

/// Reap finished worker threads. Workers exit cleanly only when the
/// queue is closed (shutdown); any earlier exit is a panic that escaped
/// the job fence — respawn a replacement so the pool keeps its size.
fn supervise_workers(shared: &Arc<Shared>, mut handles: Vec<JoinHandle<()>>) {
    loop {
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let dead = handles.swap_remove(i);
                let _ = dead.join();
                // Recheck right before respawning: a shutdown that began
                // after the worker died must win.
                if !shared.stop.load(Ordering::SeqCst) {
                    shared.live_workers.fetch_add(1, Ordering::SeqCst);
                    shared.counters.worker_respawns.fetch_add(1, Ordering::Relaxed);
                    shared.cfg.tracer.warn(
                        "serve.worker_respawn",
                        &[("live", Json::from(shared.live_workers.load(Ordering::SeqCst) as u64))],
                    );
                    handles.push(spawn_worker(shared));
                }
            } else {
                i += 1;
            }
        }
        if handles.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn scan_job_ids(dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(|s| s.parse::<u64>().ok()) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

fn load_spec(shared: &Shared, dir: &Path, id: u64) -> Option<SubmitSpec> {
    let spec = std::fs::read_to_string(dir.join(SPEC_FILE))
        .ok()
        .and_then(|s| Json::parse(&s).ok())
        .and_then(|v| SubmitSpec::from_json(&v).ok());
    if spec.is_none() {
        shared.cfg.tracer.warn(
            "serve.unreadable_spec",
            &[("job", Json::from(id)), ("message", Json::from("unreadable spec, skipping"))],
        );
    }
    spec
}

/// Record a recovered job's idempotency key so a client retrying across
/// a daemon restart still dedups onto the original id.
fn remember_idem(shared: &Shared, spec: &SubmitSpec, id: u64) {
    if let Some(key) = spec.idem {
        lock_idem(shared).entry(key).or_insert(id);
    }
}

/// Reload the persistent state directory into the registry and queue.
fn recover_jobs(shared: &Shared) -> io::Result<()> {
    let mut max_id = 0;

    // Quarantined jobs: queryable, never re-enqueued.
    let qdir = shared.cfg.state_dir.join(QUARANTINE_DIR);
    if qdir.is_dir() {
        for id in scan_job_ids(&qdir)? {
            max_id = max_id.max(id);
            let dir = qdir.join(format!("{id:08}"));
            let Some(spec) = load_spec(shared, &dir, id) else { continue };
            remember_idem(shared, &spec, id);
            let entry = JobEntry::new(spec).with_state(JobState::Quarantined);
            lock_jobs(shared).insert(id, entry);
        }
    }

    let jobs_dir = shared.cfg.state_dir.join("jobs");
    for id in scan_job_ids(&jobs_dir)? {
        max_id = max_id.max(id);
        let dir = shared.job_dir(id);
        let Some(spec) = load_spec(shared, &dir, id) else { continue };
        remember_idem(shared, &spec, id);
        let mut entry = JobEntry::new(spec);
        if let Ok(text) = std::fs::read_to_string(dir.join(RESULT_FILE)) {
            if let Ok(result) = Json::parse(&text) {
                let state = if result.get("ok").and_then(Json::as_bool).unwrap_or(false) {
                    JobState::Done
                } else {
                    JobState::Failed
                };
                entry.result = Some(result);
                lock_jobs(shared).insert(id, entry.with_state(state));
                continue;
            }
        }
        if dir.join(CANCEL_MARKER).exists() {
            lock_jobs(shared).insert(id, entry.with_state(JobState::Cancelled));
            continue;
        }
        // A quarantine marker whose directory rename failed: treat it as
        // quarantined in place.
        if dir.join(QUARANTINE_INFO).exists() {
            lock_jobs(shared).insert(id, entry.with_state(JobState::Quarantined));
            continue;
        }
        // Queued or in flight when the previous daemon died: re-enqueue.
        // A checkpoint journal means the run had started — it will resume
        // from its committed prefix. The attempts ledger keeps counting
        // across restarts, so a job that keeps killing daemons reaches
        // quarantine instead of looping forever (checked at claim time).
        entry.resumed = dir.join(CKPT_DIR).join("journal.bin").exists();
        if entry.resumed {
            shared.counters.resumed.fetch_add(1, Ordering::Relaxed);
        }
        let priority = entry.spec.priority;
        lock_jobs(shared).insert(id, entry);
        let _ = shared.queue.push_recovered(priority, id);
    }
    shared.next_id.store(max_id + 1, Ordering::SeqCst);
    Ok(())
}

/// Atomically persist a JSON document (temp file + rename + fsync).
fn write_json_atomic(path: &Path, value: &Json) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(value.to_string().as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Append one fsync'd line to the job's attempt ledger.
fn append_attempt(dir: &Path, line: &str) -> io::Result<()> {
    let mut f =
        std::fs::OpenOptions::new().create(true).append(true).open(dir.join(ATTEMPTS_FILE))?;
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")?;
    f.sync_all()
}

/// Attempts that died without a clean finish: `start` lines minus
/// `done`/`cut` lines. A panic leaves its start unmatched (the `crash`
/// line is diagnostic only), and so does a SIGKILL mid-run — which is
/// exactly the set of attempts that should count toward quarantine.
fn suspect_attempts(dir: &Path) -> u32 {
    let Ok(text) = std::fs::read_to_string(dir.join(ATTEMPTS_FILE)) else { return 0 };
    let mut open: i64 = 0;
    for line in text.lines() {
        match line.split_whitespace().next() {
            Some("start") => open += 1,
            Some("done" | "cut") => open -= 1,
            _ => {}
        }
    }
    open.max(0) as u32
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(id) = shared.queue.pop() {
        run_claimed(shared, id);
    }
}

/// Decrements `busy` when the attempt ends; while armed, also converts a
/// panic unwinding through the worker thread into a recorded crash, so
/// even a job that kills its worker (panic outside the fence) is retried
/// or quarantined rather than silently stuck in `running`.
struct JobGuard {
    shared: Arc<Shared>,
    id: u64,
    armed: bool,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        self.shared.busy.fetch_sub(1, Ordering::SeqCst);
        if self.armed {
            handle_crash(&self.shared, self.id, "worker thread died mid-job");
        }
    }
}

/// Run one popped job id through claim, poison check, fenced execution
/// and crash accounting.
fn run_claimed(shared: &Arc<Shared>, id: u64) {
    // Claim the job; a cancel that won the race leaves it non-Queued.
    let claimed = {
        let mut jobs = lock_jobs(shared);
        match jobs.get_mut(&id) {
            Some(e) if e.state == JobState::Queued => {
                e.state = JobState::Running;
                let queue_us = e.queued_at.elapsed().as_micros() as u64;
                let queue_ms = queue_us / 1000;
                e.queue_ms = Some(queue_ms);
                Some((
                    e.spec.clone(),
                    Arc::clone(&e.cancel),
                    e.resumed,
                    e.warm,
                    queue_ms,
                    queue_us,
                    e.bus.clone(),
                ))
            }
            _ => None,
        }
    };
    let Some((spec, cancel, resumed, warm, queue_ms, queue_us, bus)) = claimed else { return };
    bus.publish_event("job.state", &[("id", Json::from(id)), ("state", Json::from("running"))]);

    // Poison check before burning another attempt on it.
    let dir = shared.job_dir(id);
    let suspect = suspect_attempts(&dir);
    if suspect >= shared.cfg.quarantine_after.max(1) {
        quarantine_job(shared, id, suspect);
        return;
    }
    let _ = append_attempt(&dir, "start");

    shared.counters.queue_wait_ms_total.fetch_add(queue_ms, Ordering::Relaxed);
    shared.counters.queue_wait_hist.observe_us(queue_us);
    shared.busy.fetch_add(1, Ordering::SeqCst);
    let mut guard = JobGuard { shared: Arc::clone(shared), id, armed: true };
    if spec.chaos_job() == Some(ChaosJob::LoseWorker) {
        // Deliberately outside the fence: kills this worker thread, so
        // the crash path *and* the supervisor respawn path both fire.
        panic!("chaos: __lose_worker__ kills its worker thread");
    }
    let span = shared
        .cfg
        .tracer
        .span_with("serve.job", &[("id", Json::from(id)), ("queue_ms", Json::from(queue_ms))]);
    let started = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_job(shared, id, &spec, &cancel, &bus)
    }));
    let run_us = started.elapsed().as_micros() as u64;
    let run_ms = run_us / 1000;
    span.close();
    shared.counters.run_ms_total.fetch_add(run_ms, Ordering::Relaxed);
    shared.counters.run_hist.observe_us(run_us);
    guard.armed = false;
    drop(guard);
    match outcome {
        // A warm-seeded checkpoint the resume machinery rejected (which
        // a matching warm fingerprint should make impossible — this is
        // the safety net): wipe the seed and retry the job cold rather
        // than failing it. The store must never make a job worse.
        Ok(JobOutcome::Failed { code: "checkpoint-error", message }) if warm => {
            let _ = append_attempt(&dir, "done");
            shared.cfg.tracer.warn(
                "store.seed_rejected",
                &[("job", Json::from(id)), ("message", Json::from(message.as_str()))],
            );
            let _ = std::fs::remove_dir_all(dir.join(CKPT_DIR));
            let priority = {
                let mut jobs = lock_jobs(shared);
                match jobs.get_mut(&id) {
                    Some(e) => {
                        e.state = JobState::Queued;
                        e.queued_at = Instant::now();
                        e.warm = false;
                        e.resumed = false;
                        Some(e.spec.priority)
                    }
                    None => None,
                }
            };
            if let Some(priority) = priority {
                if shared.queue.push_recovered(priority, id).is_err() {
                    record_finish(
                        shared,
                        id,
                        resumed,
                        run_ms,
                        JobOutcome::Failed { code: "checkpoint-error", message },
                    );
                }
            }
        }
        Ok(outcome) => record_finish(shared, id, resumed, run_ms, outcome),
        Err(payload) => handle_crash(shared, id, &panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Record one crashed attempt; retry the job unless it just hit the
/// quarantine threshold.
fn handle_crash(shared: &Shared, id: u64, message: &str) {
    shared.counters.crashed.fetch_add(1, Ordering::Relaxed);
    let dir = shared.job_dir(id);
    let one_line = message.replace('\n', " ");
    let _ = append_attempt(&dir, &format!("crash {one_line}"));
    shared.cfg.tracer.warn(
        "serve.job_crashed",
        &[("job", Json::from(id)), ("message", Json::from(one_line.as_str()))],
    );
    let suspect = suspect_attempts(&dir);
    if suspect >= shared.cfg.quarantine_after.max(1) {
        quarantine_job(shared, id, suspect);
        return;
    }
    // Below the threshold: requeue for another attempt (resuming from
    // the checkpoint journal when one exists).
    let priority = {
        let mut jobs = lock_jobs(shared);
        match jobs.get_mut(&id) {
            Some(e) => {
                e.state = JobState::Queued;
                e.queued_at = Instant::now();
                e.resumed = dir.join(CKPT_DIR).join("journal.bin").exists();
                e.bus.publish_event(
                    "job.state",
                    &[
                        ("id", Json::from(id)),
                        ("state", Json::from("queued")),
                        ("retry", Json::from(true)),
                    ],
                );
                Some(e.spec.priority)
            }
            None => None,
        }
    };
    let Some(priority) = priority else { return };
    if shared.queue.push_recovered(priority, id).is_err() {
        // Queue already closed. A checkpoint shutdown parks the job for
        // the next daemon; a drain must settle it now.
        if shared.shutdown_cancel.load(Ordering::SeqCst) {
            if let Some(e) = lock_jobs(shared).get_mut(&id) {
                e.state = JobState::Interrupted;
            }
        } else {
            record_finish(shared, id, false, 0, JobOutcome::Crashed { message: one_line });
        }
    }
}

/// Park a poison job durably: metadata marker, directory move to
/// `state/quarantine/<id>/`, registry state, counter, trace event.
fn quarantine_job(shared: &Shared, id: u64, crashes: u32) {
    let dir = shared.job_dir(id);
    let info = Json::obj(vec![
        ("id", id.into()),
        ("suspect_attempts", u64::from(crashes).into()),
        ("reason", "crashed or killed its worker too many times".into()),
    ]);
    // The marker alone already quarantines the job (recovery honours it
    // in place), so a failed rename cannot un-poison anything.
    let _ = write_json_atomic(&dir.join(QUARANTINE_INFO), &info);
    let qdir = shared.quarantine_dir(id);
    if let Some(parent) = qdir.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::rename(&dir, &qdir);
    if let Some(e) = lock_jobs(shared).get_mut(&id) {
        e.state = JobState::Quarantined;
        e.bus.publish_event(
            "job.state",
            &[("id", Json::from(id)), ("state", Json::from("quarantined"))],
        );
        e.bus.close();
    }
    shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
    shared.cfg.tracer.warn(
        "serve.job_quarantined",
        &[("job", Json::from(id)), ("suspect_attempts", Json::from(u64::from(crashes)))],
    );
}

enum JobOutcome {
    Done {
        result: Json,
        peak_nodes: u64,
    },
    Failed {
        code: &'static str,
        message: String,
    },
    /// The job panicked; recorded so retry/quarantine accounting and the
    /// stored result stay typed.
    Crashed {
        message: String,
    },
    CancelledByUser,
    CutByShutdown,
}

/// Run one job under its budget and checkpoint directory.
fn execute_job(
    shared: &Shared,
    id: u64,
    spec: &SubmitSpec,
    cancel: &Arc<AtomicBool>,
    bus: &ProgressBus,
) -> JobOutcome {
    if spec.chaos_job() == Some(ChaosJob::Crash) {
        // Inside the catch_unwind fence: exercises crash recording,
        // retry and quarantine without losing the worker thread.
        panic!("chaos: __crash__ panics inside the job fence");
    }
    let mut job = match spec.materialize() {
        Ok(j) => j,
        Err(m) => return JobOutcome::Failed { code: "input-error", message: m },
    };
    // Cancellation is always armed: the per-job flag (live `cancel` op)
    // and the server-wide checkpoint-shutdown flag.
    //
    // The tracer is derived per attempt so this job's progress-relevant
    // records (phase spans, rank.layer, heuristic steps) also land on
    // its own bus for `watch` subscribers, while the daemon-wide sink
    // keeps seeing exactly what it saw before.
    job.tracer = shared.cfg.tracer.with_progress(bus.clone());
    job.budget = Some(
        job.budget
            .take()
            .unwrap_or_default()
            .with_cancel(Arc::clone(cancel))
            .with_cancel(Arc::clone(&shared.shutdown_cancel)),
    );
    if job.mode == JobMode::Strong {
        let ckpt = shared.job_dir(id).join(CKPT_DIR);
        if std::fs::create_dir_all(&ckpt).is_err() {
            return JobOutcome::Failed {
                code: "io-error",
                message: format!("cannot create checkpoint dir {}", ckpt.display()),
            };
        }
        job.checkpoint = Some(JobCheckpoint::auto(ckpt));
    }
    match job.run() {
        Ok(report) => {
            let s = &report.outcome.stats;
            let stats = Json::obj(vec![
                ("candidates", s.candidates.into()),
                ("groups_added", s.groups_added.into()),
                ("max_rank", s.max_rank.into()),
                ("finished_in_pass", u64::from(s.finished_in_pass).into()),
                ("ranking_secs", s.ranking_secs().into()),
                ("scc_secs", s.scc_secs().into()),
                ("total_secs", s.total_secs().into()),
                ("program_nodes", s.program_nodes.into()),
                ("peak_live_nodes", s.peak_live_nodes.into()),
                ("bdd_ticks", s.bdd_ticks.into()),
            ]);
            let result = Json::obj(vec![
                ("ok", true.into()),
                ("state", "done".into()),
                ("id", id.into()),
                ("name", report.name.as_str().into()),
                ("weak", report.weak.into()),
                ("verified", report.verified.into()),
                ("schedule", report.outcome.schedule.to_string().as_str().into()),
                ("recovery", report.outcome.describe_recovery().as_str().into()),
                ("protocol", report.emitted_dsl.as_str().into()),
                ("stats", stats),
            ]);
            JobOutcome::Done { result, peak_nodes: s.peak_live_nodes as u64 }
        }
        Err(JobError::Synthesis(SynthesisError::ResourceExhausted { cause, .. }))
            if cause.resource() == Resource::Cancelled =>
        {
            if cancel.load(Ordering::SeqCst) {
                JobOutcome::CancelledByUser
            } else {
                JobOutcome::CutByShutdown
            }
        }
        Err(JobError::Synthesis(e @ SynthesisError::ResourceExhausted { .. })) => {
            JobOutcome::Failed { code: "budget-exhausted", message: e.to_string() }
        }
        Err(JobError::Synthesis(SynthesisError::Checkpoint(e))) => {
            JobOutcome::Failed { code: "checkpoint-error", message: e.to_string() }
        }
        Err(JobError::Synthesis(e)) => {
            JobOutcome::Failed { code: "synthesis-failed", message: e.to_string() }
        }
        Err(JobError::Input(m)) => JobOutcome::Failed { code: "input-error", message: m },
        Err(JobError::Spec(m)) => JobOutcome::Failed { code: "bad-spec", message: m },
    }
}

fn record_finish(shared: &Shared, id: u64, resumed: bool, run_ms: u64, finished: JobOutcome) {
    let dir = shared.job_dir(id);
    // Close this attempt in the ledger: `cut` keeps a checkpoint-cut run
    // out of the suspect count without marking it clean-finished.
    let closing = if matches!(finished, JobOutcome::CutByShutdown) { "cut" } else { "done" };
    let _ = append_attempt(&dir, closing);
    let spec = lock_jobs(shared).get(&id).map(|e| e.spec.clone());
    let (state, result) = match finished {
        JobOutcome::Done { mut result, peak_nodes } => {
            if let Json::Obj(pairs) = &mut result {
                pairs.push(("run_ms".into(), run_ms.into()));
                pairs.push(("resumed".into(), resumed.into()));
            }
            let _ = write_json_atomic(&dir.join(RESULT_FILE), &result);
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.counters.peak_nodes_max.fetch_max(peak_nodes, Ordering::Relaxed);
            if let Some(spec) = &spec {
                publish_to_store(shared, spec, &dir, Some(&result));
            }
            (JobState::Done, Some(result))
        }
        JobOutcome::Failed { code, message } => {
            let result = failed_result(id, code, &message, run_ms);
            let _ = write_json_atomic(&dir.join(RESULT_FILE), &result);
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            // A budget-exhausted run still committed a correct checkpoint
            // prefix — publish it (without a result) so a resubmission
            // with a bigger budget warm-starts from where this one ran
            // out instead of from scratch.
            if code == "budget-exhausted" {
                if let Some(spec) = &spec {
                    publish_to_store(shared, spec, &dir, None);
                }
            }
            (JobState::Failed, Some(result))
        }
        JobOutcome::Crashed { message } => {
            let result = failed_result(id, "crashed", &message, run_ms);
            let _ = write_json_atomic(&dir.join(RESULT_FILE), &result);
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            (JobState::Failed, Some(result))
        }
        JobOutcome::CancelledByUser => {
            let _ = std::fs::write(dir.join(CANCEL_MARKER), b"cancelled by client\n");
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            (JobState::Cancelled, None)
        }
        // Leave spec + checkpoint untouched: the next daemon resumes it.
        JobOutcome::CutByShutdown => (JobState::Interrupted, None),
    };
    let bus = {
        let mut jobs = lock_jobs(shared);
        match jobs.get_mut(&id) {
            Some(e) => {
                e.state = state.clone();
                e.run_ms = Some(run_ms);
                e.result = result;
                shared
                    .counters
                    .submit_result_hist
                    .observe_us(e.submitted_at.elapsed().as_micros() as u64);
                Some(e.bus.clone())
            }
            None => None,
        }
    };
    // Retention GC runs *before* the terminal frame: a `wait` riding the
    // watch stream wakes the instant the bus closes, so all observable
    // post-completion bookkeeping must already be done by then.
    prune_job_dirs(shared);
    // Terminal frame + close *after* the registry shows the terminal
    // state, so a watcher woken by the close reads a consistent status.
    if let Some(bus) = bus {
        bus.publish_event(
            "job.state",
            &[("id", Json::from(id)), ("state", Json::from(state.name()))],
        );
        bus.close();
    }
}

/// Publish a finished job's artifacts: its terminal result (when it
/// completed) and, for strong jobs, the checkpoint prefix it committed.
/// Quarantined, crashed, cancelled and chaos jobs never reach here.
fn publish_to_store(shared: &Shared, spec: &SubmitSpec, dir: &Path, result: Option<&Json>) {
    let Some(store) = &shared.store else { return };
    if spec.chaos_job().is_some() {
        return;
    }
    let ckpt = dir.join(CKPT_DIR);
    let ckpt_dir = ckpt.is_dir().then_some(ckpt.as_path());
    let result_text = result.map(Json::to_string);
    match store.publish(
        spec.fingerprint(),
        spec.warm_fingerprint(),
        result_text.as_deref(),
        ckpt_dir,
    ) {
        Ok(rep) => {
            if rep.evicted > 0 {
                shared.cfg.tracer.counter("store.evict", rep.evicted);
                shared.cfg.tracer.debug(
                    "store.evict",
                    &[
                        ("evicted", Json::from(rep.evicted)),
                        ("freed_bytes", Json::from(rep.freed_bytes)),
                    ],
                );
            }
        }
        Err(e) => {
            shared
                .cfg
                .tracer
                .warn("store.publish_failed", &[("message", Json::from(e.to_string()))]);
        }
    }
}

/// Retention GC: keep the newest `retain_jobs` completed job
/// directories; prune older ones **only** when their result is
/// published to the store (nothing observable is lost — resubmitting
/// the same content gets the stored result). The persisted idempotency
/// map self-prunes with them: it is rebuilt from surviving `spec.json`
/// files at startup, and the in-memory entries are dropped here.
fn prune_job_dirs(shared: &Shared) {
    let Some(keep) = shared.cfg.retain_jobs else { return };
    let Some(store) = &shared.store else { return };
    // Collect candidates without holding the registry lock across any
    // I/O (and never hold `jobs` and `idem` together: admission takes
    // them in the other order).
    let mut done: Vec<(u64, u64, Option<u64>)> = lock_jobs(shared)
        .iter()
        .filter(|(_, e)| e.state == JobState::Done)
        .map(|(id, e)| (*id, e.spec.fingerprint(), e.spec.idem))
        .collect();
    done.sort_unstable_by_key(|e| std::cmp::Reverse(e.0)); // newest (largest id) first
    let mut pruned: Vec<(u64, Option<u64>)> = Vec::new();
    for &(id, fingerprint, idem) in done.iter().skip(keep) {
        if !store.contains_result(fingerprint) {
            continue;
        }
        if std::fs::remove_dir_all(shared.job_dir(id)).is_ok() {
            pruned.push((id, idem));
        }
    }
    if pruned.is_empty() {
        return;
    }
    {
        let mut idem_map = lock_idem(shared);
        idem_map.retain(|_, mapped| !pruned.iter().any(|&(id, _)| *mapped == id));
    }
    let mut jobs = lock_jobs(shared);
    for &(id, _) in &pruned {
        jobs.remove(&id);
    }
    drop(jobs);
    shared.counters.pruned.fetch_add(pruned.len() as u64, Ordering::Relaxed);
    shared.cfg.tracer.debug("serve.jobs_pruned", &[("count", Json::from(pruned.len() as u64))]);
}

fn failed_result(id: u64, code: &str, message: &str, run_ms: u64) -> Json {
    Json::obj(vec![
        ("ok", false.into()),
        ("state", "failed".into()),
        ("id", id.into()),
        ("code", code.into()),
        ("error", message.into()),
        ("run_ms", run_ms.into()),
    ])
}

/// Reject one over-cap connection with a typed `busy` line, from a
/// bounded pool of short-lived threads (beyond the pool, just drop).
fn reject_busy(shared: &Arc<Shared>, stream: TcpStream, rejectors: &Arc<AtomicUsize>) {
    shared.counters.conn_rejected.fetch_add(1, Ordering::Relaxed);
    shared.cfg.tracer.warn(
        "serve.conn_rejected",
        &[("max_conns", Json::from(shared.cfg.max_conns.max(1) as u64))],
    );
    if rejectors.fetch_add(1, Ordering::SeqCst) >= MAX_REJECTORS {
        rejectors.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    let limit = shared.cfg.max_conns.max(1);
    let rejectors = Arc::clone(rejectors);
    std::thread::spawn(move || {
        let _ = busy_response(stream, limit);
        rejectors.fetch_sub(1, Ordering::SeqCst);
    });
}

/// Read one request line first — so the client's send completes and our
/// answer is not destroyed by a TCP reset on unread data — then answer
/// `busy` and close.
fn busy_response(stream: TcpStream, max_conns: usize) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(1)))?;
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let _ = read_line_bounded(&mut reader, MAX_REQUEST_BYTES);
    let mut writer = stream;
    let resp =
        err_response("busy", &format!("connection limit reached ({max_conns}); retry later"));
    writer.write_all(resp.to_string().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// One client connection: newline-delimited JSON requests in, one JSON
/// response line per request out. Socket deadlines bound every read and
/// write; a connection that idles or stalls past them is reaped.
fn handle_conn(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    if !shared.cfg.io_timeout.is_zero() {
        stream.set_read_timeout(Some(shared.cfg.io_timeout))?;
        stream.set_write_timeout(Some(shared.cfg.io_timeout))?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match read_line_bounded(&mut reader, MAX_REQUEST_BYTES) {
            Ok(None) => return Ok(()), // client closed
            Ok(Some(line)) => line,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Ok(()); // idle or stalled past the deadline: reap
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized or non-UTF-8 frame: the framing is broken
                // beyond recovery, but the error is still typed — answer
                // once, then drop the connection.
                let resp = err_response("bad-request", &e.to_string());
                writer.write_all(resp.to_string().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line) {
            // `watch` is the one streaming verb: it takes the connection
            // over, writes many NDJSON frames (progress, heartbeats, a
            // terminal status frame), then hands back to the request
            // loop. Setup failures still answer with one error line.
            Ok(req) if req.get("op").and_then(Json::as_str) == Some("watch") => {
                match op_watch_stream(shared, &req, &mut writer)? {
                    None => continue,
                    Some(resp) => resp,
                }
            }
            Ok(req) => dispatch(shared, &req),
            Err(e) => err_response("bad-request", &format!("malformed request: {e}")),
        };
        writer.write_all(response.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Interval between `watch` heartbeat frames: half the socket deadline,
/// so a healthy-but-quiet watch (job queued behind others, long fixpoint
/// between rank layers) is never reaped by `--io-timeout`.
fn heartbeat_interval(io_timeout: Duration) -> Duration {
    if io_timeout.is_zero() {
        Duration::from_secs(1)
    } else {
        (io_timeout / 2).max(Duration::from_millis(10))
    }
}

fn write_frame(writer: &mut TcpStream, frame: &str) -> io::Result<()> {
    writer.write_all(frame.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// `watch` op: stream a job's progress frames over the connection.
///
/// Frames (one JSON object per line):
/// - `{"frame":"progress","seq":N,"event":{..trace record..}}`
/// - `{"frame":"gap","missed":N}` — the ring dropped frames (slow reader
///   or late subscribe past the replay window)
/// - `{"frame":"heartbeat","state":S}` — liveness while nothing happens
/// - `{"frame":"status",..full status..}` — terminal; always last
///
/// Returns `Ok(None)` after streaming through the terminal frame, or
/// `Ok(Some(resp))` when setup failed and one error line should be sent
/// instead. An `Err` is a dead connection (the job is unaffected).
fn op_watch_stream(
    shared: &Shared,
    req: &Json,
    writer: &mut TcpStream,
) -> io::Result<Option<Json>> {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return Ok(Some(e)),
    };
    let from_seq = req.get("from_seq").and_then(Json::as_u64);
    let mut rx = {
        let jobs = lock_jobs(shared);
        match jobs.get(&id) {
            None => return Ok(Some(err_response("unknown-job", &format!("no job {id}")))),
            Some(e) => e.bus.subscribe(from_seq),
        }
    };
    let heartbeat = heartbeat_interval(shared.cfg.io_timeout);
    loop {
        match rx.next(heartbeat) {
            Progress::Event { seq, line } => {
                write_frame(
                    writer,
                    &format!("{{\"frame\":\"progress\",\"seq\":{seq},\"event\":{line}}}"),
                )?;
            }
            Progress::Gap { missed } => {
                write_frame(writer, &format!("{{\"frame\":\"gap\",\"missed\":{missed}}}"))?;
            }
            Progress::Idle => {
                // Robustness: if some path made the job terminal without
                // closing its bus, end the stream rather than heartbeat
                // forever. A pruned job also ends here.
                let state = lock_jobs(shared).get(&id).map(|e| e.state.clone());
                match state {
                    Some(s) if !s.terminal() => {
                        let frame = Json::obj(vec![
                            ("frame", "heartbeat".into()),
                            ("state", s.name().into()),
                        ]);
                        write_frame(writer, &frame.to_string())?;
                    }
                    _ => break,
                }
            }
            Progress::Closed => break,
        }
    }
    // Terminal status frame: same shape as `status`, tagged as a frame.
    let mut status = op_status(shared, req);
    if let Json::Obj(pairs) = &mut status {
        pairs.insert(0, ("frame".to_string(), "status".into()));
    }
    write_frame(writer, &status.to_string())?;
    Ok(None)
}

fn err_response(code: &str, message: &str) -> Json {
    error_json(code, message)
}

fn dispatch(shared: &Shared, req: &Json) -> Json {
    match req.get("op").and_then(Json::as_str) {
        Some("submit") => op_submit(shared, req),
        Some("status") => op_status(shared, req),
        Some("result") => op_result(shared, req),
        Some("cancel") => op_cancel(shared, req),
        Some("ping") => op_ping(shared),
        Some("stats") => op_stats(shared),
        Some("metrics") => op_metrics(shared),
        Some("store-stats") => op_store_stats(shared),
        Some("store-gc") => op_store_gc(shared, req),
        Some("shutdown") => op_shutdown(shared, req),
        Some(other) => err_response("bad-request", &format!("unknown op `{other}`")),
        None => err_response("bad-request", "request needs a string `op` field"),
    }
}

/// `ping` op: a minimal liveness probe. It touches no locks and no disk,
/// so a healthy-but-busy daemon still answers it instantly — which is
/// what makes it a usable health signal for a router's prober (probe
/// latency measures the daemon's event loop, not a contended registry).
fn op_ping(shared: &Shared) -> Json {
    Json::obj(vec![
        ("ok", true.into()),
        ("pong", true.into()),
        ("workers", shared.cfg.workers.max(1).into()),
        ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
    ])
}

fn op_submit(shared: &Shared, req: &Json) -> Json {
    if shared.stop.load(Ordering::SeqCst) {
        return err_response("shutting-down", "daemon is shutting down");
    }
    let Some(job_field) = req.get("job") else {
        return err_response("bad-request", "submit needs a `job` object");
    };
    let spec = match SubmitSpec::from_json(job_field) {
        Ok(s) => s,
        Err(m) => return err_response("bad-request", &m),
    };
    // Validate the workload up front so a client learns about a bad
    // protocol now, not from a failed job later.
    if let Err(m) = spec.materialize() {
        return err_response("input-error", &m);
    }
    match spec.idem {
        // Hold the idempotency lock across the whole admission so two
        // racing resubmissions of one key cannot both enqueue.
        Some(key) => {
            let mut idem = lock_idem(shared);
            if let Some(&existing) = idem.get(&key) {
                shared.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Json::obj(vec![
                    ("ok", true.into()),
                    ("id", existing.into()),
                    ("dedup", true.into()),
                ]);
            }
            let resp = admit_job(shared, spec);
            if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                if let Some(id) = resp.get("id").and_then(Json::as_u64) {
                    idem.insert(key, id);
                }
            }
            resp
        }
        None => admit_job(shared, spec),
    }
}

/// Persist, register and enqueue an already-validated submission — or
/// answer it straight from the artifact store when the exact content
/// key has a published result.
fn admit_job(shared: &Shared, spec: SubmitSpec) -> Json {
    if let Some(resp) = store_exact_hit(shared, &spec) {
        return resp;
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let dir = shared.job_dir(id);
    let persisted = std::fs::create_dir_all(&dir)
        .and_then(|()| write_json_atomic(&dir.join(SPEC_FILE), &spec.to_json()));
    if let Err(e) = persisted {
        let _ = std::fs::remove_dir_all(&dir);
        return err_response("io-error", &format!("cannot persist job: {e}"));
    }
    let warm = seed_warm_start(shared, &spec, &dir);
    let priority = spec.priority;
    let mut entry = JobEntry::new(spec);
    entry.warm = warm;
    let bus = entry.bus.clone();
    lock_jobs(shared).insert(id, entry);
    match shared.queue.push(priority, id) {
        Ok(()) => {
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            bus.publish_event(
                "job.state",
                &[
                    ("id", Json::from(id)),
                    ("state", Json::from("queued")),
                    ("warm", Json::from(warm)),
                ],
            );
            Json::obj(vec![("ok", true.into()), ("id", id.into())])
        }
        Err(kind) => {
            lock_jobs(shared).remove(&id);
            let _ = std::fs::remove_dir_all(&dir);
            match kind {
                PushError::Full => {
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    err_response(
                        "queue-full",
                        &format!(
                            "queue is at capacity ({}); retry later",
                            shared.cfg.queue_capacity
                        ),
                    )
                }
                PushError::Closed => err_response("shutting-down", "daemon is shutting down"),
            }
        }
    }
}

/// Answer a submission from the store when its exact content key has a
/// published (CRC-verified) result: the job is registered terminal
/// under a fresh id — persisted like any finished job, so `status`,
/// `result` and restart recovery all see it — without ever queueing.
/// Any store trouble (miss, corruption, I/O) falls through to a normal
/// admission; the store can make a submit cheaper, never break it.
fn store_exact_hit(shared: &Shared, spec: &SubmitSpec) -> Option<Json> {
    let store = shared.store.as_ref()?;
    if spec.chaos_job().is_some() {
        return None;
    }
    let key = spec.fingerprint();
    let text = match store.lookup_result(key) {
        Ok(Some(text)) => text,
        Ok(None) => return None,
        Err(e) => {
            // Typed corruption: the store already evicted the entry.
            shared.cfg.tracer.warn("store.corrupt", &[("message", Json::from(e.to_string()))]);
            return None;
        }
    };
    let Ok(mut result) = Json::parse(&text) else {
        // CRC-verified bytes that fail to parse should be impossible;
        // run the job rather than trust them.
        return None;
    };
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    if let Json::Obj(pairs) = &mut result {
        for (k, v) in pairs.iter_mut() {
            if k == "id" {
                *v = id.into();
            }
        }
        pairs.push(("store".into(), "hit".into()));
    }
    let dir = shared.job_dir(id);
    let persisted = std::fs::create_dir_all(&dir)
        .and_then(|()| write_json_atomic(&dir.join(SPEC_FILE), &spec.to_json()))
        .and_then(|()| write_json_atomic(&dir.join(RESULT_FILE), &result));
    if persisted.is_err() {
        let _ = std::fs::remove_dir_all(&dir);
        return None;
    }
    let mut entry = JobEntry::new(spec.clone());
    entry.queue_ms = Some(0);
    entry.run_ms = Some(0);
    entry.result = Some(result);
    let elapsed_us = entry.submitted_at.elapsed().as_micros() as u64;
    lock_jobs(shared).insert(id, entry.with_state(JobState::Done));
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    // A store hit is still a completed submission: it lands in the
    // submit→result distribution as the near-zero latency it really had.
    shared.counters.submit_result_hist.observe_us(elapsed_us);
    shared.cfg.tracer.counter("store.hit", 1);
    shared.cfg.tracer.debug("store.hit", &[("id", Json::from(id)), ("key", Json::from(key))]);
    Some(Json::obj(vec![("ok", true.into()), ("id", id.into()), ("store", "hit".into())]))
}

/// Seed a freshly admitted strong job's checkpoint directory from the
/// store's best budget-free ("warm") match, so `synthesize_resumable`
/// replays the prior run's committed prefix instead of recomputing it.
/// Returns whether the job runs warm-seeded.
fn seed_warm_start(shared: &Shared, spec: &SubmitSpec, dir: &Path) -> bool {
    let Some(store) = &shared.store else { return false };
    // Weak jobs never checkpoint; chaos markers never synthesize.
    if spec.weak || spec.chaos_job().is_some() {
        return false;
    }
    let ckpt = dir.join(CKPT_DIR);
    match store.seed_checkpoint(spec.warm_fingerprint(), &ckpt) {
        Ok(Some(seed)) => {
            shared.cfg.tracer.counter("store.partial_hit", 1);
            shared.cfg.tracer.debug(
                "store.partial_hit",
                &[
                    ("source_key", Json::from(seed.source_key)),
                    ("ranks", Json::from(u64::from(seed.ranks))),
                ],
            );
            true
        }
        Ok(None) => {
            shared.cfg.tracer.counter("store.miss", 1);
            false
        }
        Err(e) => {
            shared.cfg.tracer.warn("store.corrupt", &[("message", Json::from(e.to_string()))]);
            let _ = std::fs::remove_dir_all(&ckpt);
            false
        }
    }
}

fn req_id(req: &Json) -> Result<u64, Json> {
    req.get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| err_response("bad-request", "request needs an integer `id`"))
}

fn op_status(shared: &Shared, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let jobs = lock_jobs(shared);
    match jobs.get(&id) {
        None => err_response("unknown-job", &format!("no job {id}")),
        Some(e) => {
            let mut pairs: Vec<(&str, Json)> = vec![
                ("ok", true.into()),
                ("id", id.into()),
                ("state", e.state.name().into()),
                ("resumed", e.resumed.into()),
            ];
            if let Some(q) = e.queue_ms {
                pairs.push(("queue_ms", q.into()));
            }
            if let Some(r) = e.run_ms {
                pairs.push(("run_ms", r.into()));
            }
            Json::obj(pairs)
        }
    }
}

fn op_result(shared: &Shared, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let jobs = lock_jobs(shared);
    match jobs.get(&id) {
        None => err_response("unknown-job", &format!("no job {id}")),
        Some(e) => match (&e.state, &e.result) {
            (JobState::Done | JobState::Failed, Some(r)) => r.clone(),
            (JobState::Cancelled, _) => err_response("cancelled", "job was cancelled"),
            (JobState::Quarantined, _) => err_response(
                "quarantined",
                "job crashed its worker too many times and was quarantined",
            ),
            (JobState::Interrupted, _) => {
                err_response("interrupted", "job was checkpointed by a shutdown; resubmit-free resume happens on the next daemon start")
            }
            (state, _) => {
                let mut resp = err_response("not-finished", "job has not finished");
                if let Json::Obj(pairs) = &mut resp {
                    pairs.push(("state".into(), state.name().into()));
                }
                resp
            }
        },
    }
}

fn op_cancel(shared: &Shared, req: &Json) -> Json {
    let id = match req_id(req) {
        Ok(id) => id,
        Err(e) => return e,
    };
    let mut jobs = lock_jobs(shared);
    match jobs.get_mut(&id) {
        None => err_response("unknown-job", &format!("no job {id}")),
        Some(e) => {
            match e.state {
                JobState::Queued => {
                    // Never ran: mark terminal directly; the worker skips
                    // non-Queued ids it pops.
                    e.state = JobState::Cancelled;
                    e.user_cancelled = true;
                    let _ = std::fs::write(
                        shared.job_dir(id).join(CANCEL_MARKER),
                        b"cancelled by client (queued)\n",
                    );
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    e.bus.publish_event(
                        "job.state",
                        &[("id", Json::from(id)), ("state", Json::from("cancelled"))],
                    );
                    e.bus.close();
                }
                JobState::Running => {
                    // Cooperative: the job's budget polls this flag and
                    // aborts within one tick-check interval.
                    e.user_cancelled = true;
                    e.cancel.store(true, Ordering::SeqCst);
                }
                _ => {} // already terminal: no-op
            }
            Json::obj(vec![
                ("ok", true.into()),
                ("id", id.into()),
                ("state", e.state.name().into()),
            ])
        }
    }
}

/// Jobs currently parked in quarantine (registry scan).
fn quarantined_now(shared: &Shared) -> usize {
    lock_jobs(shared).values().filter(|e| e.state == JobState::Quarantined).count()
}

fn op_stats(shared: &Shared) -> Json {
    let c = &shared.counters;
    let busy = shared.busy.load(Ordering::SeqCst);
    let workers = shared.cfg.workers.max(1);
    let mut pairs = Json::obj(vec![
        ("ok", true.into()),
        ("accepted", c.accepted.load(Ordering::Relaxed).into()),
        ("rejected", c.rejected.load(Ordering::Relaxed).into()),
        ("completed", c.completed.load(Ordering::Relaxed).into()),
        ("failed", c.failed.load(Ordering::Relaxed).into()),
        ("cancelled", c.cancelled.load(Ordering::Relaxed).into()),
        ("resumed", c.resumed.load(Ordering::Relaxed).into()),
        ("crashed", c.crashed.load(Ordering::Relaxed).into()),
        ("quarantined", quarantined_now(shared).into()),
        ("dedup_hits", c.dedup_hits.load(Ordering::Relaxed).into()),
        ("conn_rejected", c.conn_rejected.load(Ordering::Relaxed).into()),
        ("worker_respawns", c.worker_respawns.load(Ordering::Relaxed).into()),
        ("conns", shared.conns.load(Ordering::SeqCst).into()),
        ("queue_depth", shared.queue.len().into()),
        ("running", busy.into()),
        ("workers", workers.into()),
        ("live_workers", shared.live_workers.load(Ordering::SeqCst).into()),
        ("utilization", (busy as f64 / workers as f64).into()),
        ("peak_nodes_max", c.peak_nodes_max.load(Ordering::Relaxed).into()),
        ("queue_wait_ms_total", c.queue_wait_ms_total.load(Ordering::Relaxed).into()),
        ("run_ms_total", c.run_ms_total.load(Ordering::Relaxed).into()),
        ("latency", latency_json(c)),
        ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
    ]);
    if let (Json::Obj(obj), Some(store)) = (&mut pairs, &shared.store) {
        let s = store.stats();
        obj.push(("store_enabled".into(), true.into()));
        obj.push(("store_entries".into(), s.entries.into()));
        obj.push(("store_bytes".into(), s.bytes.into()));
        obj.push(("store_cap_bytes".into(), s.cap_bytes.into()));
        obj.push(("store_hits".into(), s.hits.into()));
        obj.push(("store_partial_hits".into(), s.partial_hits.into()));
        obj.push(("store_misses".into(), s.misses.into()));
        obj.push(("store_evictions".into(), s.evictions.into()));
        obj.push(("store_corrupt_dropped".into(), s.corrupt_dropped.into()));
        obj.push(("store_publishes".into(), s.publishes.into()));
        obj.push(("jobs_pruned".into(), c.pruned.load(Ordering::Relaxed).into()));
    }
    pairs
}

/// The `latency` block of `stats`: raw (non-cumulative) bucket arrays
/// plus sum/count for each distribution, in the fixed
/// [`stsyn_obs::metrics::LATENCY_BUCKET_BOUNDS_US`] layout — what the
/// router sums element-wise into the `stsyn_fleet_*` histograms.
fn latency_json(c: &Counters) -> Json {
    Json::obj(vec![
        (
            "bounds_us",
            Json::Arr(
                stsyn_obs::metrics::LATENCY_BUCKET_BOUNDS_US
                    .iter()
                    .map(|&b| Json::from(b))
                    .collect(),
            ),
        ),
        ("queue_wait", c.queue_wait_hist.snapshot().to_json()),
        ("run", c.run_hist.snapshot().to_json()),
        ("submit_to_result", c.submit_result_hist.snapshot().to_json()),
    ])
}

/// `metrics` op: the same counters and gauges as `stats`, rendered as
/// Prometheus text-format exposition (returned in the `metrics` field so
/// the response stays one JSON line on the wire).
fn op_metrics(shared: &Shared) -> Json {
    let c = &shared.counters;
    let busy = shared.busy.load(Ordering::SeqCst);
    let workers = shared.cfg.workers.max(1);
    let mut m = MetricsText::new();
    m.counter(
        "stsyn_jobs_accepted_total",
        "Submissions admitted to the queue",
        c.accepted.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_rejected_total",
        "Submissions rejected by backpressure",
        c.rejected.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_completed_total",
        "Jobs finished successfully",
        c.completed.load(Ordering::Relaxed),
    )
    .counter("stsyn_jobs_failed_total", "Jobs that failed", c.failed.load(Ordering::Relaxed))
    .counter(
        "stsyn_jobs_cancelled_total",
        "Jobs cancelled by a client",
        c.cancelled.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_resumed_total",
        "Jobs re-enqueued from a checkpoint journal",
        c.resumed.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_crashed_total",
        "Job attempts that panicked or killed their worker",
        c.crashed.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_jobs_quarantined_total",
        "Jobs moved to quarantine by this daemon",
        c.quarantined.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_conns_rejected_total",
        "Connections rejected at the connection cap",
        c.conn_rejected.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_worker_respawns_total",
        "Dead worker threads respawned by the supervisor",
        c.worker_respawns.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_submit_dedup_total",
        "Submissions answered from the idempotency map",
        c.dedup_hits.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_queue_wait_ms_total",
        "Milliseconds claimed jobs spent queued",
        c.queue_wait_ms_total.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_run_ms_total",
        "Milliseconds workers spent running jobs",
        c.run_ms_total.load(Ordering::Relaxed),
    )
    .gauge("stsyn_queue_depth", "Jobs currently queued", shared.queue.len() as f64)
    .gauge(
        "stsyn_quarantined_jobs",
        "Jobs currently parked in quarantine",
        quarantined_now(shared) as f64,
    )
    .gauge(
        "stsyn_conns_open",
        "Open client connections",
        shared.conns.load(Ordering::SeqCst) as f64,
    )
    .gauge("stsyn_workers_busy", "Workers currently running a job", busy as f64)
    .gauge("stsyn_workers", "Worker pool size", workers as f64)
    .gauge(
        "stsyn_workers_live",
        "Worker threads currently alive",
        shared.live_workers.load(Ordering::SeqCst) as f64,
    )
    .gauge("stsyn_worker_utilization", "Busy workers over pool size", busy as f64 / workers as f64)
    .histogram(
        "stsyn_queue_wait_seconds",
        "Queue-wait latency distribution of claimed jobs",
        &c.queue_wait_hist.snapshot(),
    )
    .histogram(
        "stsyn_run_seconds",
        "Run-time distribution of finished job attempts",
        &c.run_hist.snapshot(),
    )
    .histogram(
        "stsyn_submit_to_result_seconds",
        "Submission-to-terminal-state latency distribution",
        &c.submit_result_hist.snapshot(),
    )
    .gauge(
        "stsyn_peak_nodes_max",
        "Largest per-job peak live BDD node count",
        c.peak_nodes_max.load(Ordering::Relaxed) as f64,
    )
    .gauge("stsyn_uptime_seconds", "Daemon uptime", shared.started.elapsed().as_secs_f64());
    if let Some(store) = &shared.store {
        let s = store.stats();
        m.counter("stsyn_store_hits_total", "Submissions answered from the artifact store", s.hits)
            .counter(
                "stsyn_store_partial_hits_total",
                "Jobs warm-started from a stored checkpoint prefix",
                s.partial_hits,
            )
            .counter("stsyn_store_misses_total", "Store lookups that found nothing", s.misses)
            .counter("stsyn_store_evictions_total", "Store entries evicted (LRU/GC)", s.evictions)
            .counter(
                "stsyn_store_corrupt_dropped_total",
                "Store entries dropped after failing CRC verification",
                s.corrupt_dropped,
            )
            .counter("stsyn_store_publishes_total", "Artifacts published to the store", s.publishes)
            .counter(
                "stsyn_jobs_pruned_total",
                "Completed job directories removed by retention GC",
                shared.counters.pruned.load(Ordering::Relaxed),
            )
            .gauge("stsyn_store_entries", "Live artifact store entries", s.entries as f64)
            .gauge("stsyn_store_bytes", "Artifact store footprint in bytes", s.bytes as f64)
            .gauge(
                "stsyn_store_cap_bytes",
                "Configured store byte cap (0 = unbounded)",
                s.cap_bytes as f64,
            );
    }
    Json::obj(vec![("ok", true.into()), ("metrics", m.render().into())])
}

/// `store-stats` op: the artifact store's counters and footprint.
fn op_store_stats(shared: &Shared) -> Json {
    let Some(store) = &shared.store else {
        return err_response(
            "store-disabled",
            "no artifact store configured (start with --store-dir)",
        );
    };
    let s = store.stats();
    Json::obj(vec![
        ("ok", true.into()),
        ("entries", s.entries.into()),
        ("bytes", s.bytes.into()),
        ("cap_bytes", s.cap_bytes.into()),
        ("hits", s.hits.into()),
        ("partial_hits", s.partial_hits.into()),
        ("misses", s.misses.into()),
        ("evictions", s.evictions.into()),
        ("corrupt_dropped", s.corrupt_dropped.into()),
        ("publishes", s.publishes.into()),
        ("jobs_pruned", shared.counters.pruned.load(Ordering::Relaxed).into()),
    ])
}

/// `store-gc` op: evict LRU entries down to the configured cap, or to
/// an explicit `cap_bytes` override carried in the request.
fn op_store_gc(shared: &Shared, req: &Json) -> Json {
    let Some(store) = &shared.store else {
        return err_response(
            "store-disabled",
            "no artifact store configured (start with --store-dir)",
        );
    };
    let cap = req.get("cap_bytes").and_then(Json::as_u64);
    match store.gc(cap) {
        Ok(rep) => {
            if rep.evicted > 0 {
                shared.cfg.tracer.counter("store.evict", rep.evicted);
            }
            Json::obj(vec![
                ("ok", true.into()),
                ("evicted", rep.evicted.into()),
                ("freed_bytes", rep.freed_bytes.into()),
                ("entries", rep.entries.into()),
                ("bytes", rep.bytes.into()),
            ])
        }
        Err(e) => err_response("io-error", &format!("store gc failed: {e}")),
    }
}

fn op_shutdown(shared: &Shared, req: &Json) -> Json {
    let mode = match req.get("mode").and_then(Json::as_str) {
        None | Some("drain") => ShutdownMode::Drain,
        Some("checkpoint") => ShutdownMode::Checkpoint,
        Some(other) => {
            return err_response("bad-request", &format!("unknown shutdown mode `{other}`"))
        }
    };
    shared.begin_shutdown(mode);
    Json::obj(vec![
        ("ok", true.into()),
        (
            "mode",
            match mode {
                ShutdownMode::Drain => "drain".into(),
                ShutdownMode::Checkpoint => "checkpoint".into(),
            },
        ),
    ])
}
