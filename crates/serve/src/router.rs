//! `stsyn route` — a sharded, failover-capable front door for a fleet of
//! `stsyn serve` daemons.
//!
//! One daemon is one failure domain. The router makes N of them look
//! like one service that keeps serving when any single daemon dies:
//!
//! ```text
//!                        ┌─ probe ─▶ shard 0 (stsyn serve)
//!  clients ──▶ router ───┼─ probe ─▶ shard 1 (stsyn serve)
//!   NDJSON     hash ring └─ probe ─▶ shard 2 (stsyn serve)
//! ```
//!
//! ## Routing
//!
//! Every submission carries an idempotency key (client-derived, or
//! derived here for bare submissions). A consistent [`HashRing`] with
//! [`HashRing::VNODES`] virtual points per shard maps the key to a home
//! shard, so identical workloads from different clients land on the same
//! daemon and its server-side dedup collapses them. Removing a shard
//! from the candidate set remaps only the keys that lived on it — the
//! ring's minimal-disruption property, asserted by this module's tests.
//!
//! ## Probe state machine
//!
//! A prober thread sends the `ping` verb to every shard each
//! `probe_interval` and classifies:
//!
//! ```text
//!            fast pong                    pong slower than
//!          ┌───────────┐                 `degraded_latency`
//!          ▼           │               ┌─────────────────┐
//!        ┌────┐      ┌─┴──────────┐    ▼                 │
//!        │ Up │─────▶│  Degraded  │────┘   ≥ `down_after` consecutive
//!        └────┘ any  └────────────┘        failures (probe *or* forward)
//!          ▲    failure    │                        │
//!          │               ▼                        ▼
//!          │           ┌──────┐                ┌──────┐
//!          └───────────│ Down │◀───────────────│ Down │
//!            next pong └──────┘                └──────┘
//! ```
//!
//! `Up` and `Degraded` shards serve traffic (`Degraded` is a warning
//! visible in `fleet-stats`); `Down` shards are excluded from the ring
//! walk. One successful pong re-adopts a `Down` shard — no restart, no
//! config push: from any reachable fault state the fleet converges back
//! to a legitimate serving state by itself, the systems analogue of the
//! self-stabilization this repository synthesizes.
//!
//! ## Failover via idempotency
//!
//! When a job's home shard dies, a `status`/`result`/`wait` lookup fails
//! the job over: the router resubmits the *same spec under the same
//! idempotency key* to the next surviving shard on the ring. That is
//! safe precisely because of the existing guarantees: resubmitting a key
//! a daemon has already admitted dedups server-side (no duplicate work
//! per shard), and synthesis is deterministic, so whichever shard
//! ultimately runs the job produces byte-identical results. Under a
//! partition the old shard may finish its copy too — wasted cycles, but
//! never a client-visible duplicate and never divergent bytes. A `cancel`
//! aimed at a dead shard is the one operation that cannot fail over
//! (there is nothing live to cancel); it answers a typed
//! [`crate::wire::CODE_DEGRADED`] error instead of hanging, and when no
//! shard is reachable at all, every operation answers
//! [`crate::wire::CODE_NO_SHARDS`]. Both map to CLI exit code 8.

use crate::client::{Client, ClientError, RetryPolicy};
use crate::json::Json;
use crate::wire::{
    error_json, fold_idem, read_line_bounded, SubmitSpec, CODE_DEGRADED, CODE_NO_SHARDS,
    MAX_REQUEST_BYTES,
};
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stsyn_obs::{HistogramSnapshot, MetricsText, Tracer};

/// splitmix64 finalizer: a bijective avalanche mix, so distinct inputs
/// give distinct ring points and key hashes spread uniformly.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring over shard indices.
///
/// Each shard owns [`HashRing::VNODES`] pseudo-random points on the u64
/// circle; a key belongs to the shard owning the first point at or after
/// the key's hash (wrapping). Virtual points keep the load balanced; the
/// successor rule gives minimal disruption — when a shard is excluded,
/// only its keys move, each to the next surviving point.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Virtual points per shard. 128 keeps the worst shard within a few
    /// tens of percent of the fair share (asserted by tests) while the
    /// whole ring for a realistic fleet still fits in a few KiB.
    pub const VNODES: usize = 128;

    /// A ring over shards `0..shards`.
    pub fn new(shards: usize) -> HashRing {
        let mut points = Vec::with_capacity(shards * Self::VNODES);
        for s in 0..shards {
            for v in 0..Self::VNODES {
                // mix64 is bijective and the inputs are distinct, so no
                // two points collide.
                points.push((mix64(((s as u64) << 32) | v as u64), s));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The key's home shard (`None` only for an empty ring).
    pub fn shard_for(&self, key: u64) -> Option<usize> {
        self.shard_for_available(key, |_| true)
    }

    /// The first shard at or after the key's ring position for which
    /// `available` holds — the home shard when it is available, otherwise
    /// the deterministic failover target. `None` when no shard qualifies.
    pub fn shard_for_available<F: Fn(usize) -> bool>(
        &self,
        key: u64,
        available: F,
    ) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        for i in 0..n {
            let (_, shard) = self.points[(start + i) % n];
            if available(shard) {
                return Some(shard);
            }
        }
        None
    }
}

/// A shard's health as seen by the router's prober.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Answering probes promptly; serves traffic.
    Up,
    /// Suspect: slow pongs or recent failures below the down threshold.
    /// Still serves traffic, flagged in `fleet-stats`.
    Degraded,
    /// Unreachable: excluded from routing until a probe succeeds again.
    Down,
}

impl ShardHealth {
    fn from_u8(v: u8) -> ShardHealth {
        match v {
            0 => ShardHealth::Up,
            1 => ShardHealth::Degraded,
            _ => ShardHealth::Down,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ShardHealth::Up => 0,
            ShardHealth::Degraded => 1,
            ShardHealth::Down => 2,
        }
    }

    /// Wire/stats name.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Degraded => "degraded",
            ShardHealth::Down => "down",
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend daemon addresses — one entry per shard, order defines
    /// shard indices.
    pub shards: Vec<String>,
    /// How often the prober pings every shard.
    pub probe_interval: Duration,
    /// Per-probe connect/read deadline; a probe slower than this is a
    /// failure.
    pub probe_timeout: Duration,
    /// Consecutive failures (probe or forward) that mark a shard `Down`.
    pub down_after: u32,
    /// Pong latency above this marks a shard `Degraded`.
    pub degraded_latency: Duration,
    /// Read/write deadline on client-facing sockets (zero disables).
    pub io_timeout: Duration,
    /// Deadline on each router→shard request.
    pub shard_io_timeout: Duration,
    /// Tracer for router diagnostics (`route.*` events).
    pub tracer: Tracer,
}

impl RouterConfig {
    /// Loopback defaults over the given shard addresses.
    pub fn new(shards: Vec<String>) -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            down_after: 3,
            degraded_latency: Duration::from_millis(250),
            io_timeout: Duration::from_secs(30),
            shard_io_timeout: Duration::from_secs(10),
            tracer: Tracer::to_stderr(stsyn_obs::TraceLevel::Warn),
        }
    }
}

/// Router-local counters (the fleet's job counters live on the shards;
/// `fleet-stats` aggregates both).
#[derive(Debug, Default)]
struct RouterCounters {
    /// Submissions admitted (a router id was created).
    accepted: AtomicU64,
    /// Submissions answered from the router's idempotency map.
    dedup_hits: AtomicU64,
    /// Jobs resubmitted to a surviving shard after their home shard died.
    failovers: AtomicU64,
    /// Requests answered `no-shards` (no shard available at all).
    no_shards: AtomicU64,
    /// Requests answered `degraded` (home shard down, no failover path).
    degraded: AtomicU64,
    /// Requests forwarded to a shard.
    forwarded: AtomicU64,
    /// Forwards that failed at the transport layer.
    forward_errors: AtomicU64,
}

struct ShardState {
    addr: String,
    health: AtomicU8,
    consec_failures: AtomicU32,
    last_latency_us: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    /// Times this shard transitioned to `Down`.
    went_down: AtomicU64,
}

impl ShardState {
    fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.health.load(Ordering::SeqCst))
    }
}

/// Where the router believes one admitted job lives.
struct RouteEntry {
    /// The spec as forwarded — `idem` is always set, which is what makes
    /// failover resubmission safe.
    spec: SubmitSpec,
    shard: usize,
    /// The job id *on that shard* (shard ids are per-daemon; clients only
    /// ever see router ids).
    shard_id: u64,
    failovers: u32,
}

struct Shared {
    cfg: RouterConfig,
    ring: HashRing,
    shards: Vec<ShardState>,
    jobs: Mutex<HashMap<u64, RouteEntry>>,
    /// Idempotency key → router id: retried and duplicate submissions
    /// collapse here before any shard is touched.
    idem: Mutex<HashMap<u64, u64>>,
    next_id: AtomicU64,
    counters: RouterCounters,
    stop: AtomicBool,
    started: Instant,
    /// Salt for auto-derived idempotency keys of bare submissions.
    salt: u64,
    seq: AtomicU64,
}

fn lock_jobs(shared: &Shared) -> MutexGuard<'_, HashMap<u64, RouteEntry>> {
    shared.jobs.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_idem(shared: &Shared) -> MutexGuard<'_, HashMap<u64, u64>> {
    shared.idem.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running router. Stop it with [`RouterHandle::shutdown`] then
/// [`RouterHandle::join`].
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    prober: JoinHandle<()>,
}

impl RouterHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shard's current health, for tests and tooling.
    pub fn shard_health(&self, shard: usize) -> Option<ShardHealth> {
        self.shared.shards.get(shard).map(ShardState::health)
    }

    /// Initiate shutdown (same path as the wire `shutdown` op). Only the
    /// router stops; the shard daemons are independent processes.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the acceptor and prober to exit.
    pub fn join(self) {
        let _ = self.prober.join();
        let _ = self.acceptor.join();
    }
}

/// The fleet front door.
pub struct Router;

impl Router {
    /// Start the router: bind the listener, spawn the prober and the
    /// acceptor. Fails if no shards were configured.
    pub fn start(cfg: RouterConfig) -> io::Result<RouterHandle> {
        if cfg.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shards = cfg
            .shards
            .iter()
            .map(|a| ShardState {
                addr: a.clone(),
                // Optimistic start: shards are assumed Up until the first
                // probe cycle says otherwise, so a router fronting a
                // healthy fleet serves from its first request.
                health: AtomicU8::new(ShardHealth::Up.as_u8()),
                consec_failures: AtomicU32::new(0),
                last_latency_us: AtomicU64::new(0),
                probes_ok: AtomicU64::new(0),
                probes_failed: AtomicU64::new(0),
                went_down: AtomicU64::new(0),
            })
            .collect::<Vec<_>>();
        let ring = HashRing::new(shards.len());
        let salt = {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| u64::from(d.subsec_nanos()) ^ d.as_secs())
                .unwrap_or(0);
            mix64(nanos ^ (u64::from(std::process::id()) << 32))
        };
        let shared = Arc::new(Shared {
            ring,
            shards,
            jobs: Mutex::new(HashMap::new()),
            idem: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            counters: RouterCounters::default(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            salt,
            seq: AtomicU64::new(0),
            cfg,
        });

        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || prober_loop(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || {
                            let _ = handle_conn(&shared, stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            })
        };
        Ok(RouterHandle { addr, shared, acceptor, prober })
    }
}

// ------------------------------------------------------------- probing

fn prober_loop(shared: &Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        for i in 0..shared.shards.len() {
            probe_shard(shared, i);
        }
        // Sleep in small slices so shutdown stays responsive.
        let mut left = shared.cfg.probe_interval;
        while !left.is_zero() {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let slice = left.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            left -= slice;
        }
    }
}

fn probe_shard(shared: &Shared, i: usize) {
    let started = Instant::now();
    match ping_once(&shared.shards[i].addr, shared.cfg.probe_timeout) {
        Ok(()) => record_probe_ok(shared, i, started.elapsed()),
        Err(_) => record_failure(shared, i, "probe"),
    }
}

/// One `ping` round trip under a hard deadline, on a dedicated
/// connection (never the forwarding path — a probe must measure the
/// daemon, not the router's own queues).
fn ping_once(addr: &str, timeout: Duration) -> io::Result<()> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable shard addr"))?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"{\"op\":\"ping\"}\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let line = read_line_bounded(&mut reader, MAX_REQUEST_BYTES)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "shard closed on ping"))?;
    let v = Json::parse(&line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if v.get("pong").and_then(Json::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(io::Error::new(io::ErrorKind::InvalidData, "peer did not pong"))
    }
}

fn record_probe_ok(shared: &Shared, i: usize, latency: Duration) {
    let shard = &shared.shards[i];
    shard.consec_failures.store(0, Ordering::SeqCst);
    shard.last_latency_us.store(latency.as_micros() as u64, Ordering::Relaxed);
    shard.probes_ok.fetch_add(1, Ordering::Relaxed);
    let new =
        if latency > shared.cfg.degraded_latency { ShardHealth::Degraded } else { ShardHealth::Up };
    let old = ShardHealth::from_u8(shard.health.swap(new.as_u8(), Ordering::SeqCst));
    if old == ShardHealth::Down {
        // Automatic re-adoption: the shard rejoins the ring with no
        // operator action.
        shared.cfg.tracer.warn(
            "route.shard_readopted",
            &[
                ("shard", Json::from(i as u64)),
                ("addr", Json::from(shard.addr.as_str())),
                ("latency_us", Json::from(latency.as_micros() as u64)),
            ],
        );
    } else if old != new && new == ShardHealth::Degraded {
        shared.cfg.tracer.warn(
            "route.shard_degraded",
            &[
                ("shard", Json::from(i as u64)),
                ("latency_us", Json::from(latency.as_micros() as u64)),
            ],
        );
    }
}

/// Record one failed interaction (probe or forward) with a shard and
/// advance its health state machine.
fn record_failure(shared: &Shared, i: usize, source: &'static str) {
    let shard = &shared.shards[i];
    if source == "probe" {
        shard.probes_failed.fetch_add(1, Ordering::Relaxed);
    }
    let consec = shard.consec_failures.fetch_add(1, Ordering::SeqCst) + 1;
    let new = if consec >= shared.cfg.down_after.max(1) {
        ShardHealth::Down
    } else {
        ShardHealth::Degraded
    };
    let old = ShardHealth::from_u8(shard.health.swap(new.as_u8(), Ordering::SeqCst));
    if new == ShardHealth::Down && old != ShardHealth::Down {
        shard.went_down.fetch_add(1, Ordering::Relaxed);
        shared.cfg.tracer.warn(
            "route.shard_down",
            &[
                ("shard", Json::from(i as u64)),
                ("addr", Json::from(shard.addr.as_str())),
                ("consec_failures", Json::from(u64::from(consec))),
                ("source", Json::from(source)),
            ],
        );
    }
}

// ---------------------------------------------------------- forwarding

/// One request to one shard on a fresh connection. A single transport
/// retry rides on the client's policy; rejections come back as
/// `Rejected` untouched.
fn shard_request(shared: &Shared, i: usize, req: &Json) -> Result<Json, ClientError> {
    shared.counters.forwarded.fetch_add(1, Ordering::Relaxed);
    let policy = RetryPolicy {
        max_retries: 1,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(100),
        io_timeout: Some(shared.cfg.shard_io_timeout),
        seed: Some(mix64(shared.salt ^ i as u64)),
    };
    let result = Client::connect_with(shared.shards[i].addr.as_str(), policy)
        .and_then(|mut c| c.request(req));
    // Transport-level trouble counts against the shard's health, so a
    // dead daemon is discovered at request time, not only at the next
    // probe cycle. A typed rejection is the daemon *answering*.
    if let Err(ClientError::Io(_) | ClientError::Protocol(_)) = &result {
        shared.counters.forward_errors.fetch_add(1, Ordering::Relaxed);
        record_failure(shared, i, "forward");
    }
    result
}

/// Shards currently eligible for new work.
fn shard_available(shared: &Shared, i: usize) -> bool {
    shared.shards[i].health() != ShardHealth::Down
}

/// Forward a submit to the key's home shard, walking the ring past
/// shards that are down or fail the forward. Returns the shard index and
/// the shard's response.
fn forward_submit(shared: &Shared, key: u64, spec: &SubmitSpec) -> Result<(usize, Json), Json> {
    let req = Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())]);
    let mut tried = vec![false; shared.shards.len()];
    loop {
        let Some(target) =
            shared.ring.shard_for_available(key, |s| !tried[s] && shard_available(shared, s))
        else {
            shared.counters.no_shards.fetch_add(1, Ordering::Relaxed);
            return Err(error_json(
                CODE_NO_SHARDS,
                "no shard available to accept the submission; the fleet is down or unreachable",
            ));
        };
        tried[target] = true;
        match shard_request(shared, target, &req) {
            Ok(resp) => return Ok((target, resp)),
            Err(ClientError::Rejected { code, message }) => {
                // The shard is alive and said no (queue-full, input-error,
                // shutting-down, ...): pass its typed answer through.
                return Err(error_json(&code, &message));
            }
            Err(_) => continue, // transport failure: try the next shard
        }
    }
}

// ------------------------------------------------------------- serving

fn handle_conn(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    if !shared.cfg.io_timeout.is_zero() {
        stream.set_read_timeout(Some(shared.cfg.io_timeout))?;
        stream.set_write_timeout(Some(shared.cfg.io_timeout))?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match read_line_bounded(&mut reader, MAX_REQUEST_BYTES) {
            Ok(None) => return Ok(()),
            Ok(Some(line)) => line,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let resp = error_json("bad-request", &e.to_string());
                writer.write_all(resp.to_string().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line) {
            // `watch` streams many frames on this connection instead of
            // one response line, so it bypasses the one-shot dispatch.
            Ok(req) if req.get("op").and_then(Json::as_str) == Some("watch") => {
                match op_watch_proxy(shared, &req, &mut writer)? {
                    None => continue,
                    Some(resp) => resp,
                }
            }
            Ok(req) => dispatch(shared, &req),
            Err(e) => error_json("bad-request", &format!("malformed request: {e}")),
        };
        writer.write_all(response.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

fn dispatch(shared: &Shared, req: &Json) -> Json {
    match req.get("op").and_then(Json::as_str) {
        Some("submit") => op_submit(shared, req),
        Some(op @ ("status" | "result" | "cancel")) => op_job(shared, req, op),
        Some("wait") => op_wait(shared, req),
        Some("ping") => Json::obj(vec![
            ("ok", true.into()),
            ("pong", true.into()),
            ("role", "router".into()),
            ("shards", (shared.shards.len() as u64).into()),
            ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
        ]),
        Some("stats") => op_router_stats(shared),
        Some("fleet-stats") => op_fleet_stats(shared),
        Some("metrics" | "fleet-metrics") => op_fleet_metrics(shared),
        Some(op @ ("store-stats" | "store-gc")) => op_store_fanout(shared, req, op),
        Some("shutdown") => {
            shared.stop.store(true, Ordering::SeqCst);
            Json::obj(vec![("ok", true.into()), ("role", "router".into())])
        }
        Some(other) => error_json("bad-request", &format!("unknown op `{other}`")),
        None => error_json("bad-request", "request needs a string `op` field"),
    }
}

fn op_submit(shared: &Shared, req: &Json) -> Json {
    if shared.stop.load(Ordering::SeqCst) {
        return error_json("shutting-down", "router is shutting down");
    }
    let Some(job_field) = req.get("job") else {
        return error_json("bad-request", "submit needs a `job` object");
    };
    let mut spec = match SubmitSpec::from_json(job_field) {
        Ok(s) => s,
        Err(m) => return error_json("bad-request", &m),
    };
    // Every routed submission carries an idempotency key: it is both the
    // ring key and the failover safety argument. A bare submission gets a
    // per-submission key (distinct across submissions, like the client's
    // own derivation).
    let key = match spec.idem {
        Some(k) => k,
        None => {
            let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
            let k = fold_idem(spec.fingerprint() ^ mix64(shared.salt.wrapping_add(seq)));
            spec.idem = Some(k);
            k
        }
    };
    // Hold the idempotency lock across admission so two racing
    // resubmissions of one key cannot both reach a shard.
    let mut idem = lock_idem(shared);
    if let Some(&existing) = idem.get(&key) {
        shared.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
        return Json::obj(vec![
            ("ok", true.into()),
            ("id", existing.into()),
            ("dedup", true.into()),
        ]);
    }
    let (shard, resp) = match forward_submit(shared, key, &spec) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let Some(shard_id) = resp.get("id").and_then(Json::as_u64) else {
        return error_json("bad-gateway", "shard's submit response lacks an id");
    };
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    lock_jobs(shared).insert(id, RouteEntry { spec, shard, shard_id, failovers: 0 });
    idem.insert(key, id);
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    let mut pairs =
        vec![("ok", Json::from(true)), ("id", id.into()), ("shard", (shard as u64).into())];
    if resp.get("dedup").and_then(Json::as_bool) == Some(true) {
        // The shard already knew this key (e.g. re-route after a router
        // restart): surface the shard-side dedup too.
        pairs.push(("dedup", true.into()));
    }
    if let Some(hit) = resp.get("store").and_then(Json::as_str) {
        // The shard answered from its artifact store: surface that so
        // clients and benches can tell a cache hit from a synthesis.
        pairs.push(("store", hit.into()));
    }
    Json::obj(pairs)
}

/// Resubmit a tracked job to a surviving shard after its home shard
/// died. Same spec, same idempotency key — the shard-side dedup and the
/// determinism of synthesis make this exactly-once from the client's
/// point of view. Returns the new `(shard, shard_id)`.
fn failover(shared: &Shared, id: u64, dead: usize) -> Result<(usize, u64), Json> {
    let spec = match lock_jobs(shared).get(&id) {
        Some(e) => e.spec.clone(),
        None => return Err(error_json("unknown-job", &format!("no job {id}"))),
    };
    let key = spec.idem.unwrap_or_default();
    // The ring walk naturally skips the dead shard (it is Down); exclude
    // it explicitly too in case its health flapped back mid-failover.
    let result = {
        let req = Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())]);
        let mut tried = vec![false; shared.shards.len()];
        tried[dead] = true;
        loop {
            let Some(target) =
                shared.ring.shard_for_available(key, |s| !tried[s] && shard_available(shared, s))
            else {
                break None;
            };
            tried[target] = true;
            match shard_request(shared, target, &req) {
                Ok(resp) => break Some((target, resp)),
                Err(ClientError::Rejected { code, message }) => {
                    return Err(error_json(&code, &message))
                }
                Err(_) => continue,
            }
        }
    };
    let Some((target, resp)) = result else {
        shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
        return Err(error_json(
            CODE_DEGRADED,
            &format!("job {id}'s shard is down and no surviving shard can adopt it"),
        ));
    };
    let Some(shard_id) = resp.get("id").and_then(Json::as_u64) else {
        return Err(error_json("bad-gateway", "shard's failover response lacks an id"));
    };
    if let Some(e) = lock_jobs(shared).get_mut(&id) {
        e.shard = target;
        e.shard_id = shard_id;
        e.failovers += 1;
    }
    shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
    shared.cfg.tracer.warn(
        "route.failover",
        &[
            ("job", Json::from(id)),
            ("from", Json::from(dead as u64)),
            ("to", Json::from(target as u64)),
        ],
    );
    Ok((target, shard_id))
}

/// Proxy one per-job verb shard-aware, failing `status`/`result` over to
/// a surviving shard when the home shard is down. `cancel` cannot fail
/// over — there is nothing live to cancel on a dead shard — so it
/// answers `degraded` and the client may retry once the shard is
/// re-adopted.
fn op_job(shared: &Shared, req: &Json, op: &str) -> Json {
    let Some(id) = req.get("id").and_then(Json::as_u64) else {
        return error_json("bad-request", "request needs an integer `id`");
    };
    let Some((mut shard, mut shard_id)) = lock_jobs(shared).get(&id).map(|e| (e.shard, e.shard_id))
    else {
        return error_json("unknown-job", &format!("no job {id}"));
    };
    // Two chances: the routed attempt, and one failover attempt if the
    // home shard turns out dead. Never more — every path out is typed.
    for attempt in 0..2 {
        if shared.shards[shard].health() == ShardHealth::Down {
            if op == "cancel" {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                return error_json(
                    CODE_DEGRADED,
                    &format!("job {id}'s shard is down; cancel again after re-adoption"),
                );
            }
            match failover(shared, id, shard) {
                Ok((s, sid)) => {
                    shard = s;
                    shard_id = sid;
                }
                Err(e) => return e,
            }
        }
        let fwd = Json::obj(vec![("op", op.into()), ("id", shard_id.into())]);
        match shard_request(shared, shard, &fwd) {
            Ok(resp) => return with_router_identity(resp, id, shard),
            Err(ClientError::Rejected { code, message }) => {
                return with_router_identity(error_json(&code, &message), id, shard)
            }
            Err(_) if attempt == 0 => {
                // Transport failure: record_failure already ran inside
                // shard_request; loop once more so the Down branch above
                // can fail over (or answer `degraded`).
                continue;
            }
            Err(e) => {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                return error_json(CODE_DEGRADED, &format!("job {id}'s shard is unreachable: {e}"));
            }
        }
    }
    unreachable!("both attempts return");
}

/// Rewrite a shard response so clients only ever see router identities:
/// the top-level `id` becomes the router id and the serving shard index
/// is attached.
fn with_router_identity(mut resp: Json, id: u64, shard: usize) -> Json {
    if let Json::Obj(pairs) = &mut resp {
        for (k, v) in pairs.iter_mut() {
            if k == "id" {
                *v = id.into();
            }
        }
        pairs.push(("shard".into(), (shard as u64).into()));
    }
    resp
}

/// How one proxied watch stream against a shard ended.
enum StreamOutcome {
    /// Terminal status frame forwarded; the stream is complete.
    Done,
    /// The shard answered with a one-line refusal before streaming;
    /// forward it as the (single) response.
    Reply(Json),
    /// Transport trouble with the shard mid-stream; retry (possibly on a
    /// failover target) resuming from the carried cursor.
    Retry(Option<u64>),
}

/// Proxy the `watch` verb: attach to the owning shard's stream and
/// forward frames to the client. When the shard dies mid-stream the
/// stream *re-attaches*: the job is failed over to a surviving shard
/// (same spec, same idempotency key) and the watch restarts against the
/// new shard from sequence 0 — the new shard's bus numbers frames from
/// scratch, and the terminal status frame is never lost because every
/// attached stream ends with one. Returns `Ok(None)` when the stream
/// completed on the wire, `Ok(Some(resp))` for a one-line refusal.
fn op_watch_proxy(shared: &Shared, req: &Json, writer: &mut TcpStream) -> io::Result<Option<Json>> {
    let Some(id) = req.get("id").and_then(Json::as_u64) else {
        return Ok(Some(error_json("bad-request", "request needs an integer `id`")));
    };
    let Some((mut shard, mut shard_id)) = lock_jobs(shared).get(&id).map(|e| (e.shard, e.shard_id))
    else {
        return Ok(Some(error_json("unknown-job", &format!("no job {id}"))));
    };
    let mut cursor: Option<u64> = req.get("from_seq").and_then(Json::as_u64);
    let mut failures: u32 = 0;
    loop {
        if shared.shards[shard].health() == ShardHealth::Down {
            match failover(shared, id, shard) {
                Ok((s, sid)) => {
                    shard = s;
                    shard_id = sid;
                    // A new shard means a new progress bus whose sequence
                    // numbers restart at 0: resume from the top, not from
                    // the dead shard's cursor.
                    cursor = None;
                }
                Err(e) => return Ok(Some(e)),
            }
        }
        match watch_shard_stream(shared, shard, shard_id, id, cursor, writer)? {
            StreamOutcome::Done => return Ok(None),
            StreamOutcome::Reply(resp) => return Ok(Some(resp)),
            StreamOutcome::Retry(c) => {
                cursor = c;
                failures += 1;
                if failures > 10 {
                    shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(error_json(
                        CODE_DEGRADED,
                        &format!("job {id}'s watch stream keeps failing; retry later"),
                    )));
                }
                // Brief pause so repeated connect-refused attempts march
                // the shard's failure counter to `Down` (unlocking the
                // failover branch above) without spinning.
                std::thread::sleep(Duration::from_millis(25).saturating_mul(failures.min(8)));
            }
        }
    }
}

/// One watch attempt against one shard on a dedicated connection,
/// forwarding frames to `writer` (the client). Shard-side trouble comes
/// back as [`StreamOutcome::Retry`]; a client-side write failure is the
/// `Err` arm — the client is gone and the proxy should just stop.
fn watch_shard_stream(
    shared: &Shared,
    shard: usize,
    shard_id: u64,
    router_id: u64,
    mut cursor: Option<u64>,
    writer: &mut TcpStream,
) -> io::Result<StreamOutcome> {
    shared.counters.forwarded.fetch_add(1, Ordering::Relaxed);
    let shard_fail = || {
        shared.counters.forward_errors.fetch_add(1, Ordering::Relaxed);
        record_failure(shared, shard, "forward");
    };
    let dial = || -> io::Result<TcpStream> {
        let sockaddr = shared.shards[shard].addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "unresolvable shard addr")
        })?;
        let s = TcpStream::connect_timeout(&sockaddr, shared.cfg.shard_io_timeout)?;
        s.set_nodelay(true).ok();
        s.set_read_timeout(Some(shared.cfg.shard_io_timeout))?;
        s.set_write_timeout(Some(shared.cfg.shard_io_timeout))?;
        Ok(s)
    };
    let stream = match dial() {
        Ok(s) => s,
        Err(_) => {
            shard_fail();
            return Ok(StreamOutcome::Retry(cursor));
        }
    };
    let mut shard_writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            shard_fail();
            return Ok(StreamOutcome::Retry(cursor));
        }
    };
    let mut pairs: Vec<(&str, Json)> = vec![("op", "watch".into()), ("id", shard_id.into())];
    if let Some(seq) = cursor {
        pairs.push(("from_seq", seq.into()));
    }
    let mut req_line = Json::obj(pairs).to_string();
    req_line.push('\n');
    if shard_writer.write_all(req_line.as_bytes()).and_then(|()| shard_writer.flush()).is_err() {
        shard_fail();
        return Ok(StreamOutcome::Retry(cursor));
    }
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, MAX_REQUEST_BYTES) {
            Ok(Some(l)) => l,
            Ok(None) => {
                // Shard hung up mid-stream (killed, restarted, draining).
                shard_fail();
                return Ok(StreamOutcome::Retry(cursor));
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // The shard went quiet past our socket deadline — its
                // heartbeat cadence (daemon io-timeout / 2) may simply be
                // slower than `shard_io_timeout`. Keep the client socket
                // alive with a proxy heartbeat and keep listening, unless
                // the prober has since declared the shard dead.
                if shared.shards[shard].health() == ShardHealth::Down {
                    return Ok(StreamOutcome::Retry(cursor));
                }
                writer.write_all(b"{\"frame\":\"heartbeat\",\"state\":\"proxied\"}\n")?;
                writer.flush()?;
                continue;
            }
            Err(_) => {
                shard_fail();
                return Ok(StreamOutcome::Retry(cursor));
            }
        };
        let v = match Json::parse(&line) {
            Ok(v) => v,
            Err(_) => {
                shard_fail();
                return Ok(StreamOutcome::Retry(cursor));
            }
        };
        match v.get("frame").and_then(Json::as_str) {
            Some("status") => {
                // Terminal frame: rewrite to the router's identity (the
                // shard-local id must never leak) and finish the stream.
                let resp = with_router_identity(v, router_id, shard);
                writer.write_all(resp.to_string().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                return Ok(StreamOutcome::Done);
            }
            Some(_) => {
                if let Some(seq) = v.get("seq").and_then(Json::as_u64) {
                    cursor = Some(seq + 1);
                }
                // Progress / gap / heartbeat frames forward verbatim (the
                // line still carries its newline).
                writer.write_all(line.as_bytes())?;
                writer.flush()?;
            }
            None => {
                // A one-line response instead of a stream: a typed
                // refusal (unknown-job after a shard restart, bad-request
                // from a daemon predating `watch`, ...).
                if v.get("ok").and_then(Json::as_bool) == Some(false) {
                    let code = v.get("code").and_then(Json::as_str).unwrap_or("error").to_string();
                    let message = v.get("error").and_then(Json::as_str).unwrap_or("").to_string();
                    return Ok(StreamOutcome::Reply(with_router_identity(
                        error_json(&code, &message),
                        router_id,
                        shard,
                    )));
                }
                shard_fail();
                return Ok(StreamOutcome::Retry(cursor));
            }
        }
    }
}

/// Server-side wait: poll the job's shard (following failovers) until it
/// reaches a terminal state, then return its result — one blocking verb
/// for clients that do not want to poll across the network themselves.
fn op_wait(shared: &Shared, req: &Json) -> Json {
    let Some(id) = req.get("id").and_then(Json::as_u64) else {
        return error_json("bad-request", "request needs an integer `id`");
    };
    let timeout = req
        .get("timeout_secs")
        .and_then(Json::as_f64)
        .filter(|s| *s > 0.0 && s.is_finite())
        .unwrap_or(600.0)
        .min(3600.0);
    let deadline = Instant::now() + Duration::from_secs_f64(timeout);
    let mut delay = Duration::from_millis(5);
    loop {
        let status =
            op_job(shared, &Json::obj(vec![("op", "status".into()), ("id", id.into())]), "status");
        if status.get("ok").and_then(Json::as_bool) != Some(true) {
            return status; // typed error (unknown-job, degraded, ...)
        }
        match status.get("state").and_then(Json::as_str) {
            Some("queued" | "running") => {}
            _ => {
                return op_job(
                    shared,
                    &Json::obj(vec![("op", "result".into()), ("id", id.into())]),
                    "result",
                )
            }
        }
        if Instant::now() >= deadline {
            let mut resp = error_json("not-finished", "job did not finish within the wait window");
            if let Json::Obj(pairs) = &mut resp {
                if let Some(state) = status.get("state").and_then(Json::as_str) {
                    pairs.push(("state".into(), state.into()));
                }
            }
            return resp;
        }
        std::thread::sleep(delay.min(deadline.saturating_duration_since(Instant::now())));
        delay = (delay * 2).min(Duration::from_millis(400));
    }
}

// ----------------------------------------------------- stats & metrics

fn health_counts(shared: &Shared) -> (u64, u64, u64) {
    let mut up = 0;
    let mut degraded = 0;
    let mut down = 0;
    for s in &shared.shards {
        match s.health() {
            ShardHealth::Up => up += 1,
            ShardHealth::Degraded => degraded += 1,
            ShardHealth::Down => down += 1,
        }
    }
    (up, degraded, down)
}

fn router_counter_pairs(shared: &Shared) -> Vec<(&'static str, Json)> {
    let c = &shared.counters;
    let (up, degraded, down) = health_counts(shared);
    vec![
        ("role", "router".into()),
        ("shards", (shared.shards.len() as u64).into()),
        ("shards_up", up.into()),
        ("shards_degraded", degraded.into()),
        ("shards_down", down.into()),
        ("accepted", c.accepted.load(Ordering::Relaxed).into()),
        ("dedup_hits", c.dedup_hits.load(Ordering::Relaxed).into()),
        ("failovers", c.failovers.load(Ordering::Relaxed).into()),
        ("no_shards", c.no_shards.load(Ordering::Relaxed).into()),
        ("degraded_answered", c.degraded.load(Ordering::Relaxed).into()),
        ("forwarded", c.forwarded.load(Ordering::Relaxed).into()),
        ("forward_errors", c.forward_errors.load(Ordering::Relaxed).into()),
        ("jobs_tracked", (lock_jobs(shared).len() as u64).into()),
        ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
    ]
}

fn op_router_stats(shared: &Shared) -> Json {
    let mut pairs = vec![("ok", Json::from(true))];
    pairs.extend(router_counter_pairs(shared));
    Json::obj(pairs)
}

/// `fleet-stats`: the router's own counters plus one entry per shard —
/// health, probe telemetry, and (for reachable shards) the shard's own
/// `stats` response inline.
fn op_fleet_stats(shared: &Shared) -> Json {
    let mut shard_objs = Vec::with_capacity(shared.shards.len());
    for (i, s) in shared.shards.iter().enumerate() {
        let mut pairs: Vec<(&str, Json)> = vec![
            ("shard", (i as u64).into()),
            ("addr", s.addr.as_str().into()),
            ("health", s.health().name().into()),
            ("consec_failures", u64::from(s.consec_failures.load(Ordering::SeqCst)).into()),
            ("latency_us", s.last_latency_us.load(Ordering::Relaxed).into()),
            ("probes_ok", s.probes_ok.load(Ordering::Relaxed).into()),
            ("probes_failed", s.probes_failed.load(Ordering::Relaxed).into()),
            ("went_down", s.went_down.load(Ordering::Relaxed).into()),
        ];
        if s.health() != ShardHealth::Down {
            if let Ok(stats) = shard_request(shared, i, &Json::obj(vec![("op", "stats".into())])) {
                pairs.push(("stats", stats));
            }
        }
        shard_objs.push(Json::obj(pairs));
    }
    let mut pairs = vec![("ok", Json::from(true))];
    pairs.push(("router", Json::obj(router_counter_pairs(shared))));
    pairs.push(("shards", Json::Arr(shard_objs)));
    Json::obj(pairs)
}

/// `store-stats` / `store-gc`: fan the store verb out to every
/// reachable shard and answer with per-shard responses plus fleet
/// totals (a shard with its store disabled reports but contributes
/// nothing to the sums). `store-gc` forwards an optional `cap_bytes`
/// override verbatim.
fn op_store_fanout(shared: &Shared, req: &Json, op: &str) -> Json {
    let sum_keys: &[&str] = if op == "store-gc" {
        &["evicted", "freed_bytes", "entries", "bytes"]
    } else {
        &[
            "entries",
            "bytes",
            "hits",
            "partial_hits",
            "misses",
            "evictions",
            "corrupt_dropped",
            "publishes",
            "jobs_pruned",
        ]
    };
    let mut fwd_pairs: Vec<(&str, Json)> = vec![("op", op.into())];
    if let Some(cap) = req.get("cap_bytes").and_then(Json::as_u64) {
        fwd_pairs.push(("cap_bytes", cap.into()));
    }
    let fwd = Json::obj(fwd_pairs);
    let mut shard_objs = Vec::with_capacity(shared.shards.len());
    let mut totals = vec![0u64; sum_keys.len()];
    let mut reporting = 0u64;
    for (i, s) in shared.shards.iter().enumerate() {
        if s.health() == ShardHealth::Down {
            continue;
        }
        let mut pairs: Vec<(&str, Json)> =
            vec![("shard", (i as u64).into()), ("addr", s.addr.as_str().into())];
        match shard_request(shared, i, &fwd) {
            Ok(resp) => {
                if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                    reporting += 1;
                    for (slot, key) in totals.iter_mut().zip(sum_keys) {
                        *slot += resp.get(key).and_then(Json::as_u64).unwrap_or(0);
                    }
                }
                pairs.push(("response", resp));
            }
            Err(e) => pairs.push(("error", e.to_string().as_str().into())),
        }
        shard_objs.push(Json::obj(pairs));
    }
    let mut pairs: Vec<(&str, Json)> = vec![
        ("ok", true.into()),
        ("role", "router".into()),
        ("shards_reporting", reporting.into()),
    ];
    for (key, total) in sum_keys.iter().zip(&totals) {
        pairs.push((key, (*total).into()));
    }
    pairs.push(("shards", Json::Arr(shard_objs)));
    Json::obj(pairs)
}

/// `fleet-metrics`: Prometheus text aggregating the fleet — router-level
/// series plus job counters summed across every reachable shard.
fn op_fleet_metrics(shared: &Shared) -> Json {
    let c = &shared.counters;
    let (up, degraded, down) = health_counts(shared);
    let mut m = MetricsText::new();
    m.counter(
        "stsyn_route_accepted_total",
        "Submissions admitted by the router",
        c.accepted.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_route_dedup_total",
        "Submissions answered from the router's idempotency map",
        c.dedup_hits.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_route_failovers_total",
        "Jobs resubmitted to a surviving shard after shard death",
        c.failovers.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_route_no_shards_total",
        "Requests answered no-shards (whole fleet unreachable)",
        c.no_shards.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_route_degraded_total",
        "Requests answered degraded (home shard down, no failover path)",
        c.degraded.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_route_forwarded_total",
        "Requests forwarded to shards",
        c.forwarded.load(Ordering::Relaxed),
    )
    .counter(
        "stsyn_route_forward_errors_total",
        "Forwards that failed at the transport layer",
        c.forward_errors.load(Ordering::Relaxed),
    )
    .gauge("stsyn_fleet_shards", "Configured shards", shared.shards.len() as f64)
    .gauge("stsyn_fleet_shards_up", "Shards currently up", up as f64)
    .gauge("stsyn_fleet_shards_degraded", "Shards currently degraded", degraded as f64)
    .gauge("stsyn_fleet_shards_down", "Shards currently down", down as f64)
    .gauge(
        "stsyn_route_uptime_seconds",
        "Router uptime",
        shared.started.elapsed().as_secs_f64(),
    );

    // Aggregate the reachable shards' own counters into fleet-wide sums.
    let mut accepted = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut queue_depth = 0u64;
    let mut running = 0u64;
    let mut reachable = 0u64;
    let mut store_hits = 0u64;
    let mut store_partial = 0u64;
    let mut store_misses = 0u64;
    let mut store_evictions = 0u64;
    let mut store_entries = 0u64;
    let mut store_bytes = 0u64;
    let mut fleet_queue_wait = HistogramSnapshot::empty();
    let mut fleet_run = HistogramSnapshot::empty();
    let mut fleet_submit_result = HistogramSnapshot::empty();
    for (i, s) in shared.shards.iter().enumerate() {
        if s.health() == ShardHealth::Down {
            continue;
        }
        if let Ok(stats) = shard_request(shared, i, &Json::obj(vec![("op", "stats".into())])) {
            let get = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
            accepted += get("accepted");
            completed += get("completed");
            failed += get("failed");
            queue_depth += get("queue_depth");
            running += get("running");
            store_hits += get("store_hits");
            store_partial += get("store_partial_hits");
            store_misses += get("store_misses");
            store_evictions += get("store_evictions");
            store_entries += get("store_entries");
            store_bytes += get("store_bytes");
            // Latency histograms sum bucket-wise across shards — the
            // whole point of shipping buckets (not averages) on the wire.
            if let Some(latency) = stats.get("latency") {
                for (slot, key) in [
                    (&mut fleet_queue_wait, "queue_wait"),
                    (&mut fleet_run, "run"),
                    (&mut fleet_submit_result, "submit_to_result"),
                ] {
                    if let Some(h) = latency.get(key).and_then(HistogramSnapshot::from_json) {
                        slot.merge(&h);
                    }
                }
            }
            reachable += 1;
        }
    }
    m.counter("stsyn_fleet_jobs_accepted_total", "Jobs accepted across reachable shards", accepted)
        .counter(
            "stsyn_fleet_jobs_completed_total",
            "Jobs completed across reachable shards",
            completed,
        )
        .counter("stsyn_fleet_jobs_failed_total", "Jobs failed across reachable shards", failed)
        .counter(
            "stsyn_fleet_store_hits_total",
            "Store exact hits across reachable shards",
            store_hits,
        )
        .counter(
            "stsyn_fleet_store_partial_hits_total",
            "Store warm-start seeds across reachable shards",
            store_partial,
        )
        .counter(
            "stsyn_fleet_store_misses_total",
            "Store misses across reachable shards",
            store_misses,
        )
        .counter(
            "stsyn_fleet_store_evictions_total",
            "Store evictions across reachable shards",
            store_evictions,
        )
        .gauge("stsyn_fleet_queue_depth", "Queued jobs across reachable shards", queue_depth as f64)
        .gauge("stsyn_fleet_running", "Running jobs across reachable shards", running as f64)
        .gauge(
            "stsyn_fleet_store_entries",
            "Store entries across reachable shards",
            store_entries as f64,
        )
        .gauge("stsyn_fleet_store_bytes", "Store bytes across reachable shards", store_bytes as f64)
        .gauge(
            "stsyn_fleet_shards_reporting",
            "Shards that answered the stats scrape",
            reachable as f64,
        )
        .histogram(
            "stsyn_fleet_queue_wait_seconds",
            "Queue wait (submit to first claim) across reachable shards",
            &fleet_queue_wait,
        )
        .histogram(
            "stsyn_fleet_run_seconds",
            "Job run time (claim to finish) across reachable shards",
            &fleet_run,
        )
        .histogram(
            "stsyn_fleet_submit_to_result_seconds",
            "End-to-end submit-to-result latency across reachable shards",
            &fleet_submit_result,
        );
    Json::obj(vec![("ok", true.into()), ("metrics", m.render().into())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(5);
        let b = HashRing::new(5);
        let mut seen = std::collections::HashSet::new();
        for key in 0..2000u64 {
            let s = a.shard_for(key).unwrap();
            assert_eq!(Some(s), b.shard_for(key), "ring must be deterministic");
            seen.insert(s);
        }
        assert_eq!(seen.len(), 5, "2000 keys must touch every shard");
    }

    #[test]
    fn ring_balances_keys_within_bound() {
        const SHARDS: usize = 3;
        const KEYS: u64 = 30_000;
        let ring = HashRing::new(SHARDS);
        let mut counts = [0u64; SHARDS];
        for key in 0..KEYS {
            counts[ring.shard_for(key).unwrap()] += 1;
        }
        let fair = KEYS / SHARDS as u64;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > fair / 2 && c < fair * 2,
                "shard {s} holds {c} of {KEYS} keys (fair share {fair}); counts {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        const SHARDS: usize = 4;
        const REMOVED: usize = 2;
        let ring = HashRing::new(SHARDS);
        let mut moved = 0u64;
        for key in 0..10_000u64 {
            let before = ring.shard_for(key).unwrap();
            let after = ring.shard_for_available(key, |s| s != REMOVED).unwrap();
            if before == REMOVED {
                moved += 1;
                assert_ne!(after, REMOVED);
            } else {
                // Minimal disruption: a key not on the removed shard must
                // not move at all.
                assert_eq!(before, after, "key {key} moved needlessly");
            }
        }
        assert!(moved > 0, "the removed shard must have owned some keys");
    }

    #[test]
    fn failover_walk_is_deterministic_and_exhaustion_is_none() {
        let ring = HashRing::new(3);
        for key in 0..500u64 {
            let a = ring.shard_for_available(key, |s| s == 1);
            assert_eq!(a, Some(1), "only shard 1 available");
            assert_eq!(ring.shard_for_available(key, |_| false), None);
        }
        assert_eq!(HashRing::new(0).shard_for(7), None);
    }

    #[test]
    fn vnode_points_do_not_collide() {
        let ring = HashRing::new(8);
        let mut points: Vec<u64> = ring.points.iter().map(|&(p, _)| p).collect();
        let n = points.len();
        points.dedup();
        assert_eq!(n, points.len(), "mix64 of distinct inputs must not collide");
        assert_eq!(n, 8 * HashRing::VNODES);
    }

    #[test]
    fn health_names_round_trip() {
        for h in [ShardHealth::Up, ShardHealth::Degraded, ShardHealth::Down] {
            assert_eq!(ShardHealth::from_u8(h.as_u8()), h);
        }
        assert_eq!(ShardHealth::Up.name(), "up");
        assert_eq!(ShardHealth::Down.name(), "down");
    }
}
