//! Wire-level job specifications and protocol constants.
//!
//! A submission names its workload either as DSL text (`{"dsl": "..."}`)
//! or as a parametric case study from the paper
//! (`{"case": "coloring", "n": 5}`), plus mode, schedule, priority and
//! per-job budget caps. [`SubmitSpec`] round-trips through JSON — the
//! same encoding is sent over the socket and persisted to the state
//! directory, so a restarted daemon rebuilds exactly the job the client
//! submitted — and [`SubmitSpec::materialize`] lowers it onto the
//! library-level [`stsyn_core::job::JobSpec`] entry point (the service
//! never shells out to the CLI).

use crate::json::Json;
use std::io::{self, BufRead, Read};
use stsyn_core::job::{JobMode, JobSpec};
use stsyn_symbolic::{Budget, Engine};

/// Hard cap on one request line (framing bound, checked before parsing).
pub const MAX_REQUEST_BYTES: usize = 4 << 20;
/// Hard cap on submitted DSL text (checked again by `parse_bounded`).
pub const MAX_DSL_BYTES: usize = 1 << 20;
/// Largest accepted `n` for parametric case studies.
pub const MAX_CASE_SIZE: usize = 64;

/// Read one newline-terminated frame, bounded at `max` bytes.
///
/// Returns `Ok(None)` on a clean EOF before any byte. An over-long line
/// or non-UTF-8 bytes surface as [`io::ErrorKind::InvalidData`] — a
/// *typed* framing error the daemon answers with a `bad-request`
/// response instead of panicking or buffering without bound. A final
/// line without a trailing newline (a torn frame ending in EOF) is
/// returned as-is and left to the JSON parser to reject.
pub fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = reader.by_ref().take(max as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') && buf.len() > max {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "request line too long"));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request is not UTF-8"))
}

/// Fold a 64-bit hash into the 53 bits an f64-backed JSON number
/// round-trips exactly — idempotency keys cross the wire as numbers.
pub(crate) fn fold_idem(h: u64) -> u64 {
    (h ^ (h >> 53)) & ((1u64 << 53) - 1)
}

/// A wire error response: `{"ok":false,"code":...,"error":...}`. The
/// daemon and the router build every refusal through this, so clients
/// can always rely on the `code` field for typed handling.
pub fn error_json(code: &str, message: &str) -> Json {
    Json::obj(vec![("ok", false.into()), ("code", code.into()), ("error", message.into())])
}

/// Error code a router answers when a request's home shard is down and
/// the operation cannot be failed over to a surviving shard.
pub const CODE_DEGRADED: &str = "degraded";
/// Error code a router answers when no shard is available at all.
pub const CODE_NO_SHARDS: &str = "no-shards";

/// Reserved chaos-testing workloads (the `__crash__` / `__lose_worker__`
/// case names): deterministic fault triggers the supervision layer is
/// tested — and demonstrated — against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosJob {
    /// The job panics inside the worker's `catch_unwind` fence: exercises
    /// crash recording, retry and poison-job quarantine.
    Crash,
    /// The job panics *outside* the fence, killing its worker thread:
    /// exercises worker respawn by the supervisor.
    LoseWorker,
}

/// The workload of a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// A parametric case study: `coloring`, `matching`, `token_ring`,
    /// `two_ring` or `mis`, with ring size `n` (and domain size `d` for
    /// the token rings).
    Case {
        /// Case-study name.
        name: String,
        /// Ring size / process count parameter.
        n: usize,
        /// Domain size (token rings only; 0 elsewhere).
        d: u32,
    },
    /// Protocol DSL text, parsed with `stsyn_protocol::dsl::parse_bounded`.
    Dsl(String),
}

/// A complete submission: workload plus knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// What to synthesize.
    pub source: JobSource,
    /// Weak instead of strong convergence.
    pub weak: bool,
    /// Explicit recovery schedule (process indices).
    pub schedule: Option<Vec<usize>>,
    /// Image/preimage engine for the symbolic walk. Part of the
    /// synthesis identity (it changes which checkpoints are
    /// compatible), but only emitted on the wire when non-default so
    /// pre-existing spec files and warm fingerprints stay valid.
    pub engine: Engine,
    /// Queue priority; higher pops first, default 0.
    pub priority: i64,
    /// Wall-clock budget in seconds.
    pub timeout_secs: Option<f64>,
    /// Live BDD node ceiling.
    pub max_nodes: Option<usize>,
    /// BDD operation tick ceiling.
    pub max_ticks: Option<u64>,
    /// Idempotency key: resubmitting a key the daemon has already
    /// accepted returns the existing job id instead of enqueueing a
    /// duplicate, which is what makes client-side submit retries safe.
    /// [`Client::submit`](crate::Client::submit) derives one per logical
    /// submission; set it to [`SubmitSpec::fingerprint`] for
    /// content-addressed dedup of identical workloads.
    pub idem: Option<u64>,
}

impl SubmitSpec {
    /// A default-knob submission of the given source.
    pub fn new(source: JobSource) -> SubmitSpec {
        SubmitSpec {
            source,
            weak: false,
            schedule: None,
            engine: Engine::Monolithic,
            priority: 0,
            timeout_secs: None,
            max_nodes: None,
            max_ticks: None,
            idem: None,
        }
    }

    /// Encode for the socket / the persistent spec file.
    pub fn to_json(&self) -> Json {
        let mut pairs = self.content_pairs();
        if let Some(k) = self.idem {
            pairs.push(("idem", k.into()));
        }
        Json::obj(pairs)
    }

    /// The submission's content identity: a stable FNV-1a hash of its
    /// canonical JSON encoding *excluding* the idempotency key, so the
    /// same workload + knobs always fingerprint the same regardless of
    /// which submission attempt carried it. Folded to 53 bits so the
    /// value survives the wire's f64-backed JSON numbers exactly.
    pub fn fingerprint(&self) -> u64 {
        let canonical = Json::obj(self.content_pairs()).to_string();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in canonical.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fold_idem(h)
    }

    /// The reserved chaos-testing workload this spec names, if any.
    pub fn chaos_job(&self) -> Option<ChaosJob> {
        match &self.source {
            JobSource::Case { name, .. } if name == "__crash__" => Some(ChaosJob::Crash),
            JobSource::Case { name, .. } if name == "__lose_worker__" => Some(ChaosJob::LoseWorker),
            _ => None,
        }
    }

    /// The budget-free synthesis identity: what is being synthesized
    /// (workload, mode, schedule) with the knobs that only shape *how
    /// long* the run may take (budget, priority) left out. Two specs
    /// with equal [`SubmitSpec::warm_fingerprint`]s walk byte-identical
    /// rank layers, which is what lets one job's checkpoint prefix
    /// warm-start another's run.
    pub fn warm_fingerprint(&self) -> u64 {
        let canonical = Json::obj(self.synthesis_pairs()).to_string();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in canonical.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fold_idem(h)
    }

    /// The pairs that determine the synthesis walk itself — everything
    /// [`SubmitSpec::materialize`] feeds into protocol construction and
    /// scheduling, nothing that only bounds or prioritizes the run.
    fn synthesis_pairs(&self) -> Vec<(&'static str, Json)> {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        match &self.source {
            JobSource::Case { name, n, d } => {
                pairs.push(("case", name.as_str().into()));
                pairs.push(("n", (*n).into()));
                if *d != 0 {
                    pairs.push(("d", u64::from(*d).into()));
                }
            }
            JobSource::Dsl(text) => pairs.push(("dsl", text.as_str().into())),
        }
        if self.weak {
            pairs.push(("weak", true.into()));
        }
        if let Some(s) = &self.schedule {
            pairs.push(("schedule", Json::Arr(s.iter().map(|&i| Json::from(i)).collect())));
        }
        if self.engine != Engine::Monolithic {
            pairs.push(("engine", self.engine.as_str().into()));
        }
        pairs
    }

    fn content_pairs(&self) -> Vec<(&'static str, Json)> {
        let mut pairs = self.synthesis_pairs();
        if self.priority != 0 {
            pairs.push(("priority", self.priority.into()));
        }
        if let Some(t) = self.timeout_secs {
            pairs.push(("timeout_secs", t.into()));
        }
        if let Some(n) = self.max_nodes {
            pairs.push(("max_nodes", n.into()));
        }
        if let Some(n) = self.max_ticks {
            pairs.push(("max_ticks", n.into()));
        }
        pairs
    }

    /// Decode a submission object, rejecting malformed fields with a
    /// client-facing message.
    pub fn from_json(v: &Json) -> Result<SubmitSpec, String> {
        let source = match (v.get("dsl"), v.get("case")) {
            (Some(d), None) => {
                let text = d.as_str().ok_or("`dsl` must be a string")?;
                JobSource::Dsl(text.to_string())
            }
            (None, Some(c)) => {
                let name = c.as_str().ok_or("`case` must be a string")?.to_string();
                let n = v
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("case submissions need an integer `n`")?
                    as usize;
                let d = v.get("d").and_then(Json::as_u64).unwrap_or(0) as u32;
                JobSource::Case { name, n, d }
            }
            _ => return Err("submission must have exactly one of `dsl` or `case`".to_string()),
        };
        let mut spec = SubmitSpec::new(source);
        if let Some(w) = v.get("weak") {
            spec.weak = w.as_bool().ok_or("`weak` must be a boolean")?;
        }
        if let Some(s) = v.get("schedule") {
            let items = s.as_arr().ok_or("`schedule` must be an array of process indices")?;
            let mut order = Vec::with_capacity(items.len());
            for it in items {
                order
                    .push(it.as_u64().ok_or("`schedule` entries must be non-negative integers")?
                        as usize);
            }
            spec.schedule = Some(order);
        }
        if let Some(e) = v.get("engine") {
            let name = e.as_str().ok_or("`engine` must be a string")?;
            spec.engine = Engine::parse(name)
                .ok_or("`engine` must be monolithic, partitioned or saturation")?;
        }
        if let Some(p) = v.get("priority") {
            spec.priority = p.as_i64().ok_or("`priority` must be an integer")?;
        }
        if let Some(t) = v.get("timeout_secs") {
            let secs = t.as_f64().ok_or("`timeout_secs` must be a number")?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err("`timeout_secs` must be positive and finite".to_string());
            }
            spec.timeout_secs = Some(secs);
        }
        if let Some(n) = v.get("max_nodes") {
            spec.max_nodes =
                Some(n.as_u64().ok_or("`max_nodes` must be a non-negative integer")? as usize);
        }
        if let Some(n) = v.get("max_ticks") {
            spec.max_ticks = Some(n.as_u64().ok_or("`max_ticks` must be a non-negative integer")?);
        }
        if let Some(k) = v.get("idem") {
            spec.idem = Some(k.as_u64().ok_or("`idem` must be a non-negative integer")?);
        }
        Ok(spec)
    }

    /// The per-job [`Budget`] from the submission's caps (cancellation
    /// flags are attached by the worker), or `None` when uncapped.
    pub fn budget(&self) -> Option<Budget> {
        let mut b = Budget::unlimited();
        if let Some(secs) = self.timeout_secs {
            b = b.with_timeout(std::time::Duration::from_secs_f64(secs));
        }
        if let Some(n) = self.max_nodes {
            b = b.with_max_nodes(n);
        }
        if let Some(n) = self.max_ticks {
            b = b.with_max_ticks(n);
        }
        b.is_limited().then_some(b)
    }

    /// Lower onto the library entry point: build (or parse) the protocol
    /// and invariant and fill in mode, schedule and budget. Errors are
    /// client-facing strings — every failure here is the submitter's.
    pub fn materialize(&self) -> Result<JobSpec, String> {
        let (name, protocol, invariant) = match &self.source {
            JobSource::Dsl(text) => {
                let parsed = stsyn_protocol::dsl::parse_bounded(text, MAX_DSL_BYTES)
                    .map_err(|e| format!("protocol text rejected: {e}"))?;
                (parsed.name, parsed.protocol, parsed.invariant)
            }
            JobSource::Case { name, n, d } => {
                let n = *n;
                if !(2..=MAX_CASE_SIZE).contains(&n) {
                    return Err(format!("case size n={n} outside 2..={MAX_CASE_SIZE}"));
                }
                let d = if *d == 0 { 3 } else { *d };
                let (p, i) = match name.as_str() {
                    // Chaos self-test workloads: a real (tiny) problem so
                    // the spec validates; the daemon's worker recognizes
                    // the marker and panics at the scripted point.
                    "__crash__" | "__lose_worker__" => stsyn_cases::coloring(n),
                    "coloring" => stsyn_cases::coloring(n),
                    "matching" => stsyn_cases::matching(n),
                    "token_ring" => stsyn_cases::token_ring(n, d),
                    "two_ring" => stsyn_cases::two_ring(n, d),
                    "mis" => stsyn_cases::mis(n),
                    other => {
                        return Err(format!(
                            "unknown case `{other}` (expected coloring, matching, token_ring, \
                             two_ring or mis)"
                        ))
                    }
                };
                (format!("{name}{n}"), p, i)
            }
        };
        let mut job = JobSpec::new(name, protocol, invariant);
        job.mode = if self.weak { JobMode::Weak } else { JobMode::Strong };
        job.schedule = self.schedule.clone();
        job.engine = self.engine;
        job.budget = self.budget();
        job.validate().map_err(|e| e.to_string())?;
        Ok(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_spec_roundtrips_through_json() {
        let mut spec = SubmitSpec::new(JobSource::Case { name: "token_ring".into(), n: 4, d: 3 });
        spec.weak = true;
        spec.schedule = Some(vec![1, 2, 3, 0]);
        spec.engine = Engine::Partitioned;
        spec.priority = -2;
        spec.timeout_secs = Some(1.5);
        spec.max_nodes = Some(100_000);
        spec.max_ticks = Some(42);
        spec.idem = Some(0xFEED_F00D);
        let back = SubmitSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let dsl = SubmitSpec::new(JobSource::Dsl("protocol X {\n}".into()));
        assert_eq!(SubmitSpec::from_json(&dsl.to_json()).unwrap(), dsl);
    }

    #[test]
    fn rejects_ambiguous_and_malformed_sources() {
        assert!(SubmitSpec::from_json(&Json::obj(vec![])).is_err());
        assert!(SubmitSpec::from_json(&Json::obj(vec![
            ("dsl", "x".into()),
            ("case", "coloring".into()),
        ]))
        .is_err());
        assert!(SubmitSpec::from_json(&Json::obj(vec![("case", "coloring".into())])).is_err());
        assert!(SubmitSpec::from_json(&Json::obj(vec![
            ("case", "coloring".into()),
            ("n", 3u64.into()),
            ("timeout_secs", (-1i64).into()),
        ]))
        .is_err());
    }

    #[test]
    fn materialize_builds_the_case_studies() {
        for name in ["coloring", "matching", "token_ring", "two_ring", "mis"] {
            let spec = SubmitSpec::new(JobSource::Case { name: name.into(), n: 3, d: 0 });
            let job = spec.materialize().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(job.protocol.num_processes() > 0, "{name}");
        }
    }

    #[test]
    fn materialize_rejects_bad_inputs() {
        let huge = SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 1000, d: 0 });
        assert!(huge.materialize().is_err());
        let unknown = SubmitSpec::new(JobSource::Case { name: "nope".into(), n: 3, d: 0 });
        assert!(unknown.materialize().unwrap_err().contains("unknown case"));
        let bad_dsl = SubmitSpec::new(JobSource::Dsl("protocol {".into()));
        assert!(bad_dsl.materialize().unwrap_err().contains("rejected"));
        let mut bad_sched =
            SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 });
        bad_sched.schedule = Some(vec![0, 0, 1]);
        assert!(bad_sched.materialize().is_err());
    }

    #[test]
    fn fingerprint_is_content_identity_not_submission_identity() {
        let mut a = SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 });
        let mut b = a.clone();
        // The idempotency key is transport identity, not content identity.
        a.idem = Some(1);
        b.idem = Some(2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any content knob changes the fingerprint.
        b.priority = 7;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let dsl = SubmitSpec::new(JobSource::Dsl("protocol X {\n}".into()));
        assert_ne!(a.fingerprint(), dsl.fingerprint());
    }

    #[test]
    fn warm_fingerprint_ignores_budget_and_priority_only() {
        let base = SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 });
        // Budget and priority knobs change the exact key but not the
        // warm key — the synthesis walk is identical.
        let mut budgeted = base.clone();
        budgeted.timeout_secs = Some(30.0);
        budgeted.max_nodes = Some(1 << 20);
        budgeted.max_ticks = Some(1 << 30);
        budgeted.priority = 5;
        assert_ne!(base.fingerprint(), budgeted.fingerprint());
        assert_eq!(base.warm_fingerprint(), budgeted.warm_fingerprint());
        // Anything that alters the walk alters the warm key too.
        let mut bigger = base.clone();
        bigger.source = JobSource::Case { name: "coloring".into(), n: 4, d: 0 };
        assert_ne!(base.warm_fingerprint(), bigger.warm_fingerprint());
        let mut weak = base.clone();
        weak.weak = true;
        assert_ne!(base.warm_fingerprint(), weak.warm_fingerprint());
        let mut sched = base.clone();
        sched.schedule = Some(vec![2, 1, 0]);
        assert_ne!(sched.warm_fingerprint(), weak.warm_fingerprint());
        // The engine changes which rank layers a checkpoint encodes, so
        // it is part of the warm identity — but the default engine is
        // not emitted, keeping pre-engine fingerprints stable.
        let mut part = base.clone();
        part.engine = Engine::Partitioned;
        assert_ne!(base.warm_fingerprint(), part.warm_fingerprint());
        assert_eq!(base.to_json().get("engine"), None);
    }

    #[test]
    fn engine_field_parses_and_rejects_unknown_names() {
        let good = Json::obj(vec![
            ("case", "coloring".into()),
            ("n", 3u64.into()),
            ("engine", "saturation".into()),
        ]);
        assert_eq!(SubmitSpec::from_json(&good).unwrap().engine, Engine::Saturation);
        let bad = Json::obj(vec![
            ("case", "coloring".into()),
            ("n", 3u64.into()),
            ("engine", "quantum".into()),
        ]);
        assert!(SubmitSpec::from_json(&bad).unwrap_err().contains("engine"));
    }

    #[test]
    fn chaos_markers_are_recognized_and_materialize() {
        for (name, marker) in
            [("__crash__", ChaosJob::Crash), ("__lose_worker__", ChaosJob::LoseWorker)]
        {
            let spec = SubmitSpec::new(JobSource::Case { name: name.into(), n: 3, d: 0 });
            assert_eq!(spec.chaos_job(), Some(marker));
            assert!(spec.materialize().is_ok(), "{name} must pass submit validation");
        }
        assert_eq!(case_spec().chaos_job(), None);
    }

    fn case_spec() -> SubmitSpec {
        SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 })
    }

    #[test]
    fn read_line_bounded_rejects_oversize_and_non_utf8_with_typed_errors() {
        use std::io::{Cursor, ErrorKind};
        let mut ok = Cursor::new(b"{\"op\":\"stats\"}\n".to_vec());
        assert_eq!(
            read_line_bounded(&mut ok, 64).unwrap().as_deref(),
            Some("{\"op\":\"stats\"}\n")
        );
        let mut eof = Cursor::new(Vec::new());
        assert!(read_line_bounded(&mut eof, 64).unwrap().is_none());
        // A torn final frame (EOF, no newline) within the bound comes
        // back for the JSON parser to reject.
        let mut torn = Cursor::new(b"{\"op\":".to_vec());
        assert_eq!(read_line_bounded(&mut torn, 64).unwrap().as_deref(), Some("{\"op\":"));
        // Over-long and non-UTF-8 are typed framing errors, not panics.
        let mut long = Cursor::new(vec![b'a'; 100]);
        assert_eq!(read_line_bounded(&mut long, 64).unwrap_err().kind(), ErrorKind::InvalidData);
        let mut bad = Cursor::new(vec![0xFF, 0xFE, b'\n']);
        assert_eq!(read_line_bounded(&mut bad, 64).unwrap_err().kind(), ErrorKind::InvalidData);
        // Exactly at the bound, with its newline, still fits.
        let mut exact = Cursor::new([vec![b'x'; 63], vec![b'\n']].concat());
        assert_eq!(read_line_bounded(&mut exact, 64).unwrap().unwrap().len(), 64);
    }

    #[test]
    fn budget_caps_compose() {
        let mut spec = SubmitSpec::new(JobSource::Case { name: "coloring".into(), n: 3, d: 0 });
        assert!(spec.budget().is_none());
        spec.max_ticks = Some(10);
        assert!(spec.budget().is_some());
    }
}
