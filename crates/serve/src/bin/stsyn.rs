//! `stsyn` — the STabilization Synthesizer command-line tool.
//!
//! Four modes share one binary:
//!
//! * **one-shot** (`stsyn FILE [flags]`): read a protocol description
//!   (see `stsyn_protocol::dsl` for the format), add convergence, and
//!   print the synthesized recovery actions plus an independent
//!   verification verdict and the run statistics;
//! * **daemon** (`stsyn serve [flags]`): run the `stsyn-serve` job
//!   service — a persistent queue plus worker pool accepting concurrent
//!   submissions over newline-delimited JSON on TCP;
//! * **router** (`stsyn route --shard HOST:PORT ...`): the fleet front
//!   door — consistent-hashes submissions across N daemons, probes shard
//!   health, and fails pending jobs over to surviving shards when a
//!   daemon dies (see `stsyn_serve::router`);
//! * **client** (`stsyn client --addr HOST:PORT VERB ...`): drive a
//!   running daemon or router — submit, status, result, cancel, ping,
//!   stats, fleet-stats, fleet-metrics, shutdown.
//!
//! ```text
//! stsyn FILE [--weak] [--schedule 1,2,3,0] [--parallel] [--symmetric]
//!            [--engine monolithic|partitioned|saturation]
//!            [--timeout SECS] [--max-nodes N]
//!            [--checkpoint-dir DIR] [--resume]
//!            [--emit-dsl OUT.stsyn] [--scc skeleton|lockstep|xiebeerel] [--quiet]
//! stsyn serve [--addr HOST:PORT] [--workers N] [--queue N]
//!             [--state-dir DIR] [--print-addr]
//!             [--max-conns N] [--io-timeout SECS] [--quarantine-after K]
//!             [--store-dir DIR] [--store-cap-bytes N] [--retain-jobs K]
//! stsyn route --shard HOST:PORT [--shard HOST:PORT ...]
//!             [--addr HOST:PORT] [--print-addr]
//!             [--probe-interval-ms MS] [--probe-timeout-ms MS]
//!             [--down-after K] [--io-timeout SECS]
//! stsyn client --addr HOST:PORT [--retries N] [--retry-base-ms MS]
//!              submit (FILE | --case NAME --n N [--d D])
//!              [--weak] [--schedule 1,2,3,0] [--engine ENGINE] [--priority P]
//!              [--timeout SECS] [--max-nodes N] [--max-ticks N]
//!              [--wait [--wait-secs S]] [--emit-dsl OUT.stsyn] [--quiet]
//! stsyn client --addr HOST:PORT status ID
//! stsyn client --addr HOST:PORT result ID [--emit-dsl OUT.stsyn] [--quiet]
//! stsyn client --addr HOST:PORT cancel ID
//! stsyn client --addr HOST:PORT stats
//! stsyn client --addr HOST:PORT metrics
//! stsyn client --addr HOST:PORT ping
//! stsyn client --addr HOST:PORT fleet-stats
//! stsyn client --addr HOST:PORT fleet-metrics
//! stsyn client --addr HOST:PORT shutdown [--mode drain|checkpoint]
//! stsyn store stats --addr HOST:PORT
//! stsyn store gc --addr HOST:PORT [--cap-bytes N]
//! stsyn store verify --dir PATH
//! stsyn trace-summary TRACE.ndjson
//! ```
//!
//! One-shot and serve modes accept `--trace PATH` (append NDJSON trace
//! records — spans, events, counters — to `PATH`) and `--trace-level
//! warn|info|debug` (default `info`). One-shot runs add `--metrics` to
//! print the run's statistics as Prometheus text exposition;
//! `stsyn trace-summary` renders a trace file into the paper's Table-1
//! columns plus per-rank frontier sizes and per-phase wall times.
//!
//! With `--checkpoint-dir DIR` a one-shot run write-ahead-journals every
//! committed rank layer and accepted recovery group into `DIR`; `--resume`
//! replays a journal left by an interrupted (crashed or budget-cut) run
//! and continues where it stopped, producing output bit-identical to an
//! uninterrupted run. Checkpointing applies to strong single-schedule
//! synthesis only (`--weak` and `--parallel` are rejected alongside it).
//! The daemon applies the same machinery per job, which is what lets a
//! `SIGKILL`ed daemon resume its in-flight jobs on restart. A journal
//! records which `--engine` wrote it; resuming under a different engine
//! is a checkpoint mismatch (exit 5), never a silently different walk.
//!
//! The daemon hardens itself against hostile or unlucky clients and
//! jobs: `--max-conns` caps concurrent connections (excess ones get a
//! typed `busy` rejection), `--io-timeout` reaps stalled or idle
//! connections, and `--quarantine-after` moves a job that keeps crashing
//! its worker into a durable quarantine instead of retrying it forever.
//! The client retries transient failures (connection loss, `queue-full`,
//! `busy`) with jittered exponential backoff — `--retries` bounds the
//! attempts, `--retry-base-ms` sets the first delay, and idempotent
//! submission keys make retried submits safe.
//!
//! With `--store-dir` the daemon keeps a content-addressed artifact
//! store: finished results and checkpoint prefixes are published under
//! the submission's content fingerprint, resubmissions of identical
//! content are answered from the store without queueing, and strong
//! jobs matching a stored budget-free fingerprint warm-start from the
//! stored checkpoint prefix. `--store-cap-bytes` bounds the store with
//! LRU eviction, `--retain-jobs K` prunes completed job directories
//! beyond the newest K once their results are published, and
//! `stsyn store stats|gc|verify` inspect and maintain it (`verify`
//! works offline on a store directory; `stats`/`gc` talk to a daemon or
//! router — the router fans out to every reachable shard).
//!
//! Exit codes: 0 success, 1 synthesis failure (including a verification
//! FAIL), 2 usage error, 3 input error (unreadable file, parse or type
//! error), 4 resource budget exhausted (`--timeout` / `--max-nodes`),
//! 5 checkpoint error (`--checkpoint-dir` unwritable, locked by a live
//! process, or holding a journal from a different problem), 6 service
//! connection or protocol error, 7 submission rejected by the daemon
//! (queue full, connection cap, or shutting down), 8 fleet degraded
//! (the router answered `degraded` or `no-shards` — the needed shard is
//! down and retries were exhausted).

use std::process::ExitCode;
use std::time::Duration;
use stsyn_core::job::{JobCheckpoint, JobError, JobMode, JobReport, JobSpec};
use stsyn_core::SynthesisError;
use stsyn_obs::{TraceLevel, Tracer};
use stsyn_protocol::dsl;
use stsyn_serve::{
    Client, ClientError, Json, RetryPolicy, Router, RouterConfig, Server, ServerConfig,
    ShutdownMode, SubmitSpec,
};
use stsyn_symbolic::scc::SccAlgorithm;
use stsyn_symbolic::{Budget, Engine};

const EXIT_SYNTH: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_INPUT: u8 = 3;
const EXIT_RESOURCES: u8 = 4;
const EXIT_CHECKPOINT: u8 = 5;
const EXIT_SERVICE: u8 = 6;
const EXIT_REJECTED: u8 = 7;
const EXIT_FLEET: u8 = 8;

/// A typed CLI failure carrying its exit code — every user-input and
/// I/O failure path funnels through this instead of panicking.
enum CliError {
    /// Bad flags; an optional explanation precedes the usage text (exit 2).
    Usage(Option<String>),
    /// Unreadable or invalid input (exit 3).
    Input(String),
    /// Could not reach or talk to the daemon (exit 6).
    Service(String),
    /// The daemon refused the request, or the awaited job failed; the
    /// wire error code picks the exit code.
    Refused { exit: u8, message: String },
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(Some(msg.into()))
    }
}

fn usage_text() -> &'static str {
    "usage: stsyn FILE [--weak] [--schedule 1,2,3,0] [--parallel] [--symmetric] \
     [--engine monolithic|partitioned|saturation] \
     [--timeout SECS] [--max-nodes N] \
     [--checkpoint-dir DIR] [--resume] \
     [--emit-dsl OUT.stsyn] [--scc skeleton|lockstep|xiebeerel] [--quiet]\n\
     \x20      stsyn serve [--addr HOST:PORT] [--workers N] [--queue N] \
     [--state-dir DIR] [--print-addr] \
     [--max-conns N] [--io-timeout SECS] [--quarantine-after K] \
     [--store-dir DIR] [--store-cap-bytes N] [--retain-jobs K]\n\
     \x20      stsyn route --shard HOST:PORT [--shard HOST:PORT ...] [--addr HOST:PORT] \
     [--print-addr] [--probe-interval-ms MS] [--probe-timeout-ms MS] \
     [--down-after K] [--io-timeout SECS]\n\
     \x20      stsyn client --addr HOST:PORT [--retries N] [--retry-base-ms MS] \
     submit (FILE | --case NAME --n N [--d D]) \
     [--weak] [--engine ENGINE] [--priority P] [--wait] [--emit-dsl OUT.stsyn]\n\
     \x20      stsyn client --addr HOST:PORT status ID | watch ID | result ID | cancel ID | \
     ping | stats | metrics | fleet-stats | fleet-metrics | shutdown [--mode drain|checkpoint]\n\
     \x20      stsyn store stats --addr HOST:PORT | gc --addr HOST:PORT [--cap-bytes N] | \
     verify --dir PATH\n\
     \x20      stsyn trace-summary TRACE.ndjson\n\
     \x20      one-shot/serve: [--trace PATH] [--trace-level warn|info|debug]; \
     one-shot adds [--metrics]\n\
     exit codes: 0 ok, 1 synthesis/verification failure, 2 usage, \
     3 input error, 4 budget exhausted, 5 checkpoint error, \
     6 service connection error, 7 rejected by daemon, 8 fleet degraded"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("serve") => serve_main(&argv[1..]),
        Some("route") => route_main(&argv[1..]),
        Some("client") => client_main(&argv[1..]),
        Some("store") => store_main(&argv[1..]),
        Some("trace-summary") => trace_summary_main(&argv[1..]),
        _ => oneshot_main(&argv),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            if let Some(m) = msg {
                eprintln!("stsyn: {m}");
            }
            eprintln!("{}", usage_text());
            ExitCode::from(EXIT_USAGE)
        }
        Err(CliError::Input(m)) => {
            eprintln!("stsyn: {m}");
            ExitCode::from(EXIT_INPUT)
        }
        Err(CliError::Service(m)) => {
            eprintln!("stsyn: {m}");
            ExitCode::from(EXIT_SERVICE)
        }
        Err(CliError::Refused { exit, message }) => {
            eprintln!("stsyn: {message}");
            ExitCode::from(exit)
        }
    }
}

/// Pull the value of a flag, failing with a usage error when missing.
fn flag_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    it.next().ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
}

fn parse_schedule(spec: &str) -> Result<Vec<usize>, CliError> {
    spec.split(',')
        .map(|s| s.trim().parse::<usize>())
        .collect::<Result<Vec<usize>, _>>()
        .map_err(|_| CliError::usage(format!("--schedule `{spec}` is not a list of indices")))
}

// ---------------------------------------------------------------- one-shot

struct Args {
    file: String,
    weak: bool,
    parallel: bool,
    quiet: bool,
    symmetric: bool,
    emit_dsl: Option<String>,
    schedule: Option<Vec<usize>>,
    engine: Engine,
    scc: SccAlgorithm,
    timeout: Option<f64>,
    max_nodes: Option<usize>,
    checkpoint_dir: Option<String>,
    resume: bool,
    trace: Option<String>,
    trace_level: TraceLevel,
    metrics: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, CliError> {
    let mut args = Args {
        file: String::new(),
        weak: false,
        parallel: false,
        quiet: false,
        symmetric: false,
        emit_dsl: None,
        schedule: None,
        engine: Engine::Monolithic,
        scc: SccAlgorithm::Skeleton,
        timeout: None,
        max_nodes: None,
        checkpoint_dir: None,
        resume: false,
        trace: None,
        trace_level: TraceLevel::Info,
        metrics: false,
    };
    let mut it = argv.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--weak" => args.weak = true,
            "--parallel" => args.parallel = true,
            "--quiet" => args.quiet = true,
            "--symmetric" => args.symmetric = true,
            "--emit-dsl" => args.emit_dsl = Some(flag_value(&mut it, "--emit-dsl")?),
            "--schedule" => {
                args.schedule = Some(parse_schedule(&flag_value(&mut it, "--schedule")?)?);
            }
            "--engine" => {
                args.engine = parse_engine(&flag_value(&mut it, "--engine")?)?;
            }
            "--scc" => {
                args.scc = match flag_value(&mut it, "--scc")?.as_str() {
                    "skeleton" => SccAlgorithm::Skeleton,
                    "lockstep" => SccAlgorithm::Lockstep,
                    "xiebeerel" => SccAlgorithm::XieBeerel,
                    other => {
                        return Err(CliError::usage(format!("unknown --scc algorithm `{other}`")))
                    }
                }
            }
            "--timeout" => {
                let v = flag_value(&mut it, "--timeout")?;
                match v.parse::<f64>() {
                    Ok(secs) if secs > 0.0 && secs.is_finite() => args.timeout = Some(secs),
                    _ => {
                        return Err(CliError::usage(format!(
                            "--timeout `{v}` is not a positive number of seconds"
                        )))
                    }
                }
            }
            "--max-nodes" => {
                let v = flag_value(&mut it, "--max-nodes")?;
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => args.max_nodes = Some(n),
                    _ => {
                        return Err(CliError::usage(format!(
                            "--max-nodes `{v}` is not a positive integer"
                        )))
                    }
                }
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(flag_value(&mut it, "--checkpoint-dir")?);
            }
            "--resume" => args.resume = true,
            "--trace" => args.trace = Some(flag_value(&mut it, "--trace")?),
            "--trace-level" => {
                args.trace_level = parse_trace_level(&flag_value(&mut it, "--trace-level")?)?;
            }
            "--metrics" => args.metrics = true,
            "--help" | "-h" => return Err(CliError::Usage(None)),
            f if !f.starts_with('-') && args.file.is_empty() => args.file = f.to_string(),
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    if args.file.is_empty() {
        return Err(CliError::Usage(None));
    }
    // Checkpointing journals the single strong-synthesis schedule; weak
    // synthesis has no journaled decision points and parallel exploration
    // races schedules that would fight over one directory.
    if args.checkpoint_dir.is_some() && (args.weak || args.parallel) {
        return Err(CliError::usage(
            "--checkpoint-dir cannot be combined with --weak or --parallel",
        ));
    }
    if args.resume && args.checkpoint_dir.is_none() {
        return Err(CliError::usage("--resume requires --checkpoint-dir"));
    }
    Ok(args)
}

fn parse_engine(v: &str) -> Result<Engine, CliError> {
    Engine::parse(v).ok_or_else(|| {
        CliError::usage(format!("--engine `{v}` is not monolithic|partitioned|saturation"))
    })
}

fn parse_trace_level(v: &str) -> Result<TraceLevel, CliError> {
    TraceLevel::parse(v)
        .ok_or_else(|| CliError::usage(format!("--trace-level `{v}` is not warn|info|debug")))
}

fn open_trace(path: &str, level: TraceLevel) -> Result<Tracer, CliError> {
    Tracer::to_file(std::path::Path::new(path), level)
        .map_err(|e| CliError::Input(format!("cannot open trace file {path}: {e}")))
}

fn build_budget(timeout: Option<f64>, max_nodes: Option<usize>) -> Option<Budget> {
    let mut budget = Budget::unlimited();
    if let Some(secs) = timeout {
        budget = budget.with_timeout(Duration::from_secs_f64(secs));
    }
    if let Some(n) = max_nodes {
        budget = budget.with_max_nodes(n);
    }
    budget.is_limited().then_some(budget)
}

fn oneshot_main(argv: &[String]) -> Result<ExitCode, CliError> {
    let args = parse_args(argv)?;
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| CliError::Input(format!("cannot read {}: {e}", args.file)))?;
    let parsed = dsl::parse(&src).map_err(|e| CliError::Input(format!("{}: {e}", args.file)))?;

    let mut job = JobSpec::new(parsed.name, parsed.protocol, parsed.invariant);
    job.mode = if args.weak {
        JobMode::Weak
    } else if args.parallel {
        JobMode::Parallel
    } else {
        JobMode::Strong
    };
    job.schedule = args.schedule.clone();
    job.engine = args.engine;
    job.scc = args.scc;
    job.symmetric = args.symmetric;
    job.budget = build_budget(args.timeout, args.max_nodes);
    if let Some(dir) = &args.checkpoint_dir {
        job.checkpoint =
            Some(JobCheckpoint { dir: std::path::PathBuf::from(dir), resume: args.resume });
    }
    if let Some(path) = &args.trace {
        job.tracer = open_trace(path, args.trace_level)?;
    }

    match job.run() {
        Ok(report) => Ok(print_report(&report, &args)),
        Err(JobError::Input(m)) | Err(JobError::Spec(m)) => Err(CliError::Input(m)),
        Err(JobError::Synthesis(e)) => Ok(report_synthesis_error(e)),
    }
}

fn print_report(report: &JobReport, args: &Args) -> ExitCode {
    println!(
        "synthesized {} ({} stabilization) with schedule {}",
        report.name,
        if report.weak { "weak" } else { "strong" },
        report.outcome.schedule,
    );
    println!(
        "verification: {}",
        if report.verified { "PASS (independent model check)" } else { "FAIL" }
    );
    if !report.outcome.added.is_empty() {
        println!("\nrecovery actions added:");
        print!("{}", report.outcome.describe_recovery());
    } else {
        println!("\nno recovery needed — the protocol already stabilizes");
    }
    if let Some(path) = &args.emit_dsl {
        match std::fs::write(path, &report.emitted_dsl) {
            Ok(()) => println!("\nsynthesized protocol written to {path}"),
            Err(e) => eprintln!("stsyn: cannot write {path}: {e}"),
        }
    }
    if !args.quiet {
        print_stats(&report.outcome.stats);
    }
    if args.metrics {
        print!("{}", oneshot_metrics(&report.outcome.stats).render());
    }
    if report.verified {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_SYNTH)
    }
}

fn print_stats(s: &stsyn_core::SynthesisStats) {
    println!("\nstatistics:");
    println!("  candidates considered : {}", s.candidates);
    println!("  groups added          : {}", s.groups_added);
    println!("  ranks (M)             : {}", s.max_rank);
    println!("  finished in pass      : {}", s.finished_in_pass);
    println!("  ranking time          : {:.3}s", s.ranking_secs());
    println!(
        "  SCC detection time    : {:.3}s ({} calls, {} SCCs)",
        s.scc_secs(),
        s.scc_calls,
        s.sccs_found
    );
    println!("  total time            : {:.3}s", s.total_secs());
    println!("  program size          : {} BDD nodes", s.program_nodes);
    println!("  avg SCC size          : {:.1} BDD nodes", s.avg_scc_nodes());
    println!("  peak live nodes       : {}", s.peak_live_nodes);
    println!("  BDD ticks             : {}", s.bdd_ticks);
}

fn report_synthesis_error(e: SynthesisError) -> ExitCode {
    match e {
        SynthesisError::ResourceExhausted { phase, cause, partial } => {
            report_exhausted(&phase, &cause, &partial)
        }
        // Parallel exploration wraps per-schedule failures; when the budget
        // killed every schedule, surface that as exhaustion, not as the
        // heuristic failing.
        SynthesisError::AllSchedulesFailed(inner)
            if matches!(*inner, SynthesisError::ResourceExhausted { .. }) =>
        {
            let SynthesisError::ResourceExhausted { phase, cause, partial } = *inner else {
                unreachable!()
            };
            report_exhausted(&phase, &cause, &partial)
        }
        SynthesisError::Checkpoint(e) => {
            eprintln!("stsyn: checkpoint error: {e}");
            ExitCode::from(EXIT_CHECKPOINT)
        }
        e => {
            eprintln!("stsyn: synthesis failed: {e}");
            ExitCode::from(EXIT_SYNTH)
        }
    }
}

fn report_exhausted(
    phase: &stsyn_core::Phase,
    cause: &stsyn_symbolic::BddError,
    partial: &stsyn_core::PartialProgress,
) -> ExitCode {
    eprintln!("stsyn: resource budget exhausted during {phase}: {cause}");
    eprintln!(
        "stsyn: partial progress: {} rank layers, {} recovery groups added, \
         {} live BDD nodes, {} ticks (manager {})",
        partial.ranks_layered,
        partial.groups_added.len(),
        partial.live_nodes,
        partial.ticks,
        if partial.manager_consistent { "consistent" } else { "INCONSISTENT" },
    );
    eprintln!("stsyn: raise --timeout / --max-nodes and retry");
    ExitCode::from(EXIT_RESOURCES)
}

/// The one-shot run's statistics as Prometheus text exposition
/// (`--metrics`), mirroring the `metrics` verb of the daemon.
fn oneshot_metrics(s: &stsyn_core::SynthesisStats) -> stsyn_obs::MetricsText {
    let mut m = stsyn_obs::MetricsText::new();
    m.counter("stsyn_candidates_total", "Candidate groups considered", s.candidates as u64)
        .counter("stsyn_groups_added_total", "Recovery groups added", s.groups_added as u64)
        .counter("stsyn_scc_calls_total", "SCC decomposition calls", s.scc_calls as u64)
        .counter("stsyn_sccs_found_total", "Non-trivial SCCs found", s.sccs_found as u64)
        .counter("stsyn_bdd_ticks_total", "Budgeted BDD operations", s.bdd_ticks)
        .gauge("stsyn_max_rank", "Number of ranks (paper's M)", s.max_rank as f64)
        .gauge(
            "stsyn_finished_in_pass",
            "Pass that removed the last deadlock",
            f64::from(s.finished_in_pass),
        )
        .gauge(
            "stsyn_program_nodes",
            "Synthesized program size in BDD nodes",
            s.program_nodes as f64,
        )
        .gauge("stsyn_peak_live_nodes", "Peak live BDD nodes", s.peak_live_nodes as f64)
        .gauge("stsyn_ranking_seconds", "Wall time of ComputeRanks", s.ranking_secs())
        .gauge("stsyn_scc_seconds", "Wall time of SCC detection", s.scc_secs())
        .gauge("stsyn_total_seconds", "Wall time of the whole run", s.total_secs());
    m
}

// --------------------------------------------------------- trace-summary

fn trace_summary_main(argv: &[String]) -> Result<ExitCode, CliError> {
    let [file] = argv else {
        return Err(CliError::usage("trace-summary takes exactly one trace file"));
    };
    let summary = stsyn_obs::summarize_file(std::path::Path::new(file))
        .map_err(|e| CliError::Input(format!("{file}: {e}")))?;
    print!("{}", summary.render_table());
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------------------ serve

fn serve_main(argv: &[String]) -> Result<ExitCode, CliError> {
    let mut cfg = ServerConfig::new("stsyn-serve-state");
    cfg.addr = "127.0.0.1:7411".to_string();
    let mut print_addr = false;
    let mut trace: Option<String> = None;
    let mut trace_level = TraceLevel::Info;
    let mut it = argv.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = flag_value(&mut it, "--addr")?,
            "--workers" => {
                let v = flag_value(&mut it, "--workers")?;
                cfg.workers = v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    CliError::usage(format!("--workers `{v}` is not a positive integer"))
                })?;
            }
            "--queue" => {
                let v = flag_value(&mut it, "--queue")?;
                cfg.queue_capacity =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        CliError::usage(format!("--queue `{v}` is not a positive integer"))
                    })?;
            }
            "--state-dir" => cfg.state_dir = flag_value(&mut it, "--state-dir")?.into(),
            "--max-conns" => {
                let v = flag_value(&mut it, "--max-conns")?;
                cfg.max_conns = v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    CliError::usage(format!("--max-conns `{v}` is not a positive integer"))
                })?;
            }
            "--io-timeout" => {
                let v = flag_value(&mut it, "--io-timeout")?;
                let secs =
                    v.parse::<f64>().ok().filter(|&s| s >= 0.0 && s.is_finite()).ok_or_else(
                        || {
                            CliError::usage(format!(
                                "--io-timeout `{v}` is not a non-negative number of seconds"
                            ))
                        },
                    )?;
                // 0 disables the socket deadlines.
                cfg.io_timeout = Duration::from_secs_f64(secs);
            }
            "--quarantine-after" => {
                let v = flag_value(&mut it, "--quarantine-after")?;
                cfg.quarantine_after =
                    v.parse::<u32>().ok().filter(|&k| k > 0).ok_or_else(|| {
                        CliError::usage(format!(
                            "--quarantine-after `{v}` is not a positive integer"
                        ))
                    })?;
            }
            "--store-dir" => cfg.store_dir = Some(flag_value(&mut it, "--store-dir")?.into()),
            "--store-cap-bytes" => {
                let v = flag_value(&mut it, "--store-cap-bytes")?;
                cfg.store_cap_bytes = v.parse::<u64>().ok().ok_or_else(|| {
                    CliError::usage(format!(
                        "--store-cap-bytes `{v}` is not a byte count (0 = unbounded)"
                    ))
                })?;
            }
            "--retain-jobs" => {
                let v = flag_value(&mut it, "--retain-jobs")?;
                cfg.retain_jobs =
                    Some(v.parse::<usize>().ok().filter(|&k| k > 0).ok_or_else(|| {
                        CliError::usage(format!("--retain-jobs `{v}` is not a positive integer"))
                    })?);
            }
            "--trace" => trace = Some(flag_value(&mut it, "--trace")?),
            "--trace-level" => {
                trace_level = parse_trace_level(&flag_value(&mut it, "--trace-level")?)?;
            }
            "--print-addr" => print_addr = true,
            "--help" | "-h" => return Err(CliError::Usage(None)),
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    if cfg.store_dir.is_none() && (cfg.store_cap_bytes != 0 || cfg.retain_jobs.is_some()) {
        return Err(CliError::usage(
            "--store-cap-bytes and --retain-jobs need --store-dir (the store is off without it)",
        ));
    }
    if let Some(path) = &trace {
        cfg.tracer = open_trace(path, trace_level)?;
    }
    let handle =
        Server::start(cfg).map_err(|e| CliError::Service(format!("cannot start daemon: {e}")))?;
    if print_addr {
        // Machine-readable single line for harnesses that bind port 0.
        use std::io::Write as _;
        println!("listening on {}", handle.addr());
        let _ = std::io::stdout().flush();
    } else {
        eprintln!("stsyn-serve: listening on {}", handle.addr());
    }
    handle.join();
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------------------ route

fn route_main(argv: &[String]) -> Result<ExitCode, CliError> {
    let mut shards: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:7410".to_string();
    let mut print_addr = false;
    let mut trace: Option<String> = None;
    let mut trace_level = TraceLevel::Info;
    let mut probe_interval: Option<Duration> = None;
    let mut probe_timeout: Option<Duration> = None;
    let mut down_after: Option<u32> = None;
    let mut io_timeout: Option<Duration> = None;
    let mut it = argv.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shard" => shards.push(flag_value(&mut it, "--shard")?),
            "--addr" => addr = flag_value(&mut it, "--addr")?,
            "--probe-interval-ms" => {
                let v = flag_value(&mut it, "--probe-interval-ms")?;
                let ms = v.parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                    CliError::usage(format!("--probe-interval-ms `{v}` is not a positive integer"))
                })?;
                probe_interval = Some(Duration::from_millis(ms));
            }
            "--probe-timeout-ms" => {
                let v = flag_value(&mut it, "--probe-timeout-ms")?;
                let ms = v.parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                    CliError::usage(format!("--probe-timeout-ms `{v}` is not a positive integer"))
                })?;
                probe_timeout = Some(Duration::from_millis(ms));
            }
            "--down-after" => {
                let v = flag_value(&mut it, "--down-after")?;
                down_after = Some(v.parse::<u32>().ok().filter(|&k| k > 0).ok_or_else(|| {
                    CliError::usage(format!("--down-after `{v}` is not a positive integer"))
                })?);
            }
            "--io-timeout" => {
                let v = flag_value(&mut it, "--io-timeout")?;
                let secs =
                    v.parse::<f64>().ok().filter(|&s| s >= 0.0 && s.is_finite()).ok_or_else(
                        || {
                            CliError::usage(format!(
                                "--io-timeout `{v}` is not a non-negative number of seconds"
                            ))
                        },
                    )?;
                io_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--trace" => trace = Some(flag_value(&mut it, "--trace")?),
            "--trace-level" => {
                trace_level = parse_trace_level(&flag_value(&mut it, "--trace-level")?)?;
            }
            "--print-addr" => print_addr = true,
            "--help" | "-h" => return Err(CliError::Usage(None)),
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    if shards.is_empty() {
        return Err(CliError::usage("route needs at least one --shard HOST:PORT"));
    }
    let mut cfg = RouterConfig::new(shards);
    cfg.addr = addr;
    if let Some(d) = probe_interval {
        cfg.probe_interval = d;
    }
    if let Some(d) = probe_timeout {
        cfg.probe_timeout = d;
    }
    if let Some(k) = down_after {
        cfg.down_after = k;
    }
    if let Some(d) = io_timeout {
        cfg.io_timeout = d;
    }
    if let Some(path) = &trace {
        cfg.tracer = open_trace(path, trace_level)?;
    }
    let handle =
        Router::start(cfg).map_err(|e| CliError::Service(format!("cannot start router: {e}")))?;
    if print_addr {
        use std::io::Write as _;
        println!("listening on {}", handle.addr());
        let _ = std::io::stdout().flush();
    } else {
        eprintln!("stsyn-route: listening on {}", handle.addr());
    }
    handle.join();
    Ok(ExitCode::SUCCESS)
}

// ----------------------------------------------------------------- client

fn client_main(argv: &[String]) -> Result<ExitCode, CliError> {
    let mut addr: Option<String> = None;
    let mut policy = RetryPolicy::default();
    let mut i = 0;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = Some(argv[i + 1].clone()),
            "--retries" => {
                policy.max_retries = argv[i + 1]
                    .parse::<u32>()
                    .map_err(|_| CliError::usage("--retries needs a non-negative integer"))?;
            }
            "--retry-base-ms" => {
                let ms =
                    argv[i + 1].parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                        CliError::usage("--retry-base-ms needs a positive integer")
                    })?;
                policy.base_delay = Duration::from_millis(ms);
            }
            _ => break,
        }
        i += 2;
    }
    let addr = addr.ok_or_else(|| CliError::usage("client needs --addr HOST:PORT"))?;
    let Some(verb) = argv.get(i) else {
        return Err(CliError::usage("client needs a verb"));
    };
    let args = &argv[i + 1..];
    let mut client = Client::connect_with(addr.as_str(), policy)
        .map_err(|e| CliError::Service(e.to_string()))?;
    match verb.as_str() {
        "submit" => client_submit(&mut client, args),
        "status" => {
            let id = parse_id(args)?;
            let resp = client.status(id).map_err(map_client_err)?;
            println!("job {id}: {}", resp.get("state").and_then(Json::as_str).unwrap_or("unknown"));
            Ok(ExitCode::SUCCESS)
        }
        "watch" => {
            let id = parse_id(args)?;
            let status = client.watch(id, render_watch_frame).map_err(map_client_err)?;
            let state = status.get("state").and_then(Json::as_str).unwrap_or("unknown");
            println!("job {id}: {state}");
            if state == "done" {
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::from(EXIT_SYNTH))
            }
        }
        "result" => {
            let id = parse_id(args)?;
            let resp = client.result(id).map_err(map_client_err)?;
            print_wire_result(&resp, &args[1..])?;
            Ok(ExitCode::SUCCESS)
        }
        "cancel" => {
            let id = parse_id(args)?;
            let resp = client.cancel(id).map_err(map_client_err)?;
            println!("job {id}: {}", resp.get("state").and_then(Json::as_str).unwrap_or("unknown"));
            Ok(ExitCode::SUCCESS)
        }
        "stats" => {
            let resp = client.stats().map_err(map_client_err)?;
            if let Json::Obj(pairs) = &resp {
                for (k, v) in pairs.iter().filter(|(k, _)| k != "ok") {
                    println!("{k:<14} {v}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            let text = client.metrics().map_err(map_client_err)?;
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        "ping" => {
            let resp = client.ping().map_err(map_client_err)?;
            println!(
                "pong from {} ({} up {:.1}s)",
                addr,
                resp.get("role").and_then(Json::as_str).unwrap_or("daemon"),
                resp.get("uptime_secs").and_then(Json::as_f64).unwrap_or(0.0),
            );
            Ok(ExitCode::SUCCESS)
        }
        "fleet-stats" => {
            let resp = client.fleet_stats().map_err(map_client_err)?;
            if let Some(Json::Obj(pairs)) = resp.get("router") {
                for (k, v) in pairs.iter().filter(|(k, _)| k != "role") {
                    println!("{k:<18} {v}");
                }
            }
            if let Some(Json::Arr(shards)) = resp.get("shards") {
                for s in shards {
                    println!(
                        "shard {} {:<22} {:<9} consec_failures={} latency_us={}",
                        s.get("shard").and_then(Json::as_u64).unwrap_or(0),
                        s.get("addr").and_then(Json::as_str).unwrap_or("?"),
                        s.get("health").and_then(Json::as_str).unwrap_or("?"),
                        s.get("consec_failures").and_then(Json::as_u64).unwrap_or(0),
                        s.get("latency_us").and_then(Json::as_u64).unwrap_or(0),
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "fleet-metrics" => {
            let text = client.fleet_metrics().map_err(map_client_err)?;
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            let mode = match args {
                [] => ShutdownMode::Drain,
                [m, v] if m == "--mode" && v == "drain" => ShutdownMode::Drain,
                [m, v] if m == "--mode" && v == "checkpoint" => ShutdownMode::Checkpoint,
                _ => return Err(CliError::usage("shutdown takes --mode drain|checkpoint")),
            };
            client.shutdown(mode).map_err(map_client_err)?;
            println!("shutdown requested");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::usage(format!("unknown client verb `{other}`"))),
    }
}

/// Render one live `watch` frame. Progress events print compactly
/// (sequence number, event name, fields); gap markers announce dropped
/// frames; heartbeats are liveness plumbing and stay silent.
fn render_watch_frame(frame: &stsyn_serve::WatchFrame) {
    use stsyn_serve::WatchFrame;
    match frame {
        WatchFrame::Progress { seq, event } => {
            let name = event.get("name").and_then(Json::as_str).unwrap_or("?");
            let mut line = format!("  #{seq:<4} {name}");
            if let Json::Obj(pairs) = event {
                for (k, v) in pairs {
                    if matches!(k.as_str(), "ts_us" | "kind" | "level" | "name" | "span" | "parent")
                    {
                        continue;
                    }
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(&v.to_string());
                }
            }
            println!("{line}");
        }
        WatchFrame::Gap { missed } => {
            println!("  ...  {missed} frame(s) dropped (replay window exceeded)");
        }
        WatchFrame::Heartbeat { .. } | WatchFrame::Status(_) => {}
    }
}

fn parse_id(args: &[String]) -> Result<u64, CliError> {
    args.first()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| CliError::usage("expected a numeric job ID"))
}

// ------------------------------------------------------------------ store

/// `stsyn store stats|gc|verify` — inspect and maintain the artifact
/// store. `stats` and `gc` talk to a running daemon or router (the
/// router fans out to every reachable shard); `verify` opens a store
/// directory offline, re-checks every artifact's CRC, and drops corrupt
/// entries (exit 1 when any were found).
fn store_main(argv: &[String]) -> Result<ExitCode, CliError> {
    let Some(verb) = argv.first().map(String::as_str) else {
        return Err(CliError::usage("store needs a verb: stats, gc or verify"));
    };
    let rest = &argv[1..];
    let mut addr: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut cap_bytes: Option<u64> = None;
    let mut it = rest.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(flag_value(&mut it, "--addr")?),
            "--dir" => dir = Some(flag_value(&mut it, "--dir")?),
            "--cap-bytes" => {
                let v = flag_value(&mut it, "--cap-bytes")?;
                cap_bytes = Some(v.parse::<u64>().ok().ok_or_else(|| {
                    CliError::usage(format!("--cap-bytes `{v}` is not a byte count"))
                })?);
            }
            "--help" | "-h" => return Err(CliError::Usage(None)),
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    match verb {
        "stats" => {
            let addr = addr.ok_or_else(|| CliError::usage("store stats needs --addr"))?;
            let mut client =
                Client::connect(addr.as_str()).map_err(|e| CliError::Service(e.to_string()))?;
            let resp = client.store_stats().map_err(map_client_err)?;
            print_store_response(&resp);
            Ok(ExitCode::SUCCESS)
        }
        "gc" => {
            let addr = addr.ok_or_else(|| CliError::usage("store gc needs --addr"))?;
            let mut client =
                Client::connect(addr.as_str()).map_err(|e| CliError::Service(e.to_string()))?;
            let resp = client.store_gc(cap_bytes).map_err(map_client_err)?;
            print_store_response(&resp);
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let dir = dir.ok_or_else(|| CliError::usage("store verify needs --dir PATH"))?;
            let store = stsyn_store::Store::open(&dir, 0)
                .map_err(|e| CliError::Input(format!("{dir}: {e}")))?;
            let report = store
                .verify()
                .map_err(|e| CliError::Input(format!("{dir}: verification failed: {e}")))?;
            println!("verified        {}", report.verified);
            println!("corrupt_dropped {}", report.corrupt_dropped);
            if report.corrupt_dropped > 0 {
                eprintln!("stsyn: store had corrupt entries; they were dropped");
                return Ok(ExitCode::from(EXIT_SYNTH));
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::usage(format!("unknown store verb `{other}`"))),
    }
}

/// Print a `store-stats`/`store-gc` response: scalar totals first, then
/// one line per shard when a router answered.
fn print_store_response(resp: &Json) {
    if let Json::Obj(pairs) = resp {
        for (k, v) in pairs {
            match (k.as_str(), v) {
                ("ok", _) => {}
                ("shards", Json::Arr(shards)) => {
                    for shard in shards {
                        let i = shard.get("shard").and_then(Json::as_u64).unwrap_or(0);
                        let addr = shard.get("addr").and_then(Json::as_str).unwrap_or("?");
                        match shard.get("response") {
                            Some(r) => println!("shard {i} ({addr}): {r}"),
                            None => println!(
                                "shard {i} ({addr}): error {}",
                                shard.get("error").and_then(Json::as_str).unwrap_or("?")
                            ),
                        }
                    }
                }
                _ => println!("{k:<16} {v}"),
            }
        }
    }
}

fn map_client_err(e: ClientError) -> CliError {
    match e {
        ClientError::Rejected { code, message } => {
            let exit = match code.as_str() {
                "queue-full" | "busy" | "shutting-down" => EXIT_REJECTED,
                "degraded" | "no-shards" => EXIT_FLEET,
                "input-error" | "bad-request" | "bad-spec" | "unknown-job" => EXIT_INPUT,
                "budget-exhausted" => EXIT_RESOURCES,
                "checkpoint-error" => EXIT_CHECKPOINT,
                _ => EXIT_SYNTH,
            };
            CliError::Refused { exit, message: format!("{code}: {message}") }
        }
        other => CliError::Service(other.to_string()),
    }
}

fn client_submit(client: &mut Client, args: &[String]) -> Result<ExitCode, CliError> {
    let mut file: Option<String> = None;
    let mut case: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut d: u32 = 0;
    let mut wait = false;
    let mut wait_secs: f64 = 600.0;
    let mut spec = SubmitSpec::new(stsyn_serve::JobSource::Dsl(String::new()));
    let mut emit_dsl: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--case" => case = Some(flag_value(&mut it, "--case")?),
            "--n" => {
                n = Some(
                    flag_value(&mut it, "--n")?
                        .parse()
                        .map_err(|_| CliError::usage("--n needs a positive integer"))?,
                )
            }
            "--d" => {
                d = flag_value(&mut it, "--d")?
                    .parse()
                    .map_err(|_| CliError::usage("--d needs a positive integer"))?
            }
            "--weak" => spec.weak = true,
            "--schedule" => {
                spec.schedule = Some(parse_schedule(&flag_value(&mut it, "--schedule")?)?);
            }
            "--engine" => {
                spec.engine = parse_engine(&flag_value(&mut it, "--engine")?)?;
            }
            "--priority" => {
                spec.priority = flag_value(&mut it, "--priority")?
                    .parse()
                    .map_err(|_| CliError::usage("--priority needs an integer"))?
            }
            "--timeout" => {
                spec.timeout_secs = Some(
                    flag_value(&mut it, "--timeout")?
                        .parse()
                        .map_err(|_| CliError::usage("--timeout needs a number of seconds"))?,
                )
            }
            "--max-nodes" => {
                spec.max_nodes = Some(
                    flag_value(&mut it, "--max-nodes")?
                        .parse()
                        .map_err(|_| CliError::usage("--max-nodes needs a positive integer"))?,
                )
            }
            "--max-ticks" => {
                spec.max_ticks = Some(
                    flag_value(&mut it, "--max-ticks")?
                        .parse()
                        .map_err(|_| CliError::usage("--max-ticks needs a positive integer"))?,
                )
            }
            "--wait" => wait = true,
            "--wait-secs" => {
                wait_secs = flag_value(&mut it, "--wait-secs")?
                    .parse()
                    .map_err(|_| CliError::usage("--wait-secs needs a number of seconds"))?
            }
            "--emit-dsl" => emit_dsl = Some(flag_value(&mut it, "--emit-dsl")?),
            "--quiet" => quiet = true,
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    spec.source = match (file, case) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
            stsyn_serve::JobSource::Dsl(text)
        }
        (None, Some(name)) => {
            let n = n.ok_or_else(|| CliError::usage("--case needs --n N"))?;
            stsyn_serve::JobSource::Case { name, n, d }
        }
        _ => return Err(CliError::usage("submit needs exactly one of FILE or --case NAME")),
    };
    let id = client.submit(&spec).map_err(map_client_err)?;
    println!("submitted job {id}");
    if !wait {
        return Ok(ExitCode::SUCCESS);
    }
    let resp = client.wait(id, Duration::from_secs_f64(wait_secs)).map_err(map_client_err)?;
    let mut trailing: Vec<String> = Vec::new();
    if let Some(p) = emit_dsl {
        trailing.push("--emit-dsl".to_string());
        trailing.push(p);
    }
    if quiet {
        trailing.push("--quiet".to_string());
    }
    print_wire_result(&resp, &trailing)?;
    Ok(ExitCode::SUCCESS)
}

/// Print a `result` response; honors trailing `--emit-dsl PATH` and
/// `--quiet` options.
fn print_wire_result(resp: &Json, args: &[String]) -> Result<(), CliError> {
    let mut emit_dsl: Option<&str> = None;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--emit-dsl" if i + 1 < args.len() => {
                emit_dsl = Some(&args[i + 1]);
                i += 1;
            }
            "--quiet" => quiet = true,
            other => return Err(CliError::usage(format!("unexpected argument `{other}`"))),
        }
        i += 1;
    }
    let verified = resp.get("verified").and_then(Json::as_bool).unwrap_or(false);
    let weak = resp.get("weak").and_then(Json::as_bool).unwrap_or(false);
    println!(
        "job {}: {} ({} stabilization), verification: {}",
        resp.get("id").and_then(Json::as_u64).unwrap_or(0),
        resp.get("name").and_then(Json::as_str).unwrap_or("?"),
        if weak { "weak" } else { "strong" },
        if verified { "PASS" } else { "FAIL" },
    );
    if !quiet {
        if let Some(recovery) = resp.get("recovery").and_then(Json::as_str) {
            if !recovery.is_empty() {
                println!("recovery actions added:\n{recovery}");
            }
        }
    }
    if let Some(path) = emit_dsl {
        let text = resp
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Service("result carries no protocol text".into()))?;
        std::fs::write(path, text)
            .map_err(|e| CliError::Input(format!("cannot write {path}: {e}")))?;
        println!("synthesized protocol written to {path}");
    }
    if !quiet {
        if let Some(Json::Obj(pairs)) = resp.get("stats") {
            println!("statistics:");
            for (k, v) in pairs {
                println!("  {k:<16} {v}");
            }
        }
    }
    Ok(())
}
