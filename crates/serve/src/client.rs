//! A blocking client for the job service, used by `stsyn client ...`,
//! the loopback test-suite and the throughput bench.

use crate::json::Json;
use crate::server::ShutdownMode;
use crate::wire::SubmitSpec;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug, Clone)]
pub enum ClientError {
    /// Connecting, reading or writing the socket failed.
    Io(String),
    /// The server answered with something unparseable (or hung up).
    Protocol(String),
    /// The server refused the request; carries the wire error code
    /// (`queue-full`, `input-error`, `unknown-job`, ...) and message.
    Rejected {
        /// Machine-readable error code.
        code: String,
        /// Human-readable explanation.
        message: String,
    },
    /// A wait timed out before the job reached a terminal state.
    Timeout,
}

impl ClientError {
    /// The wire error code, when the server refused the request.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Rejected { code, .. } => Some(code),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "connection error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected { code, message } => write!(f, "{code}: {message}"),
            ClientError::Timeout => write!(f, "timed out waiting for the job to finish"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to a daemon; requests are serialized on it.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7411`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.set_nodelay(true).ok();
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| ClientError::Io(e.to_string()))?);
        Ok(Client { reader, writer: stream })
    }

    /// Send one request object, read one response object. Responses with
    /// `"ok": false` surface as [`ClientError::Rejected`].
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        let mut line = req.to_string();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).map_err(|e| ClientError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let v = Json::parse(&resp).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if v.get("ok").and_then(Json::as_bool) == Some(false) {
            return Err(ClientError::Rejected {
                code: v.get("code").and_then(Json::as_str).unwrap_or("error").to_string(),
                message: v.get("error").and_then(Json::as_str).unwrap_or("").to_string(),
            });
        }
        Ok(v)
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<u64, ClientError> {
        let resp =
            self.request(&Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())]))?;
        resp.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response lacks an id".into()))
    }

    /// Job status (`state`, timings).
    pub fn status(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "status".into()), ("id", id.into())]))
    }

    /// The job's state string, for polling.
    pub fn state(&mut self, id: u64) -> Result<String, ClientError> {
        Ok(self.status(id)?.get("state").and_then(Json::as_str).unwrap_or("unknown").to_string())
    }

    /// Fetch the result of a finished job. A failed job surfaces as
    /// [`ClientError::Rejected`] with its failure code.
    pub fn result(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "result".into()), ("id", id.into())]))
    }

    /// Request cooperative cancellation.
    pub fn cancel(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "cancel".into()), ("id", id.into())]))
    }

    /// Service counters.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "stats".into())]))
    }

    /// Service counters and gauges as Prometheus text-format exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Json::obj(vec![("op", "metrics".into())]))?;
        resp.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response lacks a metrics field".into()))
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self, mode: ShutdownMode) -> Result<(), ClientError> {
        let mode = match mode {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Checkpoint => "checkpoint",
        };
        self.request(&Json::obj(vec![("op", "shutdown".into()), ("mode", mode.into())])).map(|_| ())
    }

    /// Poll until the job reaches a terminal state, then fetch its
    /// result. Cancelled jobs surface as `Rejected { code: "cancelled" }`.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.state(id)?.as_str() {
                "queued" | "running" => {}
                _ => return self.result(id),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}
