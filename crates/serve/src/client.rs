//! A blocking client for the job service, used by `stsyn client ...`,
//! the loopback test-suite and the throughput bench.
//!
//! ## Resilience
//!
//! Transient failures — a refused or dropped connection, a `queue-full`
//! or `busy` rejection, a read that hit the socket deadline — are
//! retried with capped exponential backoff and jitter, up to
//! [`RetryPolicy::max_retries`] times per request. Retrying a `submit`
//! is safe because every logical submission carries an idempotency key
//! (auto-derived per [`Client::submit`] call): if the first attempt
//! reached the daemon and only the *response* was lost, the retry is
//! answered with the already-admitted job id instead of enqueueing a
//! duplicate. Permanent rejections (`input-error`, `unknown-job`,
//! `quarantined`, ...) are never retried.

use crate::chaos::XorShift64;
use crate::json::Json;
use crate::server::ShutdownMode;
use crate::wire::SubmitSpec;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug, Clone)]
pub enum ClientError {
    /// Connecting, reading or writing the socket failed.
    Io(String),
    /// The server answered with something unparseable (or hung up).
    Protocol(String),
    /// The server refused the request; carries the wire error code
    /// (`queue-full`, `busy`, `input-error`, `unknown-job`, ...) and
    /// message.
    Rejected {
        /// Machine-readable error code.
        code: String,
        /// Human-readable explanation.
        message: String,
    },
    /// A wait timed out before the job reached a terminal state.
    Timeout,
}

impl ClientError {
    /// The wire error code, when the server refused the request.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Rejected { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Is this worth another attempt? Connection trouble, garbled frames
    /// and explicit backpressure are transient; everything else is a
    /// definitive answer.
    fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            // `degraded` / `no-shards` come from the router while the
            // fleet is mid-fault; a stabilizing fleet serves them soon.
            ClientError::Rejected { code, .. } => {
                matches!(code.as_str(), "queue-full" | "busy" | "degraded" | "no-shards")
            }
            ClientError::Timeout => false,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "connection error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected { code, message } => write!(f, "{code}: {message}"),
            ClientError::Timeout => write!(f, "timed out waiting for the job to finish"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One frame of a `watch` stream (see `op_watch_stream` in the server).
#[derive(Debug, Clone)]
pub enum WatchFrame {
    /// A progress event teed from the job's tracer (or a `job.state`
    /// lifecycle event), with its bus sequence number.
    Progress {
        /// Bus sequence number (resume cursor).
        seq: u64,
        /// The trace/lifecycle record.
        event: Json,
    },
    /// The bus dropped `missed` frames before this point (slow reader or
    /// late subscribe past the replay window).
    Gap {
        /// How many frames were lost.
        missed: u64,
    },
    /// Liveness frame while the job makes no visible progress.
    Heartbeat {
        /// Job state at heartbeat time (`queued` / `running`).
        state: String,
    },
    /// Terminal frame: the job's final `status` payload. Always last.
    Status(Json),
}

impl WatchFrame {
    fn from_json(v: &Json) -> Option<WatchFrame> {
        match v.get("frame").and_then(Json::as_str)? {
            "progress" => Some(WatchFrame::Progress {
                seq: v.get("seq").and_then(Json::as_u64)?,
                event: v.get("event").cloned().unwrap_or(Json::Null),
            }),
            "gap" => Some(WatchFrame::Gap { missed: v.get("missed").and_then(Json::as_u64)? }),
            "heartbeat" => Some(WatchFrame::Heartbeat {
                state: v.get("state").and_then(Json::as_str).unwrap_or("unknown").to_string(),
            }),
            "status" => Some(WatchFrame::Status(v.clone())),
            _ => None,
        }
    }
}

/// Retry/backoff configuration for one [`Client`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Socket read/write deadline; `None` blocks forever (a `wait` on a
    /// long job polls, so requests themselves are always short).
    pub io_timeout: Option<Duration>,
    /// Jitter seed; `None` seeds from time/pid (tests pin it for
    /// reproducible schedules).
    pub seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            io_timeout: Some(Duration::from_secs(30)),
            seed: None,
        }
    }
}

impl RetryPolicy {
    /// Fail-fast policy: no retries, no socket deadline. The error the
    /// daemon actually sent is what the caller sees.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            io_timeout: None,
            seed: None,
        }
    }
}

fn auto_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) ^ d.as_secs())
        .unwrap_or(0);
    nanos
        ^ (u64::from(std::process::id()) << 32)
        ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// One connection to a daemon; requests are serialized on it. The client
/// reconnects transparently when a retryable request finds the
/// connection dead.
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
    rng: XorShift64,
    /// Salt for auto-derived idempotency keys: distinct per client, so
    /// two clients submitting the same workload still get two jobs.
    client_key: u64,
    /// Logical-submission counter feeding the auto idempotency key.
    seq: u64,
    /// Transient failures retried so far (observability; the CLI and
    /// tests read it).
    retries: u64,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7411`) with the default retry
    /// policy.
    pub fn connect<A: ToSocketAddrs + ToString>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// Connect with an explicit retry policy. The initial dial itself is
    /// retried under the policy, so racing a daemon's startup works.
    pub fn connect_with<A: ToSocketAddrs + ToString>(
        addr: A,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        let seed = policy.seed.unwrap_or_else(auto_seed);
        let mut rng = XorShift64::new(seed);
        let client_key = rng.next_u64();
        let mut client = Client {
            addr: addr.to_string(),
            policy,
            conn: None,
            rng,
            client_key,
            seq: 0,
            retries: 0,
        };
        let mut attempt: u32 = 0;
        loop {
            match client.dial() {
                Ok(()) => return Ok(client),
                Err(e) if attempt < client.policy.max_retries => {
                    attempt += 1;
                    client.retries += 1;
                    let delay = client.backoff_delay(attempt);
                    std::thread::sleep(delay);
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Transient failures retried by this client so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn dial(&mut self) -> Result<(), ClientError> {
        let stream =
            TcpStream::connect(self.addr.as_str()).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.set_nodelay(true).ok();
        if let Some(t) = self.policy.io_timeout {
            stream.set_read_timeout(Some(t)).map_err(|e| ClientError::Io(e.to_string()))?;
            stream.set_write_timeout(Some(t)).map_err(|e| ClientError::Io(e.to_string()))?;
        }
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| ClientError::Io(e.to_string()))?);
        self.conn = Some((reader, stream));
        Ok(())
    }

    /// Exponential backoff with half-jitter: half the nominal delay is
    /// deterministic, the other half uniformly random, so retrying
    /// clients don't stampede in lockstep.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.max_delay);
        let nanos = exp.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(nanos / 2 + self.rng.below(nanos / 2 + 1))
    }

    /// Send one request object, read one response object. Responses with
    /// `"ok": false` surface as [`ClientError::Rejected`]. Transient
    /// failures are retried per the policy, reconnecting as needed.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            let result = self.request_once(req);
            match result {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.retries += 1;
                    // Connection state after an I/O or framing failure is
                    // unknowable — and a `busy` rejection is followed by a
                    // server-side close — so start the next attempt fresh.
                    self.conn = None;
                    let delay = self.backoff_delay(attempt);
                    std::thread::sleep(delay);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn request_once(&mut self, req: &Json) -> Result<Json, ClientError> {
        if self.conn.is_none() {
            self.dial()?;
        }
        let (reader, writer) = self.conn.as_mut().expect("dial() just set the connection");
        let mut line = req.to_string();
        line.push('\n');
        let sent = writer.write_all(line.as_bytes()).and_then(|()| writer.flush());
        if let Err(e) = sent {
            self.conn = None;
            return Err(ClientError::Io(e.to_string()));
        }
        let mut resp = String::new();
        let n = match reader.read_line(&mut resp) {
            Ok(n) => n,
            Err(e) => {
                self.conn = None;
                return Err(ClientError::Io(e.to_string()));
            }
        };
        if n == 0 {
            self.conn = None;
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let v = match Json::parse(&resp) {
            Ok(v) => v,
            Err(e) => {
                self.conn = None;
                return Err(ClientError::Protocol(e.to_string()));
            }
        };
        if v.get("ok").and_then(Json::as_bool) == Some(false) {
            return Err(ClientError::Rejected {
                code: v.get("code").and_then(Json::as_str).unwrap_or("error").to_string(),
                message: v.get("error").and_then(Json::as_str).unwrap_or("").to_string(),
            });
        }
        Ok(v)
    }

    /// Submit a job; returns its id. When the spec carries no explicit
    /// idempotency key, one is derived for this call — stable across the
    /// call's internal retries (no duplicate jobs when a response is
    /// lost), distinct across calls (submitting the same workload twice
    /// on purpose still yields two jobs).
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<u64, ClientError> {
        let mut spec = spec.clone();
        if spec.idem.is_none() {
            self.seq += 1;
            spec.idem = Some(crate::wire::fold_idem(
                spec.fingerprint()
                    ^ self.client_key.wrapping_add(self.seq).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
        }
        let resp =
            self.request(&Json::obj(vec![("op", "submit".into()), ("job", spec.to_json())]))?;
        resp.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response lacks an id".into()))
    }

    /// Submit with content-addressed dedup: the idempotency key is the
    /// spec's [`fingerprint`](SubmitSpec::fingerprint), so an identical
    /// workload already known to the daemon — from any client, or from a
    /// previous daemon via restart recovery — returns the existing id.
    pub fn submit_dedup(&mut self, spec: &SubmitSpec) -> Result<u64, ClientError> {
        let mut spec = spec.clone();
        spec.idem = Some(spec.fingerprint());
        self.submit(&spec)
    }

    /// Job status (`state`, timings).
    pub fn status(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "status".into()), ("id", id.into())]))
    }

    /// The job's state string, for polling.
    pub fn state(&mut self, id: u64) -> Result<String, ClientError> {
        Ok(self.status(id)?.get("state").and_then(Json::as_str).unwrap_or("unknown").to_string())
    }

    /// Fetch the result of a finished job. A failed job surfaces as
    /// [`ClientError::Rejected`] with its failure code.
    pub fn result(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "result".into()), ("id", id.into())]))
    }

    /// Request cooperative cancellation.
    pub fn cancel(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "cancel".into()), ("id", id.into())]))
    }

    /// Service counters.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "stats".into())]))
    }

    /// Health probe: one `ping` round trip. Works against both a daemon
    /// and a router (the router's pong carries `role: "router"`).
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "ping".into())]))
    }

    /// Fleet-wide stats from a router: its own counters plus per-shard
    /// health and (for reachable shards) each shard's `stats` inline.
    pub fn fleet_stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "fleet-stats".into())]))
    }

    /// Fleet-wide Prometheus text from a router (router series plus job
    /// counters aggregated across reachable shards).
    pub fn fleet_metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Json::obj(vec![("op", "fleet-metrics".into())]))?;
        resp.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response lacks a metrics field".into()))
    }

    /// Artifact store counters and footprint. Against a daemon this is
    /// its own store; against a router, per-shard responses plus fleet
    /// totals. Errors `store-disabled` when no store is configured.
    pub fn store_stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("op", "store-stats".into())]))
    }

    /// Evict store entries down to the configured cap, or to an
    /// explicit byte-cap override. A router fans the GC out to every
    /// reachable shard.
    pub fn store_gc(&mut self, cap_bytes: Option<u64>) -> Result<Json, ClientError> {
        let mut pairs: Vec<(&str, Json)> = vec![("op", "store-gc".into())];
        if let Some(cap) = cap_bytes {
            pairs.push(("cap_bytes", cap.into()));
        }
        self.request(&Json::obj(pairs))
    }

    /// Service counters and gauges as Prometheus text-format exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = self.request(&Json::obj(vec![("op", "metrics".into())]))?;
        resp.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response lacks a metrics field".into()))
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self, mode: ShutdownMode) -> Result<(), ClientError> {
        let mode = match mode {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Checkpoint => "checkpoint",
        };
        self.request(&Json::obj(vec![("op", "shutdown".into()), ("mode", mode.into())])).map(|_| ())
    }

    /// Stream live progress for a job until it reaches a terminal state.
    /// `on_frame` sees every frame (progress events, gap markers,
    /// heartbeats) and finally the terminal [`WatchFrame::Status`], whose
    /// payload is also the return value. Transient transport failures
    /// mid-stream are retried per the policy, resuming from the last
    /// sequence number seen (dropped frames surface as
    /// [`WatchFrame::Gap`] if the bus has moved past it).
    pub fn watch(
        &mut self,
        id: u64,
        mut on_frame: impl FnMut(&WatchFrame),
    ) -> Result<Json, ClientError> {
        let mut cursor: Option<u64> = None;
        let mut attempt: u32 = 0;
        loop {
            match self.watch_once(id, &mut cursor, None, &mut on_frame) {
                Ok(status) => return Ok(status),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.retries += 1;
                    self.conn = None;
                    let delay = self.backoff_delay(attempt);
                    std::thread::sleep(delay);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One watch attempt on the current connection. Updates `cursor` to
    /// `last seq + 1` as progress frames arrive so a retry resumes where
    /// this attempt stopped. With a `deadline`, per-read socket timeouts
    /// are clamped to the time remaining and expiry surfaces as
    /// [`ClientError::Timeout`].
    fn watch_once(
        &mut self,
        id: u64,
        cursor: &mut Option<u64>,
        deadline: Option<Instant>,
        on_frame: &mut dyn FnMut(&WatchFrame),
    ) -> Result<Json, ClientError> {
        if self.conn.is_none() {
            self.dial()?;
        }
        let (reader, writer) = self.conn.as_mut().expect("dial() just set the connection");
        let mut pairs: Vec<(&str, Json)> = vec![("op", "watch".into()), ("id", id.into())];
        if let Some(seq) = *cursor {
            pairs.push(("from_seq", seq.into()));
        }
        let mut line = Json::obj(pairs).to_string();
        line.push('\n');
        if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| writer.flush()) {
            self.conn = None;
            return Err(ClientError::Io(e.to_string()));
        }
        loop {
            if let Some(dl) = deadline {
                let remaining = dl.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    // The stream is mid-flight; this connection can't be
                    // reused for request/response traffic.
                    self.conn = None;
                    return Err(ClientError::Timeout);
                }
                let per_read = match self.policy.io_timeout {
                    Some(t) => t.min(remaining),
                    None => remaining,
                };
                writer.set_read_timeout(Some(per_read.max(Duration::from_millis(1)))).ok();
            }
            let mut resp = String::new();
            let n = match reader.read_line(&mut resp) {
                Ok(n) => n,
                Err(e) => {
                    self.conn = None;
                    let timed_out = matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    );
                    if timed_out && deadline.is_some_and(|dl| Instant::now() >= dl) {
                        return Err(ClientError::Timeout);
                    }
                    return Err(ClientError::Io(e.to_string()));
                }
            };
            if n == 0 {
                self.conn = None;
                return Err(ClientError::Protocol("server closed the connection".into()));
            }
            let v = match Json::parse(&resp) {
                Ok(v) => v,
                Err(e) => {
                    self.conn = None;
                    return Err(ClientError::Protocol(e.to_string()));
                }
            };
            if v.get("frame").is_none() {
                // A plain response instead of a stream: the setup was
                // refused (unknown job, or a daemon that predates
                // `watch` answering `bad-request`). The connection stays
                // usable for ordinary requests.
                if v.get("ok").and_then(Json::as_bool) == Some(false) {
                    if deadline.is_some() {
                        writer.set_read_timeout(self.policy.io_timeout).ok();
                    }
                    return Err(ClientError::Rejected {
                        code: v.get("code").and_then(Json::as_str).unwrap_or("error").to_string(),
                        message: v.get("error").and_then(Json::as_str).unwrap_or("").to_string(),
                    });
                }
                self.conn = None;
                return Err(ClientError::Protocol("expected a watch frame".into()));
            }
            let frame = match WatchFrame::from_json(&v) {
                Some(f) => f,
                None => continue, // unknown frame kind from a newer server: skip
            };
            if let WatchFrame::Progress { seq, .. } = frame {
                *cursor = Some(seq + 1);
            }
            let terminal = matches!(frame, WatchFrame::Status(_));
            on_frame(&frame);
            if terminal {
                if deadline.is_some() {
                    // Restore the policy-wide socket deadline we clamped.
                    writer.set_read_timeout(self.policy.io_timeout).ok();
                }
                return Ok(v);
            }
        }
    }

    /// Poll until the job reaches a terminal state, then fetch its
    /// result. Cancelled jobs surface as `Rejected { code: "cancelled" }`.
    ///
    /// When the service supports the `watch` verb, this rides the live
    /// progress stream (one long-lived read instead of a polling train)
    /// and wakes the moment the terminal frame lands. Against an older
    /// daemon or router (which answers `watch` with `bad-request`), or if
    /// the stream keeps dying, it falls back to polling with exponential
    /// backoff from 5 ms to a 400 ms cap (with jitter).
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut cursor: Option<u64> = None;
        let mut attempt: u32 = 0;
        loop {
            match self.watch_once(id, &mut cursor, Some(deadline), &mut |_| {}) {
                Ok(_status) => return self.result(id),
                Err(ClientError::Rejected { code, .. }) if code == "bad-request" => break,
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.retries += 1;
                    self.conn = None;
                    std::thread::sleep(
                        self.backoff_delay(attempt)
                            .min(deadline.saturating_duration_since(Instant::now())),
                    );
                }
                Err(ClientError::Timeout) => return Err(ClientError::Timeout),
                // Terminal rejections (unknown-job, ...) and exhausted
                // retries: let the polling path render the final answer —
                // it reproduces the pre-watch behavior exactly.
                Err(_) => break,
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
        }
        self.wait_by_polling(id, deadline)
    }

    fn wait_by_polling(&mut self, id: u64, deadline: Instant) -> Result<Json, ClientError> {
        let mut delay = Duration::from_millis(5);
        let cap = Duration::from_millis(400);
        loop {
            match self.state(id)?.as_str() {
                "queued" | "running" => {}
                _ => return self.result(id),
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout);
            }
            let nanos = delay.as_nanos() as u64;
            let jittered = Duration::from_nanos(nanos / 2 + self.rng.below(nanos / 2 + 1));
            std::thread::sleep(jittered.min(deadline.saturating_duration_since(Instant::now())));
            delay = (delay * 2).min(cap);
        }
    }
}
