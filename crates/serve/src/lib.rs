//! # stsyn-serve — a multi-client synthesis job service
//!
//! The ROADMAP's north star is a serving system, not a one-shot CLI: this
//! crate turns the synthesizer into a long-running daemon that accepts
//! jobs from many clients, runs them on a worker pool, survives being
//! `SIGKILL`ed mid-job, and exposes live job control. It is **std-only**
//! (hand-rolled newline-delimited-JSON framing over
//! [`std::net::TcpListener`], in the spirit of the hand-rolled checkpoint
//! frame format) so the workspace still builds fully offline.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──NDJSON/TCP──▶ acceptor ──▶ bounded priority queue ──▶ worker pool
//!                             │              (backpressure)          │ each job:
//!                             │                                      │  Budget +
//!                        job registry ◀───────── results ───────────┘  checkpoint dir
//!                             │
//!                     state dir (spec.json / ckpt/ / result.json)
//! ```
//!
//! * [`queue`] — the bounded priority queue: explicit `queue-full`
//!   rejection, never unbounded memory.
//! * [`server`] — the daemon: job registry, worker pool (one
//!   budget-guarded, checkpointed `stsyn_core::job::JobSpec::run` per
//!   worker), persistent state directory, restart recovery, and the
//!   `submit` / `status` / `result` / `cancel` / `ping` / `stats` /
//!   `shutdown` verbs.
//! * [`router`] — the fleet front door (`stsyn route`): consistent-hashes
//!   idempotency keys across N backend daemons, probes shard health,
//!   fails pending work over to surviving shards by resubmitting under
//!   the same idempotency key, and aggregates fleet-wide stats/metrics.
//! * [`client`] — a blocking client for the wire protocol, with capped
//!   exponential-backoff retry made safe by idempotent submission.
//! * [`wire`] — the job-specification encoding shared by both sides.
//! * [`chaos`] — a deterministic seeded chaos proxy for fault-injection
//!   tests (disconnects, torn frames, slow writes, stalled reads).
//! * [`json`] — the dependency-free JSON layer underneath it all.
//!
//! ## Durability contract
//!
//! Every accepted job is persisted **before** the daemon acknowledges it;
//! strong jobs checkpoint their progress through `stsyn-core`'s
//! write-ahead journal. Kill the daemon at any point and the next start
//! re-enqueues in-flight jobs, resuming them from their journals to
//! results byte-identical to uninterrupted runs (the property PR 2's
//! crash harness sweeps). Cancellation is cooperative through the same
//! [`stsyn_symbolic::Budget`] flags the CLI uses, honored within one
//! budget tick-check interval.
//!
//! ## Self-healing
//!
//! The daemon is hardened against its own failure modes: socket
//! deadlines and a connection cap bound hostile or stalled clients, a
//! `catch_unwind` fence plus worker supervision survives panicking jobs,
//! and a durable attempts ledger quarantines poison jobs instead of
//! retrying them forever. The client heals transient faults with
//! jittered exponential backoff; idempotency keys make those retries
//! exactly-once. See `DESIGN.md`'s "Fault model & self-healing" section.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod json;
pub mod queue;
pub mod router;
pub mod server;
pub mod wire;

pub use chaos::{ChaosProxy, Direction, Fault, FaultPlan, LinkMode, LinkProxy, XorShift64};
pub use client::{Client, ClientError, RetryPolicy, WatchFrame};
pub use json::Json;
pub use queue::{PriorityQueue, PushError};
pub use router::{HashRing, Router, RouterConfig, RouterHandle, ShardHealth};
pub use server::{Server, ServerConfig, ServerHandle, ShutdownMode};
pub use wire::{ChaosJob, JobSource, SubmitSpec};
