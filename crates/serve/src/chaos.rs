//! A deterministic, seeded chaos proxy for fault-injection testing of
//! the wire protocol.
//!
//! [`ChaosProxy`] sits between a client and the daemon on loopback TCP
//! and injects exactly one scripted fault into the **first** connection
//! that passes through it; every later connection (a client's retry) is
//! forwarded transparently. The fault — kind, direction and byte offset
//! — is derived from a seed and a sweep point number by [`FaultPlan::
//! derive`], so a failing sweep point reproduces exactly from its
//! `(seed, point)` pair with no real randomness involved.
//!
//! The four fault kinds mirror the ways a real network hurts an NDJSON
//! protocol:
//!
//! * [`Fault::Disconnect`] — the peer vanishes *between* frames (the cut
//!   is deferred to the next `\n` boundary);
//! * [`Fault::TornFrame`] — the peer vanishes *mid-frame*, leaving a
//!   truncated JSON line on the other side;
//! * [`Fault::SlowWrite`] — bytes dribble through one at a time for a
//!   stretch (no loss; exercises timeouts that must *not* fire);
//! * [`Fault::StalledRead`] — the stream freezes for longer than the
//!   receiver's I/O deadline, then dies (exercises idle/stall reaping).
//!
//! The module also hosts [`XorShift64`], the dependency-free PRNG shared
//! with the client's retry jitter, and — since the fleet-level chaos
//! harness — [`LinkProxy`], a *switchable* link between a router and one
//! shard. Where [`ChaosProxy`] scripts one per-connection fault,
//! `LinkProxy` models faults that take out a whole network path: flip it
//! to [`LinkMode::BlackHole`] and every byte in flight (and every probe)
//! vanishes without an error, flip it to [`LinkMode::Refuse`] and new
//! connections die instantly, flip it back to [`LinkMode::Forward`] and
//! the path heals — which is exactly the partition/heal cycle a
//! self-stabilizing fleet must converge through. Killing the daemon
//! process itself (the third fleet fault) needs no proxy: the fleet
//! tests SIGKILL a real `stsyn serve` child.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A tiny xorshift* PRNG: deterministic, seedable, dependency-free.
/// Quality is plenty for jitter and fault-plan derivation.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator (a zero seed is remapped — xorshift has a fixed
    /// point at zero).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// What the proxy does to the victim connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close both ends at the next frame boundary after the offset.
    Disconnect,
    /// Dribble the next stretch of bytes one at a time with a delay.
    SlowWrite,
    /// Cut mid-frame at exactly the offset, leaving a torn line.
    TornFrame,
    /// Freeze the stream for `stall`, then close it.
    StalledRead,
}

/// Which half of the duplex stream the fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Requests: client bytes on their way to the daemon.
    ClientToServer,
    /// Responses: daemon bytes on their way back to the client.
    ServerToClient,
}

/// One fully-determined fault: kind, direction, trigger offset, timing.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The fault kind.
    pub fault: Fault,
    /// The direction it fires in.
    pub direction: Direction,
    /// Cumulative byte offset (in that direction) at which it fires.
    pub offset: u64,
    /// Freeze length for [`Fault::StalledRead`]; pick it longer than the
    /// receiver's I/O deadline so the reap path actually triggers.
    pub stall: Duration,
    /// Per-byte delay for [`Fault::SlowWrite`].
    pub slow: Duration,
}

impl FaultPlan {
    /// Derive sweep point `point` of the seeded sweep `seed`. The same
    /// pair always yields the same plan.
    pub fn derive(seed: u64, point: u64, stall: Duration) -> FaultPlan {
        let mut rng = XorShift64::new(seed ^ point.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 1);
        let fault = match rng.below(4) {
            0 => Fault::Disconnect,
            1 => Fault::SlowWrite,
            2 => Fault::TornFrame,
            _ => Fault::StalledRead,
        };
        let direction =
            if rng.below(2) == 0 { Direction::ClientToServer } else { Direction::ServerToClient };
        // Submit requests and their responses are ~40–200 bytes, so most
        // offsets land inside live traffic (an offset past the stream's
        // total traffic simply never fires — a fault-free point).
        let offset = rng.below(160);
        FaultPlan { fault, direction, offset, stall, slow: Duration::from_millis(1 + rng.below(3)) }
    }
}

/// The in-process chaos proxy. Stop it with [`ChaosProxy::stop`] (or let
/// `Drop` signal its threads to wind down).
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    fired: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listen on an ephemeral loopback port, forwarding every connection
    /// to `upstream`; the first connection suffers `plan`'s fault.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicU64::new(0));
        let armed = Arc::new(AtomicBool::new(true));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let fired = Arc::clone(&fired);
            std::thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        let Ok(server) = TcpStream::connect(upstream) else {
                            continue; // upstream gone: drop the client too
                        };
                        // Only the first connection is the victim.
                        let victim = armed.swap(false, Ordering::SeqCst);
                        spawn_pumps(client, server, victim.then_some(plan), &fired);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            })
        };
        Ok(ChaosProxy { addr, stop, fired, acceptor: Some(acceptor) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many faults have actually fired (0 or 1 per proxy — a plan
    /// whose offset lies past the connection's traffic never triggers).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the acceptor (pump threads die with their
    /// sockets).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Start the two per-direction pump threads for one proxied connection.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: Option<FaultPlan>,
    fired: &Arc<AtomicU64>,
) {
    let (c2, s2) = match (client.try_clone(), server.try_clone()) {
        (Ok(c), Ok(s)) => (c, s),
        _ => return,
    };
    let up = plan.filter(|p| p.direction == Direction::ClientToServer);
    let down = plan.filter(|p| p.direction == Direction::ServerToClient);
    let f1 = Arc::clone(fired);
    let f2 = Arc::clone(fired);
    std::thread::spawn(move || pump(client, s2, up, &f1));
    std::thread::spawn(move || pump(server, c2, down, &f2));
}

/// Copy bytes `from` → `to`, applying `plan`'s fault when the cumulative
/// byte count crosses its offset. Exits on EOF, error, or a killing
/// fault; both sockets are fully shut down on exit so the peer threads
/// unblock too.
fn pump(mut from: TcpStream, mut to: TcpStream, plan: Option<FaultPlan>, fired: &AtomicU64) {
    let mut forwarded: u64 = 0;
    let mut pending = plan;
    // How many bytes of slow dribble remain once a SlowWrite fired.
    let mut slow_left: u64 = 0;
    let mut slow_delay = Duration::ZERO;
    // A Disconnect waits for the next frame boundary after its offset.
    let mut cut_at_newline = false;
    let mut buf = [0u8; 512];
    'outer: loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        let mut chunk = &buf[..n];
        while !chunk.is_empty() {
            // Fault trigger inside this chunk?
            if let Some(p) = pending {
                let until_fault = p.offset.saturating_sub(forwarded) as usize;
                if until_fault < chunk.len() {
                    // Forward the clean prefix first.
                    let (clean, rest) = chunk.split_at(until_fault);
                    if !clean.is_empty() && to.write_all(clean).is_err() {
                        break 'outer;
                    }
                    forwarded += clean.len() as u64;
                    pending = None;
                    fired.fetch_add(1, Ordering::SeqCst);
                    match p.fault {
                        Fault::TornFrame => break 'outer, // cut mid-frame, now
                        Fault::Disconnect => {
                            cut_at_newline = true;
                            chunk = rest;
                            continue;
                        }
                        Fault::StalledRead => {
                            std::thread::sleep(p.stall);
                            break 'outer;
                        }
                        Fault::SlowWrite => {
                            slow_left = 48;
                            slow_delay = p.slow;
                            chunk = rest;
                            continue;
                        }
                    }
                }
            }
            if cut_at_newline {
                // Forward through the end of the current frame, then die.
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        let _ = to.write_all(&chunk[..=i]);
                        break 'outer;
                    }
                    None => {
                        if to.write_all(chunk).is_err() {
                            break 'outer;
                        }
                        forwarded += chunk.len() as u64;
                        break; // need more bytes to find the boundary
                    }
                }
            } else if slow_left > 0 {
                let take = (slow_left as usize).min(chunk.len());
                for &b in &chunk[..take] {
                    std::thread::sleep(slow_delay);
                    if to.write_all(&[b]).is_err() {
                        break 'outer;
                    }
                }
                forwarded += take as u64;
                slow_left -= take as u64;
                chunk = &chunk[take..];
            } else {
                if to.write_all(chunk).is_err() {
                    break 'outer;
                }
                forwarded += chunk.len() as u64;
                break;
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// What a [`LinkProxy`] currently does to its network path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkMode {
    /// Healthy: bytes flow both ways.
    Forward,
    /// Partitioned: connections are accepted, bytes are swallowed, and
    /// nothing ever comes back — readers on both sides hang until their
    /// own deadlines fire. Also stalls health probes, since a probe's
    /// request vanishes the same way.
    BlackHole,
    /// Hard-down: new connections are closed immediately, as if the peer
    /// sent a reset; existing connections are cut.
    Refuse,
}

impl LinkMode {
    fn from_u8(v: u8) -> LinkMode {
        match v {
            0 => LinkMode::Forward,
            1 => LinkMode::BlackHole,
            _ => LinkMode::Refuse,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            LinkMode::Forward => 0,
            LinkMode::BlackHole => 1,
            LinkMode::Refuse => 2,
        }
    }
}

/// A runtime-switchable proxy for one router→shard link. Unlike
/// [`ChaosProxy`] (one scripted per-connection fault), the mode applies
/// to **all** traffic — including connections already in flight, which
/// go dark within one pump iteration of a flip to a faulty mode.
pub struct LinkProxy {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl LinkProxy {
    /// Listen on an ephemeral loopback port, forwarding to `upstream`
    /// while the mode is [`LinkMode::Forward`].
    pub fn start(upstream: SocketAddr) -> std::io::Result<LinkProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mode = Arc::new(AtomicU8::new(LinkMode::Forward.as_u8()));
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let mode = Arc::clone(&mode);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((client, _)) => match LinkMode::from_u8(mode.load(Ordering::SeqCst)) {
                        LinkMode::Refuse => drop(client),
                        LinkMode::BlackHole => {
                            // Swallow the connection: park it on a reader
                            // that discards bytes until the link heals or
                            // the peer gives up.
                            let mode = Arc::clone(&mode);
                            std::thread::spawn(move || black_hole(client, &mode));
                        }
                        LinkMode::Forward => {
                            let Ok(server) = TcpStream::connect(upstream) else {
                                continue;
                            };
                            let (c2, s2) = match (client.try_clone(), server.try_clone()) {
                                (Ok(c), Ok(s)) => (c, s),
                                _ => continue,
                            };
                            let m1 = Arc::clone(&mode);
                            let m2 = Arc::clone(&mode);
                            std::thread::spawn(move || link_pump(client, s2, &m1));
                            std::thread::spawn(move || link_pump(server, c2, &m2));
                        }
                    },
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            })
        };
        Ok(LinkProxy { addr, mode, stop, acceptor: Some(acceptor) })
    }

    /// The address the router should treat as the shard's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flip the link's mode; affects in-flight connections too.
    pub fn set_mode(&self, mode: LinkMode) {
        self.mode.store(mode.as_u8(), Ordering::SeqCst);
    }

    /// The current mode.
    pub fn mode(&self) -> LinkMode {
        LinkMode::from_u8(self.mode.load(Ordering::SeqCst))
    }

    /// Stop accepting and join the acceptor.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LinkProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Read and discard bytes while the link stays black-holed; exit (and
/// thus drop the socket) once the mode changes or the peer goes away. A
/// healed link does not resurrect swallowed connections — like a real
/// partition, whatever was in flight is gone; recovery happens at the
/// protocol layer (retries, failover), not the transport layer.
fn black_hole(stream: TcpStream, mode: &AtomicU8) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut sink = [0u8; 256];
    let mut s = stream;
    loop {
        if LinkMode::from_u8(mode.load(Ordering::SeqCst)) != LinkMode::BlackHole {
            break;
        }
        match s.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let _ = s.shutdown(Shutdown::Both);
}

/// Copy bytes while the link is healthy. A flip to [`LinkMode::BlackHole`]
/// silently swallows everything from then on — both sockets stay open, so
/// neither peer sees an error, only silence; a flip to
/// [`LinkMode::Refuse`] cuts hard. A connection that lost bytes to the
/// black hole is cut when the link heals (the protocol layer re-dials),
/// like after a real partition. Short read timeouts keep the mode check
/// responsive even on an idle connection.
fn link_pump(mut from: TcpStream, mut to: TcpStream, mode: &AtomicU8) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = [0u8; 512];
    let mut swallowed = false;
    loop {
        match LinkMode::from_u8(mode.load(Ordering::SeqCst)) {
            LinkMode::Forward if swallowed => break,
            LinkMode::Forward => {}
            LinkMode::BlackHole => swallowed = true,
            LinkMode::Refuse => break,
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if !swallowed && to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_deterministic_and_cover_all_kinds() {
        let stall = Duration::from_millis(100);
        let a = FaultPlan::derive(42, 7, stall);
        let b = FaultPlan::derive(42, 7, stall);
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.direction, b.direction);
        assert_eq!(a.offset, b.offset);
        let mut kinds = std::collections::HashSet::new();
        let mut dirs = std::collections::HashSet::new();
        for point in 0..64 {
            let p = FaultPlan::derive(42, point, stall);
            kinds.insert(format!("{:?}", p.fault));
            dirs.insert(format!("{:?}", p.direction));
            assert!(p.offset < 160);
        }
        assert_eq!(kinds.len(), 4, "64 points must exercise all four fault kinds");
        assert_eq!(dirs.len(), 2);
    }

    #[test]
    fn xorshift_streams_differ_by_seed_and_repeat_by_seed() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(1);
        let mut c = XorShift64::new(2);
        let (xs, ys, zs): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..8).map(|_| a.next_u64()).collect(),
            (0..8).map(|_| b.next_u64()).collect(),
            (0..8).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        let mut z = XorShift64::new(0); // zero seed must not wedge at zero
        assert_ne!(z.next_u64(), 0);
    }
}
