//! A bounded, blocking priority queue with explicit backpressure.
//!
//! The service's admission control lives here: [`PriorityQueue::push`]
//! *fails* with [`PushError::Full`] when the queue is at capacity instead
//! of growing without bound, so a flooded daemon degrades to rejecting
//! submissions rather than exhausting memory. Higher priorities pop
//! first; within a priority, submission order (FIFO) is preserved via a
//! monotonic sequence number, so equal-priority jobs are served fairly.
//!
//! Shutdown uses two flavours of closing: [`PriorityQueue::close`] stops
//! admissions but lets consumers drain what is queued (graceful
//! *drain* shutdown), while [`PriorityQueue::close_and_clear`] also
//! discards the backlog (checkpoint shutdown — the discarded jobs live on
//! in the persistent state directory and are re-enqueued on restart).

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — explicit backpressure, try again later.
    Full,
    /// The queue was closed by a shutdown.
    Closed,
}

struct Entry<T> {
    priority: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first; then *lower* seq (older) first.
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// The bounded priority queue. All methods take `&self`; the queue is
/// shared between the acceptor and the worker pool behind an `Arc`.
pub struct PriorityQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> PriorityQueue<T> {
    /// A queue admitting at most `capacity` items at a time.
    pub fn new(capacity: usize) -> PriorityQueue<T> {
        PriorityQueue {
            inner: Mutex::new(Inner { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Lock the queue state, recovering from a poisoned lock. Every
    /// mutation below is a single atomic step on a heap that cannot be
    /// left half-updated by a panic, so the poisoned state is safe to
    /// adopt — and one panicked worker must not wedge the whole queue
    /// (and with it every producer and consumer) forever.
    fn lock_inner(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue with backpressure: refused with [`PushError::Full`] at
    /// capacity, [`PushError::Closed`] after shutdown.
    pub fn push(&self, priority: i64, item: T) -> Result<(), PushError> {
        let mut inner = self.lock_inner();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.heap.len() >= self.capacity {
            return Err(PushError::Full);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry { priority, seq, item });
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Enqueue bypassing the capacity check — used only when re-loading
    /// persisted jobs at startup, which must never be dropped even if a
    /// restart finds more jobs on disk than the configured capacity.
    pub fn push_recovered(&self, priority: i64, item: T) -> Result<(), PushError> {
        let mut inner = self.lock_inner();
        if inner.closed {
            return Err(PushError::Closed);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry { priority, seq, item });
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeue the highest-priority item, blocking while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock_inner();
        loop {
            if let Some(e) = inner.heap.pop() {
                return Some(e.item);
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close for admissions; queued items may still be popped (drain).
    pub fn close(&self) {
        self.lock_inner().closed = true;
        self.nonempty.notify_all();
    }

    /// Close and discard the backlog, returning the discarded items.
    pub fn close_and_clear(&self) -> Vec<T> {
        let mut inner = self.lock_inner();
        inner.closed = true;
        let cleared = std::mem::take(&mut inner.heap).into_sorted_vec();
        drop(inner);
        self.nonempty.notify_all();
        cleared.into_iter().map(|e| e.item).collect()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock_inner().heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = PriorityQueue::new(10);
        q.push(0, "a").unwrap();
        q.push(5, "b").unwrap();
        q.push(0, "c").unwrap();
        q.push(5, "d").unwrap();
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["b", "d", "a", "c"]);
    }

    #[test]
    fn capacity_gives_explicit_backpressure() {
        let q = PriorityQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert_eq!(q.push(0, 3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.push(0, 3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn recovered_pushes_bypass_capacity() {
        let q = PriorityQueue::new(1);
        q.push(0, 1).unwrap();
        q.push_recovered(0, 2).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = PriorityQueue::new(4);
        q.push(1, "x").unwrap();
        q.close();
        assert_eq!(q.push(0, "y"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("x"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_and_clear_discards_backlog() {
        let q = PriorityQueue::new(4);
        q.push(1, "x").unwrap();
        q.push(2, "y").unwrap();
        let mut cleared = q.close_and_clear();
        cleared.sort();
        assert_eq!(cleared, ["x", "y"]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(PriorityQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(0, 7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), [7]);
    }
}
