//! A minimal, dependency-free JSON layer for the wire protocol.
//!
//! The implementation now lives in [`stsyn_obs::json`] so the trace sink
//! and the wire protocol share one encoder (the observability layer needs
//! the same lossless `f64` round-tripping the wire format relies on).
//! This module re-exports it to keep the `stsyn_serve::Json` paths and
//! every `crate::json::` reference stable.

pub use stsyn_obs::json::{Json, JsonError};
