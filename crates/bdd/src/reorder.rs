//! Dynamic variable reordering: adjacent-level swap and Rudell's sifting.
//!
//! The variable order makes or breaks BDD sizes (the paper's §VII blames
//! part of STSyn's irregular behaviour on "BDDs not effectively
//! optimized"). This module provides the classical remedy: each variable
//! is *sifted* through every position of the order by repeated adjacent
//! swaps and left at the position minimizing the live node count.
//!
//! ## Contract
//!
//! * Node indices — and therefore every outstanding [`Bdd`] handle — stay
//!   valid across reordering: a swap rewrites affected nodes **in place**,
//!   so a handle denotes the same boolean function before and after.
//! * Interned [`crate::VarSetId`]s and [`crate::RenameId`]s store
//!   order-dependent level information and are invalidated: the reorder
//!   generation is bumped and any use of a stale id panics with a clear
//!   message. Re-intern after sifting.
//! * The implementation favours clarity over raw speed: finding the nodes
//!   of a level scans the unique table (`O(live nodes)` per swap), which
//!   is fine for the analysis workloads it targets; production CUDD keeps
//!   per-level lists.

use crate::manager::{Bdd, Manager, Node, VarId, TERMINAL_LEVEL};
use stsyn_obs::{Json, TraceLevel};

impl Manager {
    /// Emit a `bdd.reorder` event with before/after root-cone sizes.
    fn trace_reorder(&self, kind: &'static str, before: usize, after: usize) {
        if self.tracer.level_enabled(TraceLevel::Info) {
            self.tracer.info(
                "bdd.reorder",
                &[
                    ("reorder", Json::from(kind)),
                    ("before", Json::from(before as u64)),
                    ("after", Json::from(after as u64)),
                ],
            );
        }
    }

    /// Swap the variables at `level` and `level + 1`, preserving the
    /// function of every node index. Returns the change in live node
    /// count (negative = shrank).
    pub fn swap_adjacent(&mut self, level: u32) -> isize {
        let l = level as usize;
        assert!(l + 1 < self.perm.len(), "swap_adjacent out of range");
        let x = self.invperm[l]; // variable moving down
        let y = self.invperm[l + 1]; // variable moving up
        let before = self.unique.len() as isize;

        // Collect the x-labeled nodes that interact with y: they must be
        // restructured. (Nodes of x without y-children simply change level
        // with the permutation; nodes of other variables are untouched.)
        let affected: Vec<u32> = self
            .unique
            .iter()
            .filter_map(|(&(var, lo, hi), &idx)| {
                if var == x
                    && (self.nodes[lo as usize].var == y || self.nodes[hi as usize].var == y)
                {
                    Some(idx)
                } else {
                    None
                }
            })
            .collect();

        // Update the permutation first so `mk` places new x-nodes below y.
        self.perm[x as usize] = level + 1;
        self.perm[y as usize] = level;
        self.invperm[l] = y;
        self.invperm[l + 1] = x;

        for idx in affected {
            let n = self.nodes[idx as usize];
            debug_assert_eq!(n.var, x);
            let (f0, f1) = (n.lo, n.hi);
            let cof = |m: &Manager, f: u32| -> (u32, u32) {
                let fn_ = m.nodes[f as usize];
                if fn_.var == y {
                    (fn_.lo, fn_.hi)
                } else {
                    (f, f)
                }
            };
            let (f00, f01) = cof(self, f0);
            let (f10, f11) = cof(self, f1);
            // New else/then children test x (now one level lower).
            let a = self.mk(x, Bdd(f00), Bdd(f10));
            let b = self.mk(x, Bdd(f01), Bdd(f11));
            debug_assert_ne!(a, b, "swap produced a redundant node");
            // Rewrite idx in place as a y-node; the index keeps denoting
            // the same function, so parents and external handles survive.
            self.unique.remove(&(x, f0, f1));
            self.nodes[idx as usize] = Node { var: y, lo: a.index(), hi: b.index() };
            let clash = self.unique.insert((y, a.index(), b.index()), idx);
            debug_assert!(clash.is_none(), "swap collision: duplicate (y, a, b) node");
        }
        // Level information changed: structural caches keyed by varset or
        // rename ids would be stale; conservative flush. (Pure node-index
        // caches — and/or/not/ite — remain valid because node functions
        // are preserved, but we flush everything for simplicity.)
        self.clear_op_caches();
        self.unique.len() as isize - before
    }

    /// Rudell's sifting: move every variable through all positions of the
    /// order (by adjacent swaps) and leave it where the total size of the
    /// `roots` cones is minimal. Garbage-collects against `roots` before
    /// and after. Bumps the reorder generation (stale varset/rename ids
    /// will panic on use). Returns `(nodes_before, nodes_after)` measured
    /// over the root cones.
    pub fn sift(&mut self, roots: &[Bdd]) -> (usize, usize) {
        self.gc(roots);
        let before = self.node_count_many(roots);
        let n = self.perm.len();
        if n >= 2 {
            // Process variables in decreasing occurrence order — the
            // standard heuristic: big levels first.
            let mut occupancy: Vec<(usize, VarId)> = (0..n)
                .map(|v| {
                    let count =
                        self.unique.keys().filter(|&&(var, _, _)| var as usize == v).count();
                    (count, VarId(v as u32))
                })
                .collect();
            occupancy.sort_by_key(|e| std::cmp::Reverse(e.0));
            for (_, v) in occupancy {
                self.sift_one(v, roots);
            }
        }
        self.order_generation += 1;
        self.varsets.clear();
        self.varset_ids.clear();
        self.renames.clear();
        self.rename_ids.clear();
        self.clear_op_caches();
        self.gc(roots);
        let after = self.node_count_many(roots);
        self.trace_reorder("sift", before, after);
        (before, after)
    }

    /// Sift a single variable to the level minimizing the root-cone size.
    /// Swaps leave dead nodes behind (no reference counting), so the
    /// metric is recomputed from the roots after every swap.
    fn sift_one(&mut self, v: VarId, roots: &[Bdd]) {
        // Swaps strand dead nodes in the unique table, and every swap scans
        // that table — collect up front so each pass stays O(live).
        self.gc(roots);
        let n = self.perm.len() as u32;
        let start = self.perm[v.0 as usize];
        let mut best_size = self.node_count_many(roots);
        let mut best_level = start;
        // Phase 1: sink to the bottom.
        let mut level = start;
        while level + 1 < n {
            self.swap_adjacent(level);
            level += 1;
            let size = self.node_count_many(roots);
            if size < best_size {
                best_size = size;
                best_level = level;
            }
        }
        self.gc(roots);
        // Phase 2: float to the top.
        while level > 0 {
            self.swap_adjacent(level - 1);
            level -= 1;
            let size = self.node_count_many(roots);
            if size < best_size {
                best_size = size;
                best_level = level;
            }
        }
        self.gc(roots);
        // Phase 3: descend to the best position seen.
        while level < best_level {
            self.swap_adjacent(level);
            level += 1;
        }
        debug_assert_eq!(self.perm[v.0 as usize], best_level);
    }

    /// Sift *pairs* of variables as indivisible 2-blocks, preserving the
    /// interleaved `(current, primed)` layout the symbolic engine relies
    /// on. Used by the budget degradation path ([`Manager::enforce_node_budget`])
    /// because — unlike [`Manager::sift`] — it does **not** bump the reorder
    /// generation: within-pair adjacency is maintained, so interned rename
    /// maps (keyed by variable id) stay strictly monotone, and interned
    /// varsets are remapped in place to their new level lists under the
    /// same ids.
    ///
    /// `pairs` must tile the whole order as adjacent `(cur, primed)`
    /// blocks with `cur` at an even level; if they do not (or there are
    /// fewer than two blocks) the call is a no-op. Returns
    /// `(nodes_before, nodes_after)` over the root cones.
    pub fn sift_pairs(&mut self, pairs: &[(VarId, VarId)], roots: &[Bdd]) -> (usize, usize) {
        self.gc(roots);
        let before = self.node_count_many(roots);
        let n = self.perm.len();
        let tiles = n.is_multiple_of(2)
            && pairs.len() * 2 == n
            && pairs.iter().all(|&(c, p)| {
                let lc = self.perm[c.0 as usize];
                lc.is_multiple_of(2) && self.perm[p.0 as usize] == lc + 1
            });
        if !tiles || pairs.len() < 2 {
            return (before, before);
        }
        // Varset ids survive this reordering: snapshot each interned level
        // list as variable ids now, rewrite to the new levels afterwards.
        let saved_varsets: Vec<Vec<u32>> = self
            .varsets
            .iter()
            .map(|levels| levels.iter().map(|&l| self.invperm[l as usize]).collect())
            .collect();

        let nblocks = pairs.len();
        let mut occupancy: Vec<(usize, VarId, VarId)> = pairs
            .iter()
            .map(|&(c, p)| {
                let count =
                    self.unique.keys().filter(|&&(var, _, _)| var == c.0 || var == p.0).count();
                (count, c, p)
            })
            .collect();
        occupancy.sort_by_key(|e| std::cmp::Reverse(e.0));
        for (_, c, p) in occupancy {
            self.sift_block(c, p, nblocks, roots);
        }

        // Rewrite the interned varsets to their level lists under the new
        // order; indices (and thus outstanding `VarSetId`s) are unchanged,
        // which is why the generation is *not* bumped.
        for (idx, vars) in saved_varsets.iter().enumerate() {
            let mut levels: Vec<u32> = vars.iter().map(|&v| self.perm[v as usize]).collect();
            levels.sort_unstable();
            self.varsets[idx] = levels;
        }
        self.varset_ids.clear();
        for (idx, levels) in self.varsets.iter().enumerate() {
            self.varset_ids.insert(levels.clone(), idx as u32);
        }
        self.clear_op_caches();
        self.gc(roots);
        let after = self.node_count_many(roots);
        self.trace_reorder("sift_pairs", before, after);
        (before, after)
    }

    /// Exchange the adjacent 2-blocks at levels `[2k, 2k+1]` and
    /// `[2k+2, 2k+3]` with four adjacent swaps; both blocks keep their
    /// internal (cur, primed) order.
    fn exchange_blocks(&mut self, k: usize) {
        let l = 2 * k as u32;
        // [x0 x1 y0 y1] → [x0 y0 x1 y1] → [y0 x0 x1 y1]
        //              → [y0 x0 y1 x1] → [y0 y1 x0 x1]
        self.swap_adjacent(l + 1);
        self.swap_adjacent(l);
        self.swap_adjacent(l + 2);
        self.swap_adjacent(l + 1);
    }

    /// Sift one (cur, primed) block to the position minimizing the
    /// root-cone size, mirroring [`Manager::sift_one`] at block
    /// granularity.
    fn sift_block(&mut self, c: VarId, p: VarId, nblocks: usize, roots: &[Bdd]) {
        self.gc(roots);
        let start_block = (self.perm[c.0 as usize] / 2) as usize;
        let mut best_size = self.node_count_many(roots);
        let mut best_block = start_block;
        // Phase 1: sink to the bottom.
        let mut block = start_block;
        while block + 1 < nblocks {
            self.exchange_blocks(block);
            block += 1;
            let size = self.node_count_many(roots);
            if size < best_size {
                best_size = size;
                best_block = block;
            }
        }
        self.gc(roots);
        // Phase 2: float to the top.
        while block > 0 {
            self.exchange_blocks(block - 1);
            block -= 1;
            let size = self.node_count_many(roots);
            if size < best_size {
                best_size = size;
                best_block = block;
            }
        }
        self.gc(roots);
        // Phase 3: descend to the best position seen.
        while block < best_block {
            self.exchange_blocks(block);
            block += 1;
        }
        debug_assert_eq!(self.perm[c.0 as usize] as usize, 2 * best_block);
        debug_assert_eq!(self.perm[p.0 as usize] as usize, 2 * best_block + 1);
    }

    /// Deterministically restore or impose a target variable order (e.g.
    /// one computed offline) by bubble-sorting with adjacent swaps. Bumps
    /// the reorder generation like [`Manager::sift`].
    pub fn reorder_to(&mut self, target: &[VarId], roots: &[Bdd]) {
        assert_eq!(target.len(), self.perm.len(), "order must list every variable");
        let mut seen = vec![false; target.len()];
        for v in target {
            assert!(!seen[v.0 as usize], "duplicate variable in target order");
            seen[v.0 as usize] = true;
        }
        // Selection-sort the levels top-down; O(n²) swaps.
        let n = self.perm.len() as u32;
        for level in 0..n {
            // Find the variable that should sit at `level` and bubble it up.
            let v = target[level as usize];
            let mut cur = self.perm[v.0 as usize];
            while cur > level {
                self.swap_adjacent(cur - 1);
                cur -= 1;
            }
            self.gc(roots);
        }
        self.order_generation += 1;
        self.varsets.clear();
        self.varset_ids.clear();
        self.renames.clear();
        self.rename_ids.clear();
        self.clear_op_caches();
        self.gc(roots);
        debug_assert_eq!(self.current_order(), target);
    }

    pub(crate) fn clear_op_caches(&mut self) {
        self.bin_cache.clear();
        self.not_cache.clear();
        self.ite_cache.clear();
        self.exists_cache.clear();
        self.and_exists_cache.clear();
        self.rename_cache.clear();
    }

    /// The current variable order, top to bottom (for diagnostics).
    pub fn current_order(&self) -> Vec<VarId> {
        self.invperm.iter().map(|&v| VarId(v)).collect()
    }

    /// Sanity check (used by tests): every node's variable sits strictly
    /// above its children's in the current order.
    pub fn check_order_invariant(&self) -> bool {
        self.unique.iter().all(|(&(var, lo, hi), &idx)| {
            let n = &self.nodes[idx as usize];
            if n.var != var || n.lo != lo || n.hi != hi {
                return false; // unique table out of sync
            }
            let level = self.perm[var as usize];
            let ok = |child: u32| {
                let cv = self.nodes[child as usize].var;
                cv == TERMINAL_LEVEL || self.perm[cv as usize] > level
            };
            ok(lo) && ok(hi)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a function from a 32-row truth table over 5 variables.
    fn from_table(m: &mut Manager, vars: &[VarId], table: u32) -> Bdd {
        let mut f = Bdd::FALSE;
        for row in 0..32u32 {
            if (table >> row) & 1 == 1 {
                let lits: Vec<Bdd> =
                    (0..5).map(|i| m.literal(vars[i], (row >> i) & 1 == 1)).collect();
                let cube = m.and_many(&lits);
                f = m.or(f, cube);
            }
        }
        f
    }

    fn truth_table(m: &Manager, f: Bdd) -> u32 {
        let mut t = 0u32;
        for row in 0..32u32 {
            let asg: Vec<bool> = (0..5).map(|i| (row >> i) & 1 == 1).collect();
            if m.eval(f, &asg) {
                t |= 1 << row;
            }
        }
        t
    }

    #[test]
    fn swap_preserves_functions() {
        let mut lcg = 0x1234_5678_9abc_def0u64;
        for _ in 0..40 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let table = (lcg >> 24) as u32;
            let mut m = Manager::new();
            let vars = m.new_vars(5);
            let f = from_table(&mut m, &vars, table);
            assert_eq!(truth_table(&m, f), table);
            for level in [0u32, 2, 3, 1, 0, 3] {
                m.swap_adjacent(level);
                assert!(m.check_order_invariant(), "order invariant broken");
                assert_eq!(truth_table(&m, f), table, "function changed by swap");
            }
        }
    }

    #[test]
    fn swap_is_its_own_inverse_on_sizes() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0xDEAD_BEEF);
        m.gc(&[f]);
        let before = m.live_nodes();
        let _ = m.swap_adjacent(1);
        let _ = m.swap_adjacent(1);
        // Two swaps restore the order; dead nodes accumulate (no reference
        // counting) but after a collection the arena is exactly as before.
        m.gc(&[f]);
        assert_eq!(m.live_nodes(), before);
        assert_eq!(m.current_order(), vars);
    }

    #[test]
    fn canonicity_holds_after_swap() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0x0F0F_3CC3);
        m.swap_adjacent(0);
        m.swap_adjacent(2);
        // Rebuilding the same function under the new order must return the
        // identical handle.
        let g = from_table(&mut m, &vars, 0x0F0F_3CC3);
        assert_eq!(f, g);
    }

    #[test]
    fn sift_shrinks_the_classic_worst_case() {
        // f = (x0 ∧ x3) ∨ (x1 ∧ x4) ∨ (x2 ∧ x5) with the pairs maximally
        // separated: exponential under the given order, linear when the
        // pairs are adjacent. Sifting must find a big reduction.
        let mut m = Manager::new();
        let vars = m.new_vars(6);
        let mut f = Bdd::FALSE;
        for i in 0..3 {
            let a = m.var(vars[i]);
            let b = m.var(vars[i + 3]);
            let pair = m.and(a, b);
            f = m.or(f, pair);
        }
        m.gc(&[f]);
        let before = m.node_count(f);
        let (live_before, live_after) = m.sift(&[f]);
        assert!(live_after <= live_before);
        let after = m.node_count(f);
        assert!(after < before, "sift must shrink {before} → {after}");
        assert!(m.check_order_invariant());
        // Function unchanged.
        for row in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|i| (row >> i) & 1 == 1).collect();
            let expect = (asg[0] && asg[3]) || (asg[1] && asg[4]) || (asg[2] && asg[5]);
            assert_eq!(m.eval(f, &asg), expect);
        }
    }

    #[test]
    fn sift_invalidates_varsets_and_renames() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let f = {
            let a = m.var(vars[0]);
            let b = m.var(vars[2]);
            m.and(a, b)
        };
        let stale_set = m.varset(&[vars[0]]);
        m.sift(&[f]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.exists(f, stale_set);
        }));
        assert!(result.is_err(), "stale varset must panic");
        // Fresh interning works and is correct.
        let fresh = m.varset(&[vars[0]]);
        let e = m.exists(f, fresh);
        let b = m.var(vars[2]);
        assert_eq!(e, b);
    }

    #[test]
    fn sift_pairs_preserves_varsets_and_renames() {
        let mut m = Manager::new();
        let vs = m.new_vars(8); // four interleaved (cur, primed) pairs
        let pairs: Vec<(VarId, VarId)> = (0..4).map(|i| (vs[2 * i], vs[2 * i + 1])).collect();
        let cur: Vec<Bdd> = (0..4).map(|i| m.var(vs[2 * i])).collect();
        // Pairs of *blocks* maximally separated: (c0 ∧ c2) ∨ (c1 ∧ c3).
        let f = {
            let a = m.and(cur[0], cur[2]);
            let b = m.and(cur[1], cur[3]);
            m.or(a, b)
        };
        let primed_set = m.varset(&[vs[1], vs[3], vs[5], vs[7]]);
        let to_primed =
            m.rename_map(&[(vs[0], vs[1]), (vs[2], vs[3]), (vs[4], vs[5]), (vs[6], vs[7])]);
        let fp_before = m.rename(f, to_primed);
        let back_before = m.exists(fp_before, primed_set);
        assert!(back_before.is_true());

        let (before, after) = m.sift_pairs(&pairs, &[f, fp_before]);
        assert!(after <= before);
        assert!(m.check_order_invariant());
        // The pair layout is intact...
        for &(c, p) in &pairs {
            let lc = m.perm[c.0 as usize];
            assert_eq!(lc % 2, 0);
            assert_eq!(m.perm[p.0 as usize], lc + 1);
        }
        // ...and the *same* interned ids still work and agree.
        let fp_after = m.rename(f, to_primed);
        assert_eq!(fp_after, fp_before);
        assert!(m.exists(fp_after, primed_set).is_true());
    }

    #[test]
    fn sift_pairs_rejects_non_tiling_pairs() {
        let mut m = Manager::new();
        let vs = m.new_vars(6);
        let a = m.var(vs[0]);
        let b = m.var(vs[2]);
        let f = m.and(a, b);
        m.gc(&[f]);
        let live = m.node_count_many(&[f]);
        // Swapped (primed, cur) pairs do not tile the order: no-op.
        let bad: Vec<(VarId, VarId)> = (0..3).map(|i| (vs[2 * i + 1], vs[2 * i])).collect();
        assert_eq!(m.sift_pairs(&bad, &[f]), (live, live));
        // Too few pairs: no-op as well.
        assert_eq!(m.sift_pairs(&[(vs[0], vs[1])], &[f]), (live, live));
    }

    #[test]
    fn reorder_to_reverses_and_restores() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0xA5A5_5A5A);
        let table = truth_table(&m, f);
        let reversed: Vec<VarId> = vars.iter().rev().copied().collect();
        m.reorder_to(&reversed, &[f]);
        assert_eq!(m.current_order(), reversed);
        assert!(m.check_order_invariant());
        assert_eq!(truth_table(&m, f), table);
        m.reorder_to(&vars, &[f]);
        assert_eq!(m.current_order(), vars);
        assert_eq!(truth_table(&m, f), table);
    }

    #[test]
    fn handles_survive_sift() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0xCAFE_BABE);
        let g = from_table(&mut m, &vars, 0x1357_9BDF);
        let t_f = truth_table(&m, f);
        let t_g = truth_table(&m, g);
        m.sift(&[f, g]);
        assert_eq!(truth_table(&m, f), t_f);
        assert_eq!(truth_table(&m, g), t_g);
        // Operations still work after sifting.
        let h = m.and(f, g);
        assert_eq!(truth_table(&m, h), t_f & t_g);
    }
}
