//! Dynamic variable reordering: adjacent-level swap and Rudell's sifting.
//!
//! The variable order makes or breaks BDD sizes (the paper's §VII blames
//! part of STSyn's irregular behaviour on "BDDs not effectively
//! optimized"). This module provides the classical remedy: each variable
//! is *sifted* through every position of the order by repeated adjacent
//! swaps and left at the position minimizing the live node count.
//!
//! ## Contract
//!
//! * Node indices — and therefore every outstanding [`Bdd`] handle — stay
//!   valid across reordering: a swap rewrites affected nodes **in place**,
//!   so a handle denotes the same boolean function before and after.
//! * Interned [`crate::VarSetId`]s and [`crate::RenameId`]s store
//!   order-dependent level information and are invalidated: the reorder
//!   generation is bumped and any use of a stale id panics with a clear
//!   message. Re-intern after sifting.
//! * The implementation favours clarity over raw speed: finding the nodes
//!   of a level scans the unique table (`O(live nodes)` per swap), which
//!   is fine for the analysis workloads it targets; production CUDD keeps
//!   per-level lists.

use crate::manager::{Bdd, Manager, Node, VarId, TERMINAL_LEVEL};

impl Manager {
    /// Swap the variables at `level` and `level + 1`, preserving the
    /// function of every node index. Returns the change in live node
    /// count (negative = shrank).
    pub fn swap_adjacent(&mut self, level: u32) -> isize {
        let l = level as usize;
        assert!(l + 1 < self.perm.len(), "swap_adjacent out of range");
        let x = self.invperm[l]; // variable moving down
        let y = self.invperm[l + 1]; // variable moving up
        let before = self.unique.len() as isize;

        // Collect the x-labeled nodes that interact with y: they must be
        // restructured. (Nodes of x without y-children simply change level
        // with the permutation; nodes of other variables are untouched.)
        let affected: Vec<u32> = self
            .unique
            .iter()
            .filter_map(|(&(var, lo, hi), &idx)| {
                if var == x
                    && (self.nodes[lo as usize].var == y || self.nodes[hi as usize].var == y)
                {
                    Some(idx)
                } else {
                    None
                }
            })
            .collect();

        // Update the permutation first so `mk` places new x-nodes below y.
        self.perm[x as usize] = level + 1;
        self.perm[y as usize] = level;
        self.invperm[l] = y;
        self.invperm[l + 1] = x;

        for idx in affected {
            let n = self.nodes[idx as usize];
            debug_assert_eq!(n.var, x);
            let (f0, f1) = (n.lo, n.hi);
            let cof = |m: &Manager, f: u32| -> (u32, u32) {
                let fn_ = m.nodes[f as usize];
                if fn_.var == y {
                    (fn_.lo, fn_.hi)
                } else {
                    (f, f)
                }
            };
            let (f00, f01) = cof(self, f0);
            let (f10, f11) = cof(self, f1);
            // New else/then children test x (now one level lower).
            let a = self.mk(x, Bdd(f00), Bdd(f10));
            let b = self.mk(x, Bdd(f01), Bdd(f11));
            debug_assert_ne!(a, b, "swap produced a redundant node");
            // Rewrite idx in place as a y-node; the index keeps denoting
            // the same function, so parents and external handles survive.
            self.unique.remove(&(x, f0, f1));
            self.nodes[idx as usize] = Node { var: y, lo: a.index(), hi: b.index() };
            let clash = self.unique.insert((y, a.index(), b.index()), idx);
            debug_assert!(clash.is_none(), "swap collision: duplicate (y, a, b) node");
        }
        // Level information changed: structural caches keyed by varset or
        // rename ids would be stale; conservative flush. (Pure node-index
        // caches — and/or/not/ite — remain valid because node functions
        // are preserved, but we flush everything for simplicity.)
        self.clear_op_caches();
        self.unique.len() as isize - before
    }

    /// Rudell's sifting: move every variable through all positions of the
    /// order (by adjacent swaps) and leave it where the total size of the
    /// `roots` cones is minimal. Garbage-collects against `roots` before
    /// and after. Bumps the reorder generation (stale varset/rename ids
    /// will panic on use). Returns `(nodes_before, nodes_after)` measured
    /// over the root cones.
    pub fn sift(&mut self, roots: &[Bdd]) -> (usize, usize) {
        self.gc(roots);
        let before = self.node_count_many(roots);
        let n = self.perm.len();
        if n >= 2 {
            // Process variables in decreasing occurrence order — the
            // standard heuristic: big levels first.
            let mut occupancy: Vec<(usize, VarId)> = (0..n)
                .map(|v| {
                    let count = self
                        .unique
                        .keys()
                        .filter(|&&(var, _, _)| var as usize == v)
                        .count();
                    (count, VarId(v as u32))
                })
                .collect();
            occupancy.sort_by(|a, b| b.0.cmp(&a.0));
            for (_, v) in occupancy {
                self.sift_one(v, roots);
            }
        }
        self.order_generation += 1;
        self.varsets.clear();
        self.varset_ids.clear();
        self.renames.clear();
        self.rename_ids.clear();
        self.clear_op_caches();
        self.gc(roots);
        (before, self.node_count_many(roots))
    }

    /// Sift a single variable to the level minimizing the root-cone size.
    /// Swaps leave dead nodes behind (no reference counting), so the
    /// metric is recomputed from the roots after every swap.
    fn sift_one(&mut self, v: VarId, roots: &[Bdd]) {
        // Swaps strand dead nodes in the unique table, and every swap scans
        // that table — collect up front so each pass stays O(live).
        self.gc(roots);
        let n = self.perm.len() as u32;
        let start = self.perm[v.0 as usize];
        let mut best_size = self.node_count_many(roots);
        let mut best_level = start;
        // Phase 1: sink to the bottom.
        let mut level = start;
        while level + 1 < n {
            self.swap_adjacent(level);
            level += 1;
            let size = self.node_count_many(roots);
            if size < best_size {
                best_size = size;
                best_level = level;
            }
        }
        self.gc(roots);
        // Phase 2: float to the top.
        while level > 0 {
            self.swap_adjacent(level - 1);
            level -= 1;
            let size = self.node_count_many(roots);
            if size < best_size {
                best_size = size;
                best_level = level;
            }
        }
        self.gc(roots);
        // Phase 3: descend to the best position seen.
        while level < best_level {
            self.swap_adjacent(level);
            level += 1;
        }
        debug_assert_eq!(self.perm[v.0 as usize], best_level);
    }

    /// Deterministically restore or impose a target variable order (e.g.
    /// one computed offline) by bubble-sorting with adjacent swaps. Bumps
    /// the reorder generation like [`Manager::sift`].
    pub fn reorder_to(&mut self, target: &[VarId], roots: &[Bdd]) {
        assert_eq!(target.len(), self.perm.len(), "order must list every variable");
        let mut seen = vec![false; target.len()];
        for v in target {
            assert!(!seen[v.0 as usize], "duplicate variable in target order");
            seen[v.0 as usize] = true;
        }
        // Selection-sort the levels top-down; O(n²) swaps.
        let n = self.perm.len() as u32;
        for level in 0..n {
            // Find the variable that should sit at `level` and bubble it up.
            let v = target[level as usize];
            let mut cur = self.perm[v.0 as usize];
            while cur > level {
                self.swap_adjacent(cur - 1);
                cur -= 1;
            }
            self.gc(roots);
        }
        self.order_generation += 1;
        self.varsets.clear();
        self.varset_ids.clear();
        self.renames.clear();
        self.rename_ids.clear();
        self.clear_op_caches();
        self.gc(roots);
        debug_assert_eq!(self.current_order(), target);
    }

    pub(crate) fn clear_op_caches(&mut self) {
        self.bin_cache.clear();
        self.not_cache.clear();
        self.ite_cache.clear();
        self.exists_cache.clear();
        self.and_exists_cache.clear();
        self.rename_cache.clear();
    }

    /// The current variable order, top to bottom (for diagnostics).
    pub fn current_order(&self) -> Vec<VarId> {
        self.invperm.iter().map(|&v| VarId(v)).collect()
    }

    /// Sanity check (used by tests): every node's variable sits strictly
    /// above its children's in the current order.
    pub fn check_order_invariant(&self) -> bool {
        self.unique.iter().all(|(&(var, lo, hi), &idx)| {
            let n = &self.nodes[idx as usize];
            if n.var != var || n.lo != lo || n.hi != hi {
                return false; // unique table out of sync
            }
            let level = self.perm[var as usize];
            let ok = |child: u32| {
                let cv = self.nodes[child as usize].var;
                cv == TERMINAL_LEVEL || self.perm[cv as usize] > level
            };
            ok(lo) && ok(hi)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a function from a 32-row truth table over 5 variables.
    fn from_table(m: &mut Manager, vars: &[VarId], table: u32) -> Bdd {
        let mut f = Bdd::FALSE;
        for row in 0..32u32 {
            if (table >> row) & 1 == 1 {
                let lits: Vec<Bdd> = (0..5)
                    .map(|i| m.literal(vars[i], (row >> i) & 1 == 1))
                    .collect();
                let cube = m.and_many(&lits);
                f = m.or(f, cube);
            }
        }
        f
    }

    fn truth_table(m: &Manager, f: Bdd) -> u32 {
        let mut t = 0u32;
        for row in 0..32u32 {
            let asg: Vec<bool> = (0..5).map(|i| (row >> i) & 1 == 1).collect();
            if m.eval(f, &asg) {
                t |= 1 << row;
            }
        }
        t
    }

    #[test]
    fn swap_preserves_functions() {
        let mut lcg = 0x1234_5678_9abc_def0u64;
        for _ in 0..40 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let table = (lcg >> 24) as u32;
            let mut m = Manager::new();
            let vars = m.new_vars(5);
            let f = from_table(&mut m, &vars, table);
            assert_eq!(truth_table(&m, f), table);
            for level in [0u32, 2, 3, 1, 0, 3] {
                m.swap_adjacent(level);
                assert!(m.check_order_invariant(), "order invariant broken");
                assert_eq!(truth_table(&m, f), table, "function changed by swap");
            }
        }
    }

    #[test]
    fn swap_is_its_own_inverse_on_sizes() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0xDEAD_BEEF);
        m.gc(&[f]);
        let before = m.live_nodes();
        let _ = m.swap_adjacent(1);
        let _ = m.swap_adjacent(1);
        // Two swaps restore the order; dead nodes accumulate (no reference
        // counting) but after a collection the arena is exactly as before.
        m.gc(&[f]);
        assert_eq!(m.live_nodes(), before);
        assert_eq!(m.current_order(), vars);
    }

    #[test]
    fn canonicity_holds_after_swap() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0x0F0F_3CC3);
        m.swap_adjacent(0);
        m.swap_adjacent(2);
        // Rebuilding the same function under the new order must return the
        // identical handle.
        let g = from_table(&mut m, &vars, 0x0F0F_3CC3);
        assert_eq!(f, g);
    }

    #[test]
    fn sift_shrinks_the_classic_worst_case() {
        // f = (x0 ∧ x3) ∨ (x1 ∧ x4) ∨ (x2 ∧ x5) with the pairs maximally
        // separated: exponential under the given order, linear when the
        // pairs are adjacent. Sifting must find a big reduction.
        let mut m = Manager::new();
        let vars = m.new_vars(6);
        let mut f = Bdd::FALSE;
        for i in 0..3 {
            let a = m.var(vars[i]);
            let b = m.var(vars[i + 3]);
            let pair = m.and(a, b);
            f = m.or(f, pair);
        }
        m.gc(&[f]);
        let before = m.node_count(f);
        let (live_before, live_after) = m.sift(&[f]);
        assert!(live_after <= live_before);
        let after = m.node_count(f);
        assert!(after < before, "sift must shrink {before} → {after}");
        assert!(m.check_order_invariant());
        // Function unchanged.
        for row in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|i| (row >> i) & 1 == 1).collect();
            let expect = (asg[0] && asg[3]) || (asg[1] && asg[4]) || (asg[2] && asg[5]);
            assert_eq!(m.eval(f, &asg), expect);
        }
    }

    #[test]
    fn sift_invalidates_varsets_and_renames() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let f = {
            let a = m.var(vars[0]);
            let b = m.var(vars[2]);
            m.and(a, b)
        };
        let stale_set = m.varset(&[vars[0]]);
        m.sift(&[f]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.exists(f, stale_set);
        }));
        assert!(result.is_err(), "stale varset must panic");
        // Fresh interning works and is correct.
        let fresh = m.varset(&[vars[0]]);
        let e = m.exists(f, fresh);
        let b = m.var(vars[2]);
        assert_eq!(e, b);
    }

    #[test]
    fn reorder_to_reverses_and_restores() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0xA5A5_5A5A);
        let table = truth_table(&m, f);
        let reversed: Vec<VarId> = vars.iter().rev().copied().collect();
        m.reorder_to(&reversed, &[f]);
        assert_eq!(m.current_order(), reversed);
        assert!(m.check_order_invariant());
        assert_eq!(truth_table(&m, f), table);
        m.reorder_to(&vars, &[f]);
        assert_eq!(m.current_order(), vars);
        assert_eq!(truth_table(&m, f), table);
    }

    #[test]
    fn handles_survive_sift() {
        let mut m = Manager::new();
        let vars = m.new_vars(5);
        let f = from_table(&mut m, &vars, 0xCAFE_BABE);
        let g = from_table(&mut m, &vars, 0x1357_9BDF);
        let t_f = truth_table(&m, f);
        let t_g = truth_table(&m, g);
        m.sift(&[f, g]);
        assert_eq!(truth_table(&m, f), t_f);
        assert_eq!(truth_table(&m, g), t_g);
        // Operations still work after sifting.
        let h = m.and(f, g);
        assert_eq!(truth_table(&m, h), t_f & t_g);
    }
}
