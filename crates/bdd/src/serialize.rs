//! Durable BDD serialization (DDDMP-style) for checkpoint/restore.
//!
//! A dump captures a *set of roots* together with the variable order they
//! were built under, as a topologically-sorted node table: children always
//! precede their parents, so a single forward pass rebuilds the DAG. The
//! format is versioned, every node record is length-prefixed, and the whole
//! file carries a CRC-32 checksum; deserialization validates all of it and
//! returns a typed [`SerializeError`] on any corruption — it never panics
//! and never constructs an ill-formed node.
//!
//! ## File layout (version 1, all integers little-endian `u32`)
//!
//! ```text
//! magic      8 bytes  b"STSYNBDD"
//! version    u32      1
//! num_vars   u32
//! perm       num_vars × u32      variable → level (the dumped order)
//! num_recs   u32
//! num_roots  u32
//! records    num_recs × { len=12 | var | lo | hi }   (topological)
//! roots      num_roots × u32
//! checksum   u32      CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! Node references inside records and roots use a compact numbering:
//! `0` is the `FALSE` terminal, `1` is `TRUE`, and `k + 2` is the `k`-th
//! record. A valid dump is *reduced*: no record has `lo == hi`, no two
//! records coincide, and every record's variable sits strictly above its
//! children in the dumped order — so loading into a fresh manager
//! reproduces the DAG node-for-node (identical node counts).

use crate::manager::{Bdd, Manager, TERMINAL_LEVEL};
use crate::{BddError, VarId};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

/// File magic: identifies a stsyn-bdd dump.
pub const MAGIC: &[u8; 8] = b"STSYNBDD";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Payload length of a version-1 node record (var, lo, hi).
const RECORD_LEN: u32 = 12;

/// Typed deserialization failure. Every way a dump can be malformed maps
/// to a variant here; corrupted input is reported, never panicked on.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying reader/writer failure.
    Io(io::Error),
    /// The first 8 bytes are not [`MAGIC`] — not a BDD dump at all.
    BadMagic,
    /// The dump's format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The input ended before the declared structure was complete.
    Truncated,
    /// The trailing CRC-32 does not match the bytes read.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed over the bytes actually read.
        computed: u32,
    },
    /// A header field is malformed (e.g. `perm` is not a permutation).
    BadHeader(&'static str),
    /// Node record `index` is malformed (bad length prefix, dangling or
    /// forward reference, redundant or duplicate node, order violation).
    BadRecord {
        /// Zero-based index of the offending record.
        index: u32,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A root reference points past the node table.
    BadRoot {
        /// Zero-based index of the offending root.
        index: u32,
    },
    /// Bytes remain after the checksum — the file has trailing garbage.
    TrailingData,
    /// The target manager's variable count does not match the dump.
    VarCountMismatch {
        /// Variables in the target manager.
        expected: u32,
        /// Variables declared by the dump.
        found: u32,
    },
    /// The resource budget of the target manager tripped while rebuilding
    /// the dump under a different variable order.
    Resource(BddError),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "I/O error: {e}"),
            SerializeError::BadMagic => write!(f, "not a stsyn-bdd dump (bad magic)"),
            SerializeError::UnsupportedVersion(v) => {
                write!(f, "unsupported dump format version {v} (expected {FORMAT_VERSION})")
            }
            SerializeError::Truncated => write!(f, "dump is truncated"),
            SerializeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) — \
                 the dump is corrupted"
            ),
            SerializeError::BadHeader(why) => write!(f, "malformed dump header: {why}"),
            SerializeError::BadRecord { index, reason } => {
                write!(f, "malformed node record {index}: {reason}")
            }
            SerializeError::BadRoot { index } => write!(f, "root {index} references no node"),
            SerializeError::TrailingData => write!(f, "trailing bytes after checksum"),
            SerializeError::VarCountMismatch { expected, found } => {
                write!(f, "dump has {found} variables but the target manager has {expected}")
            }
            SerializeError::Resource(e) => write!(f, "budget exhausted while loading: {e}"),
        }
    }
}

impl std::error::Error for SerializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        SerializeError::Io(e)
    }
}

// --- CRC-32 (IEEE 802.3, reflected) ------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum used by the dump format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- Little-endian buffer helpers ---------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take_u32(&mut self) -> Result<u32, SerializeError> {
        let end = self.pos.checked_add(4).ok_or(SerializeError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(SerializeError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }
}

// --- Parsed form ---------------------------------------------------------

/// A structurally-validated dump, before materialization into a manager.
struct Parsed {
    perm: Vec<u32>,
    /// `(var, lo_ref, hi_ref)` triples in topological (children-first) order.
    records: Vec<(u32, u32, u32)>,
    /// Root references into the record numbering.
    roots: Vec<u32>,
}

fn parse(buf: &[u8]) -> Result<Parsed, SerializeError> {
    if buf.len() < MAGIC.len() + 4 {
        return Err(SerializeError::Truncated);
    }
    if &buf[..MAGIC.len()] != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    let mut cur = Cursor { buf, pos: MAGIC.len() };
    let version = cur.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(SerializeError::UnsupportedVersion(version));
    }
    // Verify the trailing checksum before trusting any count field: a
    // single flipped byte anywhere is caught here.
    if buf.len() < cur.pos + 4 {
        return Err(SerializeError::Truncated);
    }
    let body = &buf[..buf.len() - 4];
    let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4-byte slice"));
    let computed = crc32(body);
    if stored != computed {
        return Err(SerializeError::ChecksumMismatch { stored, computed });
    }

    let num_vars = cur.take_u32()?;
    let mut perm = Vec::with_capacity(num_vars as usize);
    let mut seen_level = vec![false; num_vars as usize];
    for _ in 0..num_vars {
        let level = cur.take_u32()?;
        if level >= num_vars {
            return Err(SerializeError::BadHeader("perm level out of range"));
        }
        if std::mem::replace(&mut seen_level[level as usize], true) {
            return Err(SerializeError::BadHeader("perm is not a permutation"));
        }
        perm.push(level);
    }
    let num_recs = cur.take_u32()?;
    let num_roots = cur.take_u32()?;
    // The remaining length is fully determined by the counts.
    let expected = (num_recs as u64) * (4 + RECORD_LEN as u64) + (num_roots as u64) * 4 + 4;
    let remaining = (buf.len() - cur.pos) as u64;
    if remaining < expected {
        return Err(SerializeError::Truncated);
    }
    if remaining > expected {
        return Err(SerializeError::TrailingData);
    }

    let mut records = Vec::with_capacity(num_recs as usize);
    let mut dedup: HashMap<(u32, u32, u32), u32> = HashMap::with_capacity(num_recs as usize);
    for index in 0..num_recs {
        let len = cur.take_u32()?;
        if len != RECORD_LEN {
            return Err(SerializeError::BadRecord { index, reason: "bad length prefix" });
        }
        let var = cur.take_u32()?;
        let lo = cur.take_u32()?;
        let hi = cur.take_u32()?;
        if var >= num_vars {
            return Err(SerializeError::BadRecord { index, reason: "variable out of range" });
        }
        if lo >= index + 2 || hi >= index + 2 {
            return Err(SerializeError::BadRecord {
                index,
                reason: "child reference is forward or dangling",
            });
        }
        if lo == hi {
            return Err(SerializeError::BadRecord { index, reason: "redundant node (lo == hi)" });
        }
        // Children must sit strictly below the parent in the dumped order.
        let level = perm[var as usize];
        for child in [lo, hi] {
            let child_level = if child < 2 {
                TERMINAL_LEVEL
            } else {
                let (cvar, _, _) = records[(child - 2) as usize];
                perm[cvar as usize]
            };
            if level >= child_level {
                return Err(SerializeError::BadRecord { index, reason: "variable order violated" });
            }
        }
        if dedup.insert((var, lo, hi), index).is_some() {
            return Err(SerializeError::BadRecord { index, reason: "duplicate node" });
        }
        records.push((var, lo, hi));
    }
    let mut roots = Vec::with_capacity(num_roots as usize);
    for index in 0..num_roots {
        let r = cur.take_u32()?;
        if r >= num_recs + 2 {
            return Err(SerializeError::BadRoot { index });
        }
        roots.push(r);
    }
    Ok(Parsed { perm, records, roots })
}

impl Manager {
    /// Serialize `roots` (and every node reachable from them) to a byte
    /// vector in the versioned dump format, capturing the current
    /// variable order.
    #[must_use = "the dump is returned, not written anywhere"]
    pub fn dump_bdds_to_vec(&self, roots: &[Bdd]) -> Vec<u8> {
        // Topological numbering: children-first DFS from each root.
        let mut refs: HashMap<u32, u32> = HashMap::new();
        refs.insert(0, 0);
        refs.insert(1, 1);
        let mut records: Vec<(u32, u32, u32)> = Vec::new();
        let mut stack: Vec<(Bdd, bool)> = Vec::new();
        for &root in roots {
            stack.push((root, false));
            while let Some((f, expanded)) = stack.pop() {
                if expanded {
                    if refs.contains_key(&f.0) {
                        continue;
                    }
                    let n = self.node(f);
                    let lo = refs[&n.lo];
                    let hi = refs[&n.hi];
                    let r = 2 + u32::try_from(records.len()).expect("dump too large");
                    records.push((n.var, lo, hi));
                    refs.insert(f.0, r);
                } else if !refs.contains_key(&f.0) {
                    let n = self.node(f);
                    stack.push((f, true));
                    stack.push((Bdd(n.hi), false));
                    stack.push((Bdd(n.lo), false));
                }
            }
        }

        let mut buf = Vec::with_capacity(
            MAGIC.len() + 16 + self.num_vars() as usize * 4 + records.len() * 16 + roots.len() * 4,
        );
        buf.extend_from_slice(MAGIC);
        push_u32(&mut buf, FORMAT_VERSION);
        push_u32(&mut buf, self.num_vars());
        for &level in &self.perm {
            push_u32(&mut buf, level);
        }
        push_u32(&mut buf, u32::try_from(records.len()).expect("dump too large"));
        push_u32(&mut buf, u32::try_from(roots.len()).expect("too many roots"));
        for &(var, lo, hi) in &records {
            push_u32(&mut buf, RECORD_LEN);
            push_u32(&mut buf, var);
            push_u32(&mut buf, lo);
            push_u32(&mut buf, hi);
        }
        for &root in roots {
            push_u32(&mut buf, refs[&root.0]);
        }
        let crc = crc32(&buf);
        push_u32(&mut buf, crc);
        buf
    }

    /// Serialize `roots` to `w` (see [`Manager::dump_bdds_to_vec`] for the
    /// format).
    pub fn dump_bdds(&self, roots: &[Bdd], w: &mut dyn Write) -> io::Result<()> {
        w.write_all(&self.dump_bdds_to_vec(roots))
    }

    /// Deserialize a dump into a **fresh** manager, restoring the dumped
    /// variable order. The rebuilt DAG is node-for-node identical to the
    /// dumped one (same node counts, same structure); returns the manager
    /// and the roots in dump order.
    #[must_use = "a corrupted dump is reported through the Result"]
    pub fn load_bdds(r: &mut dyn Read) -> Result<(Manager, Vec<Bdd>), SerializeError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        let parsed = parse(&buf)?;
        let mut mgr = Manager::new();
        mgr.new_vars(parsed.perm.len());
        mgr.perm.copy_from_slice(&parsed.perm);
        for (var, &level) in parsed.perm.iter().enumerate() {
            mgr.invperm[level as usize] = var as u32;
        }
        let mut handles: Vec<Bdd> = Vec::with_capacity(parsed.records.len() + 2);
        handles.push(Bdd::FALSE);
        handles.push(Bdd::TRUE);
        for &(var, lo, hi) in &parsed.records {
            let before = mgr.live_nodes();
            let f = mgr.mk(var, handles[lo as usize], handles[hi as usize]);
            debug_assert!(mgr.live_nodes() == before + 1, "validated record was not fresh");
            handles.push(f);
        }
        let roots = parsed.roots.iter().map(|&r| handles[r as usize]).collect();
        Ok((mgr, roots))
    }

    /// Deserialize a dump into **this** manager, which must have the same
    /// number of variables. When the current variable order matches the
    /// dumped one the DAG is rebuilt directly; otherwise each node is
    /// re-derived through (budgeted) `ite`, which re-canonicalizes under
    /// the current order — semantics are preserved either way.
    #[must_use = "a corrupted dump is reported through the Result"]
    pub fn load_bdds_into(&mut self, r: &mut dyn Read) -> Result<Vec<Bdd>, SerializeError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        let parsed = parse(&buf)?;
        let num_vars = u32::try_from(parsed.perm.len()).expect("validated var count");
        if num_vars != self.num_vars() {
            return Err(SerializeError::VarCountMismatch {
                expected: self.num_vars(),
                found: num_vars,
            });
        }
        let same_order = self.perm == parsed.perm;
        let mut handles: Vec<Bdd> = Vec::with_capacity(parsed.records.len() + 2);
        handles.push(Bdd::FALSE);
        handles.push(Bdd::TRUE);
        for &(var, lo, hi) in &parsed.records {
            let (lo, hi) = (handles[lo as usize], handles[hi as usize]);
            let f = if same_order {
                self.mk(var, lo, hi)
            } else {
                let v = self.var(VarId(var));
                self.try_ite(v, hi, lo).map_err(SerializeError::Resource)?
            };
            handles.push(f);
        }
        Ok(parsed.roots.iter().map(|&r| handles[r as usize]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manager() -> (Manager, Vec<Bdd>) {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let x: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let a = m.and(x[0], x[1]);
        let nb = m.not(x[2]);
        let f = m.or(a, nb);
        let g = m.xor(x[1], x[3]);
        let h = m.and(f, g);
        (m, vec![f, g, h, Bdd::TRUE, Bdd::FALSE])
    }

    fn all_assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1usize << n).map(move |bits| (0..n).map(|i| bits >> i & 1 == 1).collect())
    }

    #[test]
    fn round_trip_into_fresh_manager() {
        let (m, roots) = sample_manager();
        let bytes = m.dump_bdds_to_vec(&roots);
        let (loaded, new_roots) = Manager::load_bdds(&mut &bytes[..]).unwrap();
        assert_eq!(new_roots.len(), roots.len());
        assert_eq!(loaded.current_order(), m.current_order());
        assert_eq!(loaded.node_count_many(&new_roots), m.node_count_many(&roots));
        for (old, new) in roots.iter().zip(&new_roots) {
            assert_eq!(loaded.node_count(*new), m.node_count(*old));
            for a in all_assignments(4) {
                assert_eq!(loaded.eval(*new, &a), m.eval(*old, &a));
            }
        }
        // Canonical structure ⇒ a re-dump is byte-identical.
        assert_eq!(loaded.dump_bdds_to_vec(&new_roots), bytes);
    }

    #[test]
    fn round_trip_preserves_non_identity_order() {
        let (mut m, roots) = sample_manager();
        let target: Vec<VarId> = [3u32, 1, 0, 2].iter().map(|&v| VarId(v)).collect();
        m.reorder_to(&target, &roots);
        assert_eq!(m.current_order(), target);
        let bytes = m.dump_bdds_to_vec(&roots);
        let (loaded, new_roots) = Manager::load_bdds(&mut &bytes[..]).unwrap();
        assert_eq!(loaded.current_order(), target);
        assert!(loaded.check_order_invariant());
        assert_eq!(loaded.node_count_many(&new_roots), m.node_count_many(&roots));
        for (old, new) in roots.iter().zip(&new_roots) {
            for a in all_assignments(4) {
                assert_eq!(loaded.eval(*new, &a), m.eval(*old, &a));
            }
        }
    }

    #[test]
    fn load_into_same_manager_is_identity() {
        let (mut m, roots) = sample_manager();
        let bytes = m.dump_bdds_to_vec(&roots);
        let loaded = m.load_bdds_into(&mut &bytes[..]).unwrap();
        // Hash-consing: identical structure under the same order resolves
        // to the very same handles.
        assert_eq!(loaded, roots);
    }

    #[test]
    fn load_into_differently_ordered_manager_preserves_semantics() {
        let (m, roots) = sample_manager();
        let bytes = m.dump_bdds_to_vec(&roots);
        let mut other = Manager::new();
        let ovars = other.new_vars(4);
        let target: Vec<VarId> = [2u32, 0, 3, 1].iter().map(|&v| VarId(v)).collect();
        let keep: Vec<Bdd> = ovars.iter().map(|&v| other.var(v)).collect();
        other.reorder_to(&target, &keep);
        let loaded = other.load_bdds_into(&mut &bytes[..]).unwrap();
        for (old, new) in roots.iter().zip(&loaded) {
            for a in all_assignments(4) {
                assert_eq!(other.eval(*new, &a), m.eval(*old, &a));
            }
        }
    }

    #[test]
    fn var_count_mismatch_is_detected() {
        let (m, roots) = sample_manager();
        let bytes = m.dump_bdds_to_vec(&roots);
        let mut small = Manager::new();
        small.new_vars(2);
        match small.load_bdds_into(&mut &bytes[..]) {
            Err(SerializeError::VarCountMismatch { expected: 2, found: 4 }) => {}
            other => panic!("expected VarCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_detected() {
        let (m, roots) = sample_manager();
        let mut bytes = m.dump_bdds_to_vec(&roots);
        bytes[0] ^= 0xFF;
        assert!(matches!(Manager::load_bdds(&mut &bytes[..]), Err(SerializeError::BadMagic)));

        let mut bytes = m.dump_bdds_to_vec(&roots);
        bytes[8] = 99; // version field
        assert!(matches!(
            Manager::load_bdds(&mut &bytes[..]),
            Err(SerializeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let (m, roots) = sample_manager();
        let bytes = m.dump_bdds_to_vec(&roots);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                Manager::load_bdds(&mut &corrupt[..]).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let (m, roots) = sample_manager();
        let bytes = m.dump_bdds_to_vec(&roots);
        for len in 0..bytes.len() {
            assert!(
                Manager::load_bdds(&mut &bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (m, roots) = sample_manager();
        let mut bytes = m.dump_bdds_to_vec(&roots);
        bytes.extend_from_slice(&[0, 1, 2, 3]);
        assert!(Manager::load_bdds(&mut &bytes[..]).is_err());
    }

    #[test]
    fn empty_root_set_round_trips() {
        let m = Manager::new();
        let bytes = m.dump_bdds_to_vec(&[]);
        let (loaded, roots) = Manager::load_bdds(&mut &bytes[..]).unwrap();
        assert!(roots.is_empty());
        assert_eq!(loaded.num_vars(), 0);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
