//! Order-preserving variable renaming.
//!
//! The symbolic engine encodes a protocol state twice — current variables at
//! even levels, primed (next-state) variables at odd levels — and moves
//! predicates between the two vocabularies with a rename. Because the two
//! vocabularies are interleaved, the maps `x_i ↦ x_i'` (level `2i ↦ 2i+1`)
//! and back are strictly monotone on their domains, so renaming is a single
//! linear-time structural recursion; no general (exponential-in-the-worst-
//! case) substitution is needed.

use crate::manager::{Bdd, Manager, VarId};

/// Identity of an interned rename map (a partial variable map that is
/// strictly monotone with respect to the current order). Like varsets,
/// rename ids carry the reorder generation and must be re-interned after
/// a [`Manager::sift`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RenameId {
    pub(crate) gen: u32,
    pub(crate) idx: u32,
}

impl Manager {
    /// Intern a rename map given as `(from, to)` variable pairs.
    ///
    /// The map must be strictly monotone with respect to the current
    /// variable order: sorting the pairs by the level of `from` must also
    /// sort them strictly by the level of `to` — this is what makes the
    /// structural recursion in [`Manager::rename`] sound. Violations panic.
    pub fn rename_map(&mut self, pairs: &[(VarId, VarId)]) -> RenameId {
        // Validate monotonicity under the current order.
        let mut by_level: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(a, b)| (self.perm[a.0 as usize], self.perm[b.0 as usize]))
            .collect();
        by_level.sort_unstable();
        for w in by_level.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate source variable in rename map");
            assert!(
                w[0].1 < w[1].1,
                "rename map is not order-preserving: level {} ↦ {} vs {} ↦ {}",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        // Store by variable id (what the recursion looks up).
        let mut map: Vec<(u32, u32)> = pairs.iter().map(|&(a, b)| (a.0, b.0)).collect();
        map.sort_unstable();
        let gen = self.order_generation;
        if let Some(&idx) = self.rename_ids.get(&map) {
            return RenameId { gen, idx };
        }
        let idx = u32::try_from(self.renames.len()).expect("too many rename maps");
        self.renames.push(map.clone());
        self.rename_ids.insert(map, idx);
        RenameId { gen, idx }
    }

    /// Validate a rename id against the current order generation.
    #[inline]
    pub(crate) fn check_rename(&self, id: RenameId) {
        assert_eq!(
            id.gen, self.order_generation,
            "rename map was interned before a reordering; re-intern it"
        );
    }

    /// Apply an interned rename map to `f`.
    ///
    /// Every variable in `f`'s support that appears as a source in the map
    /// is replaced by its image; other variables are untouched. For the
    /// result to be a well-formed ordered BDD the *combined* mapping over
    /// `f`'s support must be order-preserving; the debug-mode order check
    /// in the node constructor catches violations.
    pub fn rename(&mut self, f: Bdd, map: RenameId) -> Bdd {
        crate::budget::expect_budget(self.try_rename(f, map))
    }

    /// Fallible variant of [`Manager::rename`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_rename(&mut self, f: Bdd, map: RenameId) -> Result<Bdd, crate::BddError> {
        self.check_rename(map);
        self.rename_rec(f, map)
    }

    fn rename_rec(&mut self, f: Bdd, map: RenameId) -> Result<Bdd, crate::BddError> {
        self.tick()?;
        if f.is_const() {
            return Ok(f);
        }
        let key = (f.0, map.idx);
        self.cache_lookups += 1;
        if let Some(&r) = self.rename_cache.get(&key) {
            self.cache_hits += 1;
            return Ok(Bdd(r));
        }
        let n = self.node(f);
        let lo = self.rename_rec(Bdd(n.lo), map)?;
        let hi = self.rename_rec(Bdd(n.hi), map)?;
        let new_var = match self.renames[map.idx as usize].binary_search_by_key(&n.var, |&(a, _)| a)
        {
            Ok(i) => self.renames[map.idx as usize][i].1,
            Err(_) => n.var,
        };
        let r = self.mk(new_var, lo, hi);
        self.rename_cache.insert(key, r.0);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_shifts_support() {
        let mut m = Manager::new();
        let vs = m.new_vars(4); // x0 x0' x1 x1' interleaved
        let x0 = m.var(vs[0]);
        let x1 = m.var(vs[2]);
        let f = m.and(x0, x1);
        let to_primed = m.rename_map(&[(vs[0], vs[1]), (vs[2], vs[3])]);
        let fp = m.rename(f, to_primed);
        let x0p = m.var(vs[1]);
        let x1p = m.var(vs[3]);
        let expect = m.and(x0p, x1p);
        assert_eq!(fp, expect);
    }

    #[test]
    fn rename_roundtrip() {
        let mut m = Manager::new();
        let vs = m.new_vars(6);
        let a = m.var(vs[0]);
        let b = m.var(vs[2]);
        let c = m.var(vs[4]);
        let ab = m.xor(a, b);
        let f = m.or(ab, c);
        let fwd = m.rename_map(&[(vs[0], vs[1]), (vs[2], vs[3]), (vs[4], vs[5])]);
        let bwd = m.rename_map(&[(vs[1], vs[0]), (vs[3], vs[2]), (vs[5], vs[4])]);
        let g = m.rename(f, fwd);
        assert_ne!(f, g);
        assert_eq!(m.rename(g, bwd), f);
    }

    #[test]
    fn rename_untouched_vars_stay() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let a = m.var(vs[0]);
        let d = m.var(vs[3]);
        let f = m.and(a, d);
        let map = m.rename_map(&[(vs[0], vs[1])]);
        let g = m.rename(f, map);
        let ap = m.var(vs[1]);
        let expect = m.and(ap, d);
        assert_eq!(g, expect);
    }

    #[test]
    #[should_panic(expected = "order-preserving")]
    fn non_monotone_map_panics() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        m.rename_map(&[(vs[0], vs[3]), (vs[1], vs[2])]);
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn duplicate_source_panics() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        m.rename_map(&[(vs[0], vs[1]), (vs[0], vs[2])]);
    }

    #[test]
    fn rename_constants_noop() {
        let mut m = Manager::new();
        let vs = m.new_vars(2);
        let map = m.rename_map(&[(vs[0], vs[1])]);
        assert!(m.rename(Bdd::TRUE, map).is_true());
        assert!(m.rename(Bdd::FALSE, map).is_false());
    }
}
