//! Memoized boolean connectives: `not`, `and`, `or`, `xor`, `ite`, and the
//! derived operations (`implies`, `iff`, `diff`) the synthesizer uses.
//!
//! Every operation comes in two flavours: a fallible `try_*` variant that
//! charges the installed [`crate::Budget`] one tick per recursive step and
//! returns [`crate::BddError`] on exhaustion, and the classic infallible
//! name, a thin wrapper that panics only if a budget is installed *and*
//! exhausted (budgeted callers must use `try_*`).

use crate::budget::{expect_budget, BddError};
use crate::manager::{Bdd, BinOp, Manager};

impl Manager {
    /// Negation `¬f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        expect_budget(self.try_not(f))
    }

    /// Fallible negation `¬f`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_not(&mut self, f: Bdd) -> Result<Bdd, BddError> {
        self.tick()?;
        if f.is_false() {
            return Ok(Bdd::TRUE);
        }
        if f.is_true() {
            return Ok(Bdd::FALSE);
        }
        self.cache_lookups += 1;
        if let Some(&r) = self.not_cache.get(&f.0) {
            self.cache_hits += 1;
            return Ok(Bdd(r));
        }
        let n = self.node(f);
        let lo = self.try_not(Bdd(n.lo))?;
        let hi = self.try_not(Bdd(n.hi))?;
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f.0, r.0);
        Ok(r)
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_budget(self.try_and(f, g))
    }

    /// Fallible conjunction `f ∧ g`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.apply_bin(BinOp::And, f, g)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_budget(self.try_or(f, g))
    }

    /// Fallible disjunction `f ∨ g`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.apply_bin(BinOp::Or, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_budget(self.try_xor(f, g))
    }

    /// Fallible exclusive or `f ⊕ g`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        self.apply_bin(BinOp::Xor, f, g)
    }

    /// Implication `f ⇒ g`, i.e. `¬f ∨ g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_budget(self.try_implies(f, g))
    }

    /// Fallible implication `f ⇒ g`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_implies(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        let nf = self.try_not(f)?;
        self.try_or(nf, g)
    }

    /// Biconditional `f ⇔ g`, i.e. `¬(f ⊕ g)`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_budget(self.try_iff(f, g))
    }

    /// Fallible biconditional `f ⇔ g`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_iff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        let x = self.try_xor(f, g)?;
        self.try_not(x)
    }

    /// Set difference `f ∧ ¬g` (reads naturally when BDDs denote state sets).
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        expect_budget(self.try_diff(f, g))
    }

    /// Fallible set difference `f ∧ ¬g`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_diff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        let ng = self.try_not(g)?;
        self.try_and(f, ng)
    }

    /// Conjunction of a slice of functions (right fold; `true` for empty).
    pub fn and_many(&mut self, fs: &[Bdd]) -> Bdd {
        expect_budget(self.try_and_many(fs))
    }

    /// Fallible conjunction of a slice of functions.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_and_many(&mut self, fs: &[Bdd]) -> Result<Bdd, BddError> {
        let mut acc = Bdd::TRUE;
        for &f in fs {
            acc = self.try_and(acc, f)?;
            if acc.is_false() {
                break;
            }
        }
        Ok(acc)
    }

    /// Disjunction of a slice of functions (`false` for empty).
    pub fn or_many(&mut self, fs: &[Bdd]) -> Bdd {
        expect_budget(self.try_or_many(fs))
    }

    /// Fallible disjunction of a slice of functions.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_or_many(&mut self, fs: &[Bdd]) -> Result<Bdd, BddError> {
        let mut acc = Bdd::FALSE;
        for &f in fs {
            acc = self.try_or(acc, f)?;
            if acc.is_true() {
                break;
            }
        }
        Ok(acc)
    }

    /// If-then-else `(f ∧ g) ∨ (¬f ∧ h)` — the universal ternary connective.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        expect_budget(self.try_ite(f, g, h))
    }

    /// Fallible if-then-else.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BddError> {
        self.tick()?;
        // Terminal and absorption cases.
        if f.is_true() {
            return Ok(g);
        }
        if f.is_false() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_true() && h.is_false() {
            return Ok(f);
        }
        if g.is_false() && h.is_true() {
            return self.try_not(f);
        }
        if f == g {
            return self.try_or(f, h); // ite(f,f,h) = f ∨ h
        }
        if f == h {
            return self.try_and(f, g); // ite(f,g,f) = f ∧ g
        }
        let key = (f.0, g.0, h.0);
        self.cache_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&key) {
            self.cache_hits += 1;
            return Ok(Bdd(r));
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let lo = self.try_ite(f0, g0, h0)?;
        let hi = self.try_ite(f1, g1, h1)?;
        let r = self.mk_level(top, lo, hi);
        self.ite_cache.insert(key, r.0);
        Ok(r)
    }

    /// Does `f ⇒ g` hold for all assignments? (Set inclusion when BDDs
    /// denote sets.) Computed without materializing the implication.
    pub fn implies_holds(&mut self, f: Bdd, g: Bdd) -> bool {
        expect_budget(self.try_implies_holds(f, g))
    }

    /// Fallible set-inclusion test.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_implies_holds(&mut self, f: Bdd, g: Bdd) -> Result<bool, BddError> {
        Ok(self.try_diff(f, g)?.is_false())
    }

    /// Do `f` and `g` share a satisfying assignment? (Set intersection
    /// non-emptiness.)
    pub fn intersects(&mut self, f: Bdd, g: Bdd) -> bool {
        expect_budget(self.try_intersects(f, g))
    }

    /// Fallible intersection-non-emptiness test.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_intersects(&mut self, f: Bdd, g: Bdd) -> Result<bool, BddError> {
        Ok(!self.try_and(f, g)?.is_false())
    }

    /// Both cofactors of `f` with respect to the variable at `level`
    /// (which must be at or above `f`'s own top level).
    #[inline]
    pub(crate) fn cofactors_at(&self, f: Bdd, level: u32) -> (Bdd, Bdd) {
        if self.level(f) == level {
            let n = self.node(f);
            (Bdd(n.lo), Bdd(n.hi))
        } else {
            (f, f)
        }
    }

    fn apply_bin(&mut self, op: BinOp, mut f: Bdd, mut g: Bdd) -> Result<Bdd, BddError> {
        self.tick()?;
        // Terminal cases per operator.
        match op {
            BinOp::And => {
                if f.is_false() || g.is_false() {
                    return Ok(Bdd::FALSE);
                }
                if f.is_true() {
                    return Ok(g);
                }
                if g.is_true() {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            BinOp::Or => {
                if f.is_true() || g.is_true() {
                    return Ok(Bdd::TRUE);
                }
                if f.is_false() {
                    return Ok(g);
                }
                if g.is_false() {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            BinOp::Xor => {
                if f == g {
                    return Ok(Bdd::FALSE);
                }
                if f.is_false() {
                    return Ok(g);
                }
                if g.is_false() {
                    return Ok(f);
                }
                if f.is_true() {
                    return self.try_not(g);
                }
                if g.is_true() {
                    return self.try_not(f);
                }
            }
        }
        // All three operators are commutative: normalize the cache key.
        if f.0 > g.0 {
            std::mem::swap(&mut f, &mut g);
        }
        let key = (op, f.0, g.0);
        self.cache_lookups += 1;
        if let Some(&r) = self.bin_cache.get(&key) {
            self.cache_hits += 1;
            return Ok(Bdd(r));
        }
        let top = self.level(f).min(self.level(g));
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let lo = self.apply_bin(op, f0, g0)?;
        let hi = self.apply_bin(op, f1, g1)?;
        let r = self.mk_level(top, lo, hi);
        self.bin_cache.insert(key, r.0);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup3() -> (Manager, Bdd, Bdd, Bdd) {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let (fa, fb, fc) = (m.var(a), m.var(b), m.var(c));
        (m, fa, fb, fc)
    }

    #[test]
    fn de_morgan() {
        let (mut m, a, b, _) = setup3();
        let lhs = {
            let x = m.and(a, b);
            m.not(x)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn double_negation() {
        let (mut m, a, b, _) = setup3();
        let f = m.xor(a, b);
        let nf = m.not(f);
        assert_eq!(m.not(nf), f);
    }

    #[test]
    fn distributivity() {
        let (mut m, a, b, c) = setup3();
        let bc = m.or(b, c);
        let lhs = m.and(a, bc);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let rhs = m.or(ab, ac);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_via_ite() {
        let (mut m, a, b, _) = setup3();
        let nb = m.not(b);
        let via_ite = m.ite(a, nb, b);
        assert_eq!(via_ite, m.xor(a, b));
    }

    #[test]
    fn ite_absorptions() {
        let (mut m, a, b, c) = setup3();
        assert_eq!(m.ite(Bdd::TRUE, b, c), b);
        assert_eq!(m.ite(Bdd::FALSE, b, c), c);
        assert_eq!(m.ite(a, b, b), b);
        assert_eq!(m.ite(a, Bdd::TRUE, Bdd::FALSE), a);
        let na = m.not(a);
        assert_eq!(m.ite(a, Bdd::FALSE, Bdd::TRUE), na);
        let a_or_c = m.or(a, c);
        assert_eq!(m.ite(a, a, c), a_or_c);
        let a_and_b = m.and(a, b);
        assert_eq!(m.ite(a, b, a), a_and_b);
    }

    #[test]
    fn implies_and_iff() {
        let (mut m, a, b, _) = setup3();
        let ab = m.and(a, b);
        assert!(m.implies_holds(ab, a));
        assert!(!m.implies_holds(a, ab));
        let i1 = m.iff(a, a);
        assert!(i1.is_true());
        let i2 = m.iff(a, b);
        let x = m.xor(a, b);
        let nx = m.not(x);
        assert_eq!(i2, nx);
    }

    #[test]
    fn many_folds() {
        let (mut m, a, b, c) = setup3();
        let all = m.and_many(&[a, b, c]);
        let ab = m.and(a, b);
        let abc = m.and(ab, c);
        assert_eq!(all, abc);
        let any = m.or_many(&[a, b, c]);
        let ob = m.or(a, b);
        let obc = m.or(ob, c);
        assert_eq!(any, obc);
        assert!(m.and_many(&[]).is_true());
        assert!(m.or_many(&[]).is_false());
    }

    #[test]
    fn intersects_and_diff() {
        let (mut m, a, b, _) = setup3();
        let na = m.not(a);
        assert!(!m.intersects(a, na));
        assert!(m.intersects(a, b));
        let d = m.diff(a, a);
        assert!(d.is_false());
    }
}
