//! # stsyn-bdd — a from-scratch Binary Decision Diagram package
//!
//! This crate is the symbolic substrate of the STSyn reproduction. The
//! original tool (Ebnenasir & Farahat, IPDPS 2011) used the CUDD/GLU 2.1
//! library for BDD manipulation; this crate replaces it with a pure-Rust
//! implementation providing everything the synthesis heuristic needs:
//!
//! * a hash-consed **unique table** guaranteeing canonicity (reduced ordered
//!   BDDs — equality is pointer equality),
//! * memoized boolean operations (`and`, `or`, `xor`, `not`, `ite`, ...),
//! * **quantification** (`exists`, `forall`) and the fused **relational
//!   product** `and_exists` used for image/preimage computation,
//! * order-preserving **variable renaming** (current-state ↔ next-state),
//! * model counting (`sat_count`), cube enumeration and evaluation,
//! * node-count statistics — the paper's space metric (Figures 7, 9, 11)
//!   is "number of BDD nodes", which is a property of the DAG and therefore
//!   directly comparable across BDD packages,
//! * mark-and-sweep garbage collection with a slot free-list so that live
//!   handles remain valid across collections,
//! * **dynamic variable reordering** — in-place adjacent-level swaps and
//!   Rudell's sifting ([`Manager::sift`]); handles survive, interned
//!   varsets/rename maps are generation-checked,
//! * the Coudert–Madre **don't-care minimizers**
//!   ([`Manager::constrain`] / [`Manager::restrict`]),
//! * DOT export for debugging and visualization.
//!
//! ## Design
//!
//! Nodes live in a flat arena and are addressed by `u32` indices wrapped in
//! the copyable handle type [`Bdd`]. Index `0` is the `FALSE` terminal and
//! index `1` is `TRUE`. Every internal node stores the *level* (position in
//! the variable order) of its decision variable and the two cofactor edges.
//! Variable levels are allocated in creation order via [`Manager::new_var`];
//! the synthesizer interleaves current and primed state variables (`x` at
//! level `2i`, `x'` at level `2i+1`) which keeps frame conditions
//! (`x' = x`) linear in size.
//!
//! ## Example
//!
//! ```
//! use stsyn_bdd::Manager;
//!
//! let mut m = Manager::new();
//! let a = m.new_var();
//! let b = m.new_var();
//! let fa = m.var(a);
//! let fb = m.var(b);
//! let conj = m.and(fa, fb);
//! let disj = m.or(fa, fb);
//! assert!(m.implies_holds(conj, disj));
//! assert_eq!(m.sat_count(conj, 2), 1.0);
//! assert_eq!(m.sat_count(disj, 2), 3.0);
//! ```

#![warn(missing_docs)]

mod budget;
mod dot;
mod explore;
mod hash;
mod manager;
mod minimize;
mod ops;
mod quant;
mod rename;
mod reorder;
mod serialize;
mod varset;

pub use budget::{BddError, Budget, Resource};
pub use explore::CubeIter;
pub use manager::{Bdd, Manager, ManagerStats, VarId};
pub use rename::RenameId;
pub use serialize::{crc32, SerializeError, FORMAT_VERSION, MAGIC};
pub use varset::VarSetId;

#[cfg(test)]
mod tests;
