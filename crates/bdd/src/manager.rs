//! The BDD manager: node arena, hash-consing unique table, variable
//! allocation, and mark-and-sweep garbage collection.

use crate::hash::FxHashMap;
use stsyn_obs::{Json, TraceLevel, Tracer};

/// A BDD variable, identified by its *level* (position in the global
/// variable order). Levels are assigned in creation order by
/// [`Manager::new_var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The level of this variable in the manager's order.
    #[inline]
    pub fn level(self) -> u32 {
        self.0
    }
}

/// A handle to a (shared, immutable) BDD node owned by a [`Manager`].
///
/// Handles are plain indices: copying is free and **equality of handles is
/// equivalence of the boolean functions** they denote, thanks to
/// hash-consing. A handle is only meaningful together with the manager that
/// produced it, and is invalidated if a [`Manager::gc`] call runs without
/// listing it (directly or transitively) among the roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-`false` function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-`true` function.
    pub const TRUE: Bdd = Bdd(1);

    /// Is this the constant `false`?
    #[inline]
    pub fn is_false(self) -> bool {
        self.0 == 0
    }

    /// Is this the constant `true`?
    #[inline]
    pub fn is_true(self) -> bool {
        self.0 == 1
    }

    /// Is this one of the two terminal nodes?
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The raw arena index (for diagnostics only).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Level value used for the two terminal nodes: below every real variable.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// One decision node: `if var then hi else lo`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: u32,
    pub hi: u32,
}

/// Point-in-time counters describing a manager, used by the benchmark
/// harness to reproduce the paper's space figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Nodes currently reachable (allocated minus freed), terminals included.
    pub live_nodes: usize,
    /// Total arena slots ever allocated (high-water mark of the arena).
    pub allocated_nodes: usize,
    /// Maximum `live_nodes` ever observed.
    pub peak_live_nodes: usize,
    /// Number of garbage collections performed.
    pub gc_runs: usize,
    /// Number of boolean variables created.
    pub num_vars: usize,
    /// Memoization-cache probes across all operation caches (apply/ITE/
    /// not/exists/and-exists/rename).
    pub cache_lookups: u64,
    /// Probes that hit (the paper's workloads live or die by this rate).
    pub cache_hits: u64,
}

impl ManagerStats {
    /// Cache hit rate in `[0, 1]`, or 0 when no probe has happened.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// Tags for the memoized binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BinOp {
    And,
    Or,
    Xor,
}

/// The owner of all BDD nodes: allocates variables, hash-conses nodes, and
/// hosts every operation (as `&mut self` methods, since operations may
/// create nodes and populate caches).
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: FxHashMap<(u32, u32, u32), u32>,
    pub(crate) free: Vec<u32>,
    num_vars: u32,
    /// Variable → level (position in the order). Identity until the first
    /// reordering.
    pub(crate) perm: Vec<u32>,
    /// Level → variable (inverse of `perm`).
    pub(crate) invperm: Vec<u32>,
    /// Bumped by every reordering; interned varsets and rename maps carry
    /// the generation they were created under and refuse to be used after
    /// a reorder (their cached level information would be stale).
    pub(crate) order_generation: u32,

    // Operation caches (cleared on GC).
    pub(crate) bin_cache: FxHashMap<(BinOp, u32, u32), u32>,
    pub(crate) not_cache: FxHashMap<u32, u32>,
    pub(crate) ite_cache: FxHashMap<(u32, u32, u32), u32>,
    pub(crate) exists_cache: FxHashMap<(u32, u32), u32>,
    pub(crate) and_exists_cache: FxHashMap<(u32, u32, u32), u32>,
    pub(crate) rename_cache: FxHashMap<(u32, u32), u32>,

    // Interned variable sets / rename maps (survive GC).
    pub(crate) varsets: Vec<Vec<u32>>,
    pub(crate) varset_ids: FxHashMap<Vec<u32>, u32>,
    pub(crate) renames: Vec<Vec<(u32, u32)>>,
    pub(crate) rename_ids: FxHashMap<Vec<(u32, u32)>, u32>,

    gc_runs: usize,
    peak_live: usize,
    pub(crate) cache_lookups: u64,
    pub(crate) cache_hits: u64,
    pub(crate) tracer: Tracer,

    // Resource budget, registered persistent roots and interleaved
    // (current, primed) pairs for the degradation path (see `budget.rs`).
    pub(crate) budget: crate::budget::BudgetState,
    pub(crate) gc_roots: Vec<Bdd>,
    pub(crate) reorder_pairs: Vec<(VarId, VarId)>,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Create an empty manager holding just the two terminal nodes.
    pub fn new() -> Self {
        let terminals = vec![
            Node { var: TERMINAL_LEVEL, lo: 0, hi: 0 }, // FALSE
            Node { var: TERMINAL_LEVEL, lo: 1, hi: 1 }, // TRUE
        ];
        Manager {
            nodes: terminals,
            unique: FxHashMap::default(),
            free: Vec::new(),
            num_vars: 0,
            perm: Vec::new(),
            invperm: Vec::new(),
            order_generation: 0,
            bin_cache: FxHashMap::default(),
            not_cache: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            exists_cache: FxHashMap::default(),
            and_exists_cache: FxHashMap::default(),
            rename_cache: FxHashMap::default(),
            varsets: Vec::new(),
            varset_ids: FxHashMap::default(),
            renames: Vec::new(),
            rename_ids: FxHashMap::default(),
            gc_runs: 0,
            peak_live: 2,
            cache_lookups: 0,
            cache_hits: 0,
            tracer: Tracer::disabled(),
            budget: crate::budget::BudgetState::default(),
            gc_roots: Vec::new(),
            reorder_pairs: Vec::new(),
        }
    }

    /// Allocate a fresh boolean variable at the next level of the order.
    pub fn new_var(&mut self) -> VarId {
        let v = VarId(self.num_vars);
        self.num_vars += 1;
        self.perm.push(v.0);
        self.invperm.push(v.0);
        v
    }

    /// The current level (order position) of a variable.
    #[inline]
    pub fn level_of(&self, v: VarId) -> u32 {
        self.perm[v.0 as usize]
    }

    /// The variable currently sitting at `level`.
    #[inline]
    pub fn var_at(&self, level: u32) -> VarId {
        VarId(self.invperm[level as usize])
    }

    /// The reorder generation (see [`Manager::sift`]); varsets and rename
    /// maps are only usable within the generation they were interned in.
    #[inline]
    pub fn generation(&self) -> u32 {
        self.order_generation
    }

    /// Allocate `n` fresh variables, returned in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<VarId> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables created so far.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The constant `false` function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd::FALSE
    }

    /// The constant `true` function.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd::TRUE
    }

    /// The literal function `v` (true iff variable `v` is 1).
    pub fn var(&mut self, v: VarId) -> Bdd {
        debug_assert!(v.0 < self.num_vars, "variable not allocated");
        self.mk(v.0, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated literal `¬v`.
    pub fn nvar(&mut self, v: VarId) -> Bdd {
        debug_assert!(v.0 < self.num_vars, "variable not allocated");
        self.mk(v.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal with the given polarity: `var(v)` if `value` else `nvar(v)`.
    pub fn literal(&mut self, v: VarId, value: bool) -> Bdd {
        if value {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Hash-consed node constructor (the only way nodes come to exist).
    /// Maintains the two ROBDD invariants: no redundant tests
    /// (`lo == hi` collapses) and no duplicate nodes (unique table).
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.perm[var as usize] < self.level(lo) && self.perm[var as usize] < self.level(hi),
            "variable order violated in mk: var {} (level {}) above children at levels {}/{}",
            var,
            self.perm[var as usize],
            self.level(lo),
            self.level(hi),
        );
        let key = (var, lo.0, hi.0);
        if let Some(&idx) = self.unique.get(&key) {
            return Bdd(idx);
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node { var, lo: lo.0, hi: hi.0 };
                slot
            }
            None => {
                let slot = u32::try_from(self.nodes.len()).expect("BDD arena overflow (>4G nodes)");
                self.nodes.push(Node { var, lo: lo.0, hi: hi.0 });
                slot
            }
        };
        self.unique.insert(key, idx);
        let live = self.live_nodes();
        if live > self.peak_live {
            self.peak_live = live;
        }
        Bdd(idx)
    }

    /// Node constructor addressed by *level*: used by the recursive
    /// operations, which work over the order rather than variable ids.
    #[inline]
    pub(crate) fn mk_level(&mut self, level: u32, lo: Bdd, hi: Bdd) -> Bdd {
        let var = self.invperm[level as usize];
        self.mk(var, lo, hi)
    }

    /// Level (order position) of the decision variable of `f`; terminals
    /// report [`TERMINAL_LEVEL`], i.e. below everything.
    #[inline]
    pub(crate) fn level(&self, f: Bdd) -> u32 {
        let var = self.nodes[f.0 as usize].var;
        if var == TERMINAL_LEVEL {
            TERMINAL_LEVEL
        } else {
            self.perm[var as usize]
        }
    }

    /// The decision variable of a non-terminal node.
    pub fn node_var(&self, f: Bdd) -> VarId {
        debug_assert!(!f.is_const(), "terminals have no variable");
        VarId(self.nodes[f.0 as usize].var)
    }

    /// The else-cofactor edge of a non-terminal node.
    pub fn node_lo(&self, f: Bdd) -> Bdd {
        debug_assert!(!f.is_const());
        Bdd(self.nodes[f.0 as usize].lo)
    }

    /// The then-cofactor edge of a non-terminal node.
    pub fn node_hi(&self, f: Bdd) -> Bdd {
        debug_assert!(!f.is_const());
        Bdd(self.nodes[f.0 as usize].hi)
    }

    #[inline]
    pub(crate) fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    /// Nodes currently live (terminals included).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            live_nodes: self.live_nodes(),
            allocated_nodes: self.nodes.len(),
            peak_live_nodes: self.peak_live,
            gc_runs: self.gc_runs,
            num_vars: self.num_vars as usize,
            cache_lookups: self.cache_lookups,
            cache_hits: self.cache_hits,
        }
    }

    /// Install a tracer; BDD-layer events (GC, reorder, budget
    /// degradation) flow through it. The default is the disabled tracer,
    /// whose hooks are single `Option` checks.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Seed this manager's cumulative counters from a prior run's
    /// [`ManagerStats`] — used by checkpoint resume, which rebuilds the
    /// manager from serialized BDDs and would otherwise silently reset
    /// `gc_runs`/cache statistics, making resumed-run metrics
    /// incomparable to fresh runs. Monotone counters add; peak-style
    /// gauges take the maximum.
    pub fn adopt_counters(&mut self, prior: &ManagerStats) {
        self.gc_runs += prior.gc_runs;
        self.cache_lookups += prior.cache_lookups;
        self.cache_hits += prior.cache_hits;
        self.peak_live = self.peak_live.max(prior.peak_live_nodes);
    }

    /// Mark-and-sweep garbage collection.
    ///
    /// Everything reachable from `roots` survives; every other node's slot
    /// is recycled through a free list, so **surviving handles remain
    /// valid** (no compaction). All operation caches are dropped. Returns
    /// the number of freed nodes.
    pub fn gc(&mut self, roots: &[Bdd]) -> usize {
        let cap = self.nodes.len();
        let mut marked = vec![false; cap];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<u32> = Vec::with_capacity(256);
        for &r in roots {
            debug_assert!((r.0 as usize) < cap, "root handle out of range");
            if !marked[r.0 as usize] {
                marked[r.0 as usize] = true;
                stack.push(r.0);
            }
        }
        while let Some(idx) = stack.pop() {
            let n = self.nodes[idx as usize];
            if n.var == TERMINAL_LEVEL {
                continue;
            }
            for child in [n.lo, n.hi] {
                if !marked[child as usize] {
                    marked[child as usize] = true;
                    stack.push(child);
                }
            }
        }
        let before = self.unique.len();
        self.unique.retain(|_, &mut idx| marked[idx as usize]);
        let freed = before - self.unique.len();
        // Rebuild the free list from scratch: a slot is free iff it is
        // unmarked and not already an (unreused) free slot. Recomputing from
        // the mark bitmap covers both.
        self.free.clear();
        for (idx, &m) in marked.iter().enumerate().take(cap).skip(2) {
            if !m {
                self.free.push(idx as u32);
            }
        }
        self.bin_cache.clear();
        self.not_cache.clear();
        self.ite_cache.clear();
        self.exists_cache.clear();
        self.and_exists_cache.clear();
        self.rename_cache.clear();
        self.gc_runs += 1;
        if self.tracer.level_enabled(TraceLevel::Info) {
            self.tracer.info(
                "bdd.gc",
                &[
                    ("run", Json::from(self.gc_runs as u64)),
                    ("freed", Json::from(freed as u64)),
                    ("live", Json::from(self.live_nodes() as u64)),
                    ("unique", Json::from(self.unique.len() as u64)),
                ],
            );
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let m = Manager::new();
        assert!(m.zero().is_false());
        assert!(m.one().is_true());
        assert_eq!(m.live_nodes(), 2);
    }

    #[test]
    fn var_nodes_are_hash_consed() {
        let mut m = Manager::new();
        let a = m.new_var();
        let f1 = m.var(a);
        let f2 = m.var(a);
        assert_eq!(f1, f2);
        assert_eq!(m.live_nodes(), 3);
    }

    #[test]
    fn mk_collapses_redundant_tests() {
        let mut m = Manager::new();
        let _a = m.new_var();
        let t = m.one();
        let f = m.mk(0, t, t);
        assert!(f.is_true());
    }

    #[test]
    fn gc_frees_unreachable_keeps_roots() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let keep = m.and(fa, fb);
        let _dead = m.or(fa, fb);
        let live_before = m.live_nodes();
        let freed = m.gc(&[keep]);
        assert!(freed > 0);
        assert_eq!(m.live_nodes(), live_before - freed);
        // keep is still evaluable and correct.
        assert!(m.eval(keep, &[true, true]));
        assert!(!m.eval(keep, &[true, false]));
    }

    #[test]
    fn gc_recycles_slots() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let _dead = m.and(fa, fb);
        let allocated_before = m.stats().allocated_nodes; // 0,1,a,b,a∧b = 5
        m.gc(&[fa, fb]); // frees exactly the a∧b node
                         // xor(a,b) needs two fresh nodes (¬b and the root); one must land in
                         // the recycled slot, so the arena grows by only one slot.
        let _reborn = m.xor(fa, fb);
        assert_eq!(m.stats().allocated_nodes, allocated_before + 1);
    }

    #[test]
    fn stats_track_peak_and_gc() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let mut f = m.one();
        for &v in &vs {
            let lit = m.var(v);
            f = m.and(f, lit);
        }
        let s1 = m.stats();
        assert_eq!(s1.num_vars, 4);
        assert!(s1.peak_live_nodes >= s1.live_nodes);
        m.gc(&[]);
        let s2 = m.stats();
        assert_eq!(s2.gc_runs, 1);
        assert_eq!(s2.live_nodes, 2);
    }
}
