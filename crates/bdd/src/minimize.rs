//! Don't-care minimization: the Coudert–Madre generalized cofactors.
//!
//! `constrain(f, c)` and `restrict(f, c)` return functions that agree with
//! `f` everywhere inside the care set `c` but are free to differ outside
//! it, which often shrinks the BDD dramatically. CUDD exposes these as
//! `Cudd_bddConstrain` / `Cudd_bddRestrict`; synthesis-style tools use
//! them to simplify guards and relations against reachability or `¬I`
//! don't-cares.

use crate::hash::FxHashMap;
use crate::manager::{Bdd, Manager};

impl Manager {
    /// The Coudert–Madre *constrain* (image-restricting) cofactor
    /// `f ↓ c`: agrees with `f` on `c`; outside `c` it takes the value of
    /// `f` at the "nearest" care point. Panics when `c` is unsatisfiable
    /// (there is no care set to agree on).
    pub fn constrain(&mut self, f: Bdd, c: Bdd) -> Bdd {
        assert!(!c.is_false(), "constrain with empty care set");
        let mut memo: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        self.constrain_rec(f, c, &mut memo)
    }

    fn constrain_rec(&mut self, f: Bdd, c: Bdd, memo: &mut FxHashMap<(u32, u32), u32>) -> Bdd {
        if c.is_true() || f.is_const() {
            return f;
        }
        if f == c {
            return Bdd::TRUE;
        }
        if let Some(&r) = memo.get(&(f.0, c.0)) {
            return Bdd(r);
        }
        let top = self.level(f).min(self.level(c));
        let (f0, f1) = self.cofactors_at(f, top);
        let (c0, c1) = self.cofactors_at(c, top);
        let r = if c1.is_false() {
            self.constrain_rec(f0, c0, memo)
        } else if c0.is_false() {
            self.constrain_rec(f1, c1, memo)
        } else {
            let lo = self.constrain_rec(f0, c0, memo);
            let hi = self.constrain_rec(f1, c1, memo);
            self.mk_level(top, lo, hi)
        };
        memo.insert((f.0, c.0), r.0);
        r
    }

    /// The Coudert–Madre *restrict* minimizer: like [`Manager::constrain`]
    /// but variables of `c` above `f`'s support are existentially dropped
    /// first, which avoids pulling irrelevant variables into the result —
    /// `restrict(f, c)`'s support is always a subset of `f`'s.
    pub fn restrict(&mut self, f: Bdd, c: Bdd) -> Bdd {
        assert!(!c.is_false(), "restrict with empty care set");
        let mut memo: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        self.restrict_rec(f, c, &mut memo)
    }

    fn restrict_rec(&mut self, f: Bdd, c: Bdd, memo: &mut FxHashMap<(u32, u32), u32>) -> Bdd {
        if c.is_true() || f.is_const() {
            return f;
        }
        if f == c {
            return Bdd::TRUE;
        }
        if let Some(&r) = memo.get(&(f.0, c.0)) {
            return Bdd(r);
        }
        let lf = self.level(f);
        let lc = self.level(c);
        let r = if lc < lf {
            // The care set tests a variable f does not depend on: drop it.
            let n = self.node(c);
            let merged = self.or(Bdd(n.lo), Bdd(n.hi));
            self.restrict_rec(f, merged, memo)
        } else {
            let top = lf;
            let (f0, f1) = self.cofactors_at(f, top);
            let (c0, c1) = self.cofactors_at(c, top);
            if c1.is_false() {
                self.restrict_rec(f0, c0, memo)
            } else if c0.is_false() {
                self.restrict_rec(f1, c1, memo)
            } else {
                let lo = self.restrict_rec(f0, c0, memo);
                let hi = self.restrict_rec(f1, c1, memo);
                self.mk_level(top, lo, hi)
            }
        };
        memo.insert((f.0, c.0), r.0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::VarId;

    fn setup() -> (Manager, Vec<VarId>) {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        (m, vs)
    }

    /// The defining property: the minimized function agrees with `f`
    /// inside the care set.
    fn agrees_on_care(m: &mut Manager, f: Bdd, g: Bdd, c: Bdd) -> bool {
        let fx = m.and(f, c);
        let gx = m.and(g, c);
        fx == gx
    }

    #[test]
    fn constrain_identity_cases() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.xor(a, b);
        assert_eq!(m.constrain(f, Bdd::TRUE), f);
        assert_eq!(m.constrain(f, f), Bdd::TRUE);
        assert_eq!(m.constrain(Bdd::TRUE, a), Bdd::TRUE);
        assert_eq!(m.constrain(Bdd::FALSE, a), Bdd::FALSE);
    }

    #[test]
    fn constrain_agrees_on_care_set() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let cvar = m.var(vs[2]);
        let ab = m.and(a, b);
        let f = m.or(ab, cvar);
        let care = m.or(a, b);
        let g = m.constrain(f, care);
        assert!(agrees_on_care(&mut m, f, g, care));
    }

    #[test]
    fn restrict_agrees_and_shrinks() {
        let (mut m, vs) = setup();
        let lits: Vec<Bdd> = vs.iter().map(|&v| m.var(v)).collect();
        // f = (a ∧ b) ∨ (c ∧ d); care set c: a ∧ b — inside it f is true.
        let ab = m.and(lits[0], lits[1]);
        let cd = m.and(lits[2], lits[3]);
        let f = m.or(ab, cd);
        let g = m.restrict(f, ab);
        assert!(agrees_on_care(&mut m, f, g, ab));
        assert!(g.is_true(), "f is constantly true on the care set");
        assert!(m.node_count(g) < m.node_count(f));
    }

    #[test]
    fn restrict_support_never_grows() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let d = m.var(vs[3]);
        // f depends only on a; the care set tests d (index 3).
        let f = a;
        let care = d;
        let g = m.restrict(f, care);
        let support = m.support(g);
        assert!(support.iter().all(|v| *v == vs[0]), "support grew: {support:?}");
        assert!(agrees_on_care(&mut m, f, g, care));
        // constrain, by contrast, may pull `d` in — the classical
        // difference between the two operators. (It yields f here because
        // the care set's top variable is below f's support, but on mixed
        // orders it can grow; we only assert restrict's guarantee.)
    }

    #[test]
    fn fuzz_agreement_property() {
        // LCG-driven random pairs checked against the agreement property.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let mut m = Manager::new();
            let vs = m.new_vars(4);
            let rand_fn = |m: &mut Manager, bits: u64| {
                // Build a function from a 16-bit truth table.
                let mut f = Bdd::FALSE;
                for row in 0..16u64 {
                    if (bits >> row) & 1 == 1 {
                        let lits: Vec<Bdd> =
                            (0..4).map(|i| m.literal(vs[i], (row >> i) & 1 == 1)).collect();
                        let cube = m.and_many(&lits);
                        f = m.or(f, cube);
                    }
                }
                f
            };
            let f = rand_fn(&mut m, next());
            let c = rand_fn(&mut m, next() | 1); // ensure non-empty
            if c.is_false() {
                continue;
            }
            let g1 = m.constrain(f, c);
            let g2 = m.restrict(f, c);
            let fc = m.and(f, c);
            let g1c = m.and(g1, c);
            let g2c = m.and(g2, c);
            assert_eq!(g1c, fc, "constrain disagrees on care set");
            assert_eq!(g2c, fc, "restrict disagrees on care set");
        }
    }

    #[test]
    #[should_panic(expected = "empty care set")]
    fn constrain_empty_care_panics() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        m.constrain(a, Bdd::FALSE);
    }
}
