//! A fast, non-cryptographic hasher for the unique table and operation
//! caches.
//!
//! The default `std` hasher (SipHash) is DoS-resistant but several times
//! slower than necessary for the hot hash-consing path of a BDD package.
//! This is a minimal re-implementation of the multiply–rotate–xor scheme
//! popularized by rustc's `FxHasher`; keys here are short tuples of `u32`s
//! produced internally, so DoS resistance is irrelevant.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the 64-bit Fx scheme (derived from the
/// golden ratio, as in FxHash/rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast `Hasher` for small integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 2u32, 3u32)));
    }

    #[test]
    fn distinguishes_tuples() {
        assert_ne!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(3u32, 2u32, 1u32)));
        assert_ne!(hash_of(&(0u32, 0u32, 1u32)), hash_of(&(0u32, 1u32, 0u32)));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential keys (the common case for node indices) should not all
        // collide modulo a power-of-two table size.
        let mut buckets = std::collections::HashSet::new();
        for i in 0u32..1024 {
            buckets.insert(hash_of(&i) % 64);
        }
        assert!(buckets.len() > 32, "poor spread: {}", buckets.len());
    }

    #[test]
    fn hashes_byte_slices() {
        assert_ne!(hash_of(&b"abc"[..]), hash_of(&b"abd"[..]));
        assert_eq!(hash_of(&b"abcdefghij"[..]), hash_of(&b"abcdefghij"[..]));
    }
}
