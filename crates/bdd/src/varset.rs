//! Interned variable sets.
//!
//! Quantification and relational products are memoized per `(function,
//! variable-set)` pair; interning the sets gives them a small integer
//! identity usable as a cache key, and lets callers build the set once per
//! protocol (e.g. "all primed variables") and reuse it across thousands of
//! image computations.

use crate::manager::{Manager, VarId};

/// Identity of an interned, sorted, duplicate-free set of variables.
///
/// Internally the set is stored as *levels* under the variable order that
/// was current at interning time; the id therefore carries the reorder
/// generation and is rejected (panic) if used after a [`Manager::sift`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarSetId {
    pub(crate) gen: u32,
    pub(crate) idx: u32,
}

impl Manager {
    /// Intern a set of variables; order and duplicates in the input are
    /// irrelevant. Returns a stable id for use with [`Manager::exists`],
    /// [`Manager::forall`] and [`Manager::and_exists`]. The id is valid
    /// until the next reordering.
    pub fn varset(&mut self, vars: &[VarId]) -> VarSetId {
        let mut levels: Vec<u32> = vars.iter().map(|v| self.perm[v.0 as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        let gen = self.order_generation;
        if let Some(&idx) = self.varset_ids.get(&levels) {
            return VarSetId { gen, idx };
        }
        let idx = u32::try_from(self.varsets.len()).expect("too many varsets");
        self.varsets.push(levels.clone());
        self.varset_ids.insert(levels, idx);
        VarSetId { gen, idx }
    }

    /// Validate a varset id against the current order generation.
    #[inline]
    pub(crate) fn check_varset(&self, id: VarSetId) {
        assert_eq!(
            id.gen, self.order_generation,
            "varset was interned before a reordering; re-intern it"
        );
    }

    /// The levels in an interned set (sorted ascending).
    pub fn varset_levels(&self, id: VarSetId) -> &[u32] {
        self.check_varset(id);
        &self.varsets[id.idx as usize]
    }

    /// The members of an interned set as [`VarId`]s.
    pub fn varset_vars(&self, id: VarSetId) -> Vec<VarId> {
        self.check_varset(id);
        self.varsets[id.idx as usize].iter().map(|&l| VarId(self.invperm[l as usize])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        let a = m.varset(&[vs[2], vs[0], vs[2]]);
        let b = m.varset(&[vs[0], vs[2]]);
        assert_eq!(a, b);
        assert_eq!(m.varset_levels(a), &[0, 2]);
        let c = m.varset(&[vs[1]]);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_set_is_fine() {
        let mut m = Manager::new();
        let e = m.varset(&[]);
        assert!(m.varset_levels(e).is_empty());
        assert!(m.varset_vars(e).is_empty());
    }
}
