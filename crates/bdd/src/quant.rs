//! Quantification and the fused relational product.
//!
//! `exists`/`forall` eliminate a set of variables; `and_exists` computes
//! `∃V. f ∧ g` without materializing the conjunction — the workhorse of
//! symbolic image/preimage computation (CUDD calls it `bddAndAbstract`).

use crate::budget::{expect_budget, BddError};
use crate::manager::{Bdd, Manager};
use crate::varset::VarSetId;

impl Manager {
    /// Existential quantification `∃ vars. f`.
    pub fn exists(&mut self, f: Bdd, vars: VarSetId) -> Bdd {
        expect_budget(self.try_exists(f, vars))
    }

    /// Fallible existential quantification `∃ vars. f`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_exists(&mut self, f: Bdd, vars: VarSetId) -> Result<Bdd, BddError> {
        self.check_varset(vars);
        self.exists_rec(f, vars, 0)
    }

    /// Universal quantification `∀ vars. f = ¬∃ vars. ¬f`.
    pub fn forall(&mut self, f: Bdd, vars: VarSetId) -> Bdd {
        expect_budget(self.try_forall(f, vars))
    }

    /// Fallible universal quantification.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_forall(&mut self, f: Bdd, vars: VarSetId) -> Result<Bdd, BddError> {
        let nf = self.try_not(f)?;
        let e = self.try_exists(nf, vars)?;
        self.try_not(e)
    }

    /// The relational product `∃ vars. f ∧ g`.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: VarSetId) -> Bdd {
        expect_budget(self.try_and_exists(f, g, vars))
    }

    /// Fallible relational product `∃ vars. f ∧ g`.
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_and_exists(&mut self, f: Bdd, g: Bdd, vars: VarSetId) -> Result<Bdd, BddError> {
        self.check_varset(vars);
        self.and_exists_rec(f, g, vars, 0)
    }

    /// Clustered relational product `∃(∪ schedule). ops[0] ∧ … ∧ ops[k]`
    /// with early quantification: `schedule[i]` is eliminated as soon as
    /// `ops[i]` has been conjoined, so intermediate results never carry
    /// variables no later operand mentions.
    ///
    /// The caller guarantees the schedule is *sound*: `schedule[i]` may
    /// only contain variables that occur in none of `ops[i+1..]`.
    /// Partitioned image/preimage computes such a schedule statically
    /// from the partitions' support sets. With a sound schedule the
    /// result equals quantifying the full conjunction at once, but the
    /// peak intermediate size is bounded by the largest *cluster*
    /// product instead of the full-width one.
    pub fn and_exists_many(&mut self, ops: &[Bdd], schedule: &[VarSetId]) -> Bdd {
        expect_budget(self.try_and_exists_many(ops, schedule))
    }

    /// Fallible clustered relational product. See
    /// [`Manager::and_exists_many`]; `ops` and `schedule` must have the
    /// same length (an empty product is `true`).
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_and_exists_many(
        &mut self,
        ops: &[Bdd],
        schedule: &[VarSetId],
    ) -> Result<Bdd, BddError> {
        assert_eq!(ops.len(), schedule.len(), "one quantification cube per operand");
        let Some((&first, rest)) = ops.split_first() else {
            return Ok(Bdd::TRUE);
        };
        let mut acc = self.try_exists(first, schedule[0])?;
        for (&op, &cube) in rest.iter().zip(&schedule[1..]) {
            if acc.is_false() {
                return Ok(Bdd::FALSE);
            }
            acc = self.try_and_exists(acc, op, cube)?;
        }
        Ok(acc)
    }

    /// Recursion for `exists`. `cursor` indexes into the sorted level list
    /// of `vars` and only ever moves forward; the memo key is `(f, vars)`
    /// because levels before the cursor are guaranteed to be above `f`'s
    /// top level, hence irrelevant to the result.
    fn exists_rec(&mut self, f: Bdd, vars: VarSetId, mut cursor: usize) -> Result<Bdd, BddError> {
        self.tick()?;
        if f.is_const() {
            return Ok(f);
        }
        let top = self.level(f);
        let levels = &self.varsets[vars.idx as usize];
        while cursor < levels.len() && levels[cursor] < top {
            cursor += 1;
        }
        if cursor == levels.len() {
            return Ok(f); // no quantified variable occurs in f
        }
        let key = (f.0, vars.idx);
        self.cache_lookups += 1;
        if let Some(&r) = self.exists_cache.get(&key) {
            self.cache_hits += 1;
            return Ok(Bdd(r));
        }
        let quantify_here = self.varsets[vars.idx as usize][cursor] == top;
        let n = self.node(f);
        let r = if quantify_here {
            let lo = self.exists_rec(Bdd(n.lo), vars, cursor + 1)?;
            if lo.is_true() {
                Bdd::TRUE
            } else {
                let hi = self.exists_rec(Bdd(n.hi), vars, cursor + 1)?;
                self.try_or(lo, hi)?
            }
        } else {
            let lo = self.exists_rec(Bdd(n.lo), vars, cursor)?;
            let hi = self.exists_rec(Bdd(n.hi), vars, cursor)?;
            self.mk_level(top, lo, hi)
        };
        self.exists_cache.insert(key, r.0);
        Ok(r)
    }

    fn and_exists_rec(
        &mut self,
        mut f: Bdd,
        mut g: Bdd,
        vars: VarSetId,
        mut cursor: usize,
    ) -> Result<Bdd, BddError> {
        self.tick()?;
        if f.is_false() || g.is_false() {
            return Ok(Bdd::FALSE);
        }
        if f.is_true() {
            return self.exists_rec(g, vars, cursor);
        }
        if g.is_true() || f == g {
            return self.exists_rec(f, vars, cursor);
        }
        // Conjunction is commutative: normalize for the cache.
        if f.0 > g.0 {
            std::mem::swap(&mut f, &mut g);
        }
        let top = self.level(f).min(self.level(g));
        {
            let levels = &self.varsets[vars.idx as usize];
            while cursor < levels.len() && levels[cursor] < top {
                cursor += 1;
            }
            if cursor == levels.len() {
                // No quantified variable remains in either operand.
                return self.try_and(f, g);
            }
        }
        let key = (f.0, g.0, vars.idx);
        self.cache_lookups += 1;
        if let Some(&r) = self.and_exists_cache.get(&key) {
            self.cache_hits += 1;
            return Ok(Bdd(r));
        }
        let quantify_here = self.varsets[vars.idx as usize][cursor] == top;
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let r = if quantify_here {
            let lo = self.and_exists_rec(f0, g0, vars, cursor + 1)?;
            if lo.is_true() {
                Bdd::TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, vars, cursor + 1)?;
                self.try_or(lo, hi)?
            }
        } else {
            let lo = self.and_exists_rec(f0, g0, vars, cursor)?;
            let hi = self.and_exists_rec(f1, g1, vars, cursor)?;
            self.mk_level(top, lo, hi)
        };
        self.and_exists_cache.insert(key, r.0);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::VarId;

    fn setup() -> (Manager, Vec<VarId>) {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        (m, vs)
    }

    #[test]
    fn exists_removes_variable() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.and(a, b);
        let set = m.varset(&[vs[0]]);
        let e = m.exists(f, set);
        assert_eq!(e, b);
    }

    #[test]
    fn exists_of_tautology_in_var() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let na = m.not(a);
        let f = m.or(a, na);
        let set = m.varset(&[vs[0]]);
        assert!(m.exists(f, set).is_true());
    }

    #[test]
    fn forall_dual() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.or(a, b);
        let set = m.varset(&[vs[0]]);
        // ∀a. a ∨ b  =  b
        assert_eq!(m.forall(f, set), b);
        // ∃a. a ∨ b  =  true
        assert!(m.exists(f, set).is_true());
    }

    #[test]
    fn exists_multiple_vars() {
        let (mut m, vs) = setup();
        let lits: Vec<Bdd> = vs.iter().map(|&v| m.var(v)).collect();
        let f = m.and_many(&lits);
        let set = m.varset(&vs);
        assert!(m.exists(f, set).is_true());
        let partial = m.varset(&[vs[0], vs[2]]);
        let e = m.exists(f, partial);
        let expect = m.and(lits[1], lits[3]);
        assert_eq!(e, expect);
    }

    #[test]
    fn and_exists_equals_exists_of_and() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let c = m.var(vs[2]);
        let nb = m.not(b);
        let f = m.xor(a, b);
        let g = {
            let t = m.and(nb, c);
            m.or(a, t)
        };
        let set = m.varset(&[vs[1]]);
        let fused = m.and_exists(f, g, set);
        let plain = {
            let conj = m.and(f, g);
            m.exists(conj, set)
        };
        assert_eq!(fused, plain);
    }

    #[test]
    fn and_exists_disjoint_quantifier() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.and(a, b);
        let set = m.varset(&[vs[3]]); // variable absent from f ∧ g
        let r = m.and_exists(f, f, set);
        assert_eq!(r, f);
    }

    #[test]
    fn and_exists_many_matches_single_shot_quantification() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let c = m.var(vs[2]);
        let d = m.var(vs[3]);
        // f mentions {a,b}, g mentions {b,c}, h mentions {c,d}: a can go
        // after f, b after g, c and d after h.
        let f = m.xor(a, b);
        let g = m.or(b, c);
        let h = m.iff(c, d);
        let sa = m.varset(&[vs[0]]);
        let sb = m.varset(&[vs[1]]);
        let scd = m.varset(&[vs[2], vs[3]]);
        let clustered = m.and_exists_many(&[f, g, h], &[sa, sb, scd]);
        let single = {
            let fg = m.and(f, g);
            let fgh = m.and(fg, h);
            let all = m.varset(&vs);
            m.exists(fgh, all)
        };
        assert_eq!(clustered, single);
        // Empty product is true; a lone operand is plain quantification.
        assert!(m.and_exists_many(&[], &[]).is_true());
        let lone = m.and_exists_many(&[f], &[sa]);
        let plain = m.exists(f, sa);
        assert_eq!(lone, plain);
    }

    #[test]
    fn quantifying_nothing_is_identity() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.iff(a, b);
        let empty = m.varset(&[]);
        assert_eq!(m.exists(f, empty), f);
        assert_eq!(m.forall(f, empty), f);
    }
}
