//! Graphviz (DOT) export for debugging and documentation figures.

use crate::hash::FxHashSet;
use crate::manager::{Bdd, Manager, TERMINAL_LEVEL};
use std::fmt::Write as _;

impl Manager {
    /// Render `f` as a Graphviz digraph. Solid edges are then-branches,
    /// dashed edges are else-branches; `labels(level)` names each variable
    /// (fall back to `v<level>` by passing `|l| format!("v{l}")`).
    pub fn to_dot(&self, f: Bdd, labels: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            let n = self.nodes[i as usize];
            if n.var == TERMINAL_LEVEL {
                let _ = writeln!(
                    out,
                    "  n{} [shape=box,label=\"{}\"];",
                    i,
                    if i == 1 { "1" } else { "0" }
                );
            } else {
                let _ = writeln!(out, "  n{} [shape=circle,label=\"{}\"];", i, labels(n.var));
                let _ = writeln!(out, "  n{} -> n{} [style=dashed];", i, n.lo);
                let _ = writeln!(out, "  n{} -> n{};", i, n.hi);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut m = Manager::new();
        let a = m.new_var();
        let b = m.new_var();
        let fa = m.var(a);
        let fb = m.var(b);
        let f = m.and(fa, fb);
        let dot = m.to_dot(f, |l| format!("x{l}"));
        assert!(dot.starts_with("digraph bdd"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=box"));
        // node count lines: every live node of f appears.
        assert_eq!(dot.matches("shape=circle").count(), 2);
    }

    #[test]
    fn dot_of_terminal() {
        let m = Manager::new();
        let dot = m.to_dot(Bdd::TRUE, |l| format!("v{l}"));
        assert!(dot.contains("label=\"1\""));
        assert!(!dot.contains("circle"));
    }
}
