//! Inspection of BDDs: evaluation, model counting, node counting, support
//! computation and cube (satisfying path) enumeration.

use crate::hash::{FxHashMap, FxHashSet};
use crate::manager::{Bdd, Manager, VarId, TERMINAL_LEVEL};

impl Manager {
    /// Evaluate `f` under a total assignment: `assignment[level]` is the
    /// value of the variable at `level`. Levels beyond the slice are taken
    /// as `false`.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            let bit = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = Bdd(if bit { n.hi } else { n.lo });
        }
        cur.is_true()
    }

    /// Number of satisfying assignments of `f` over the variable levels
    /// `0..nvars` (as an `f64`; exact for counts below 2^53).
    pub fn sat_count(&self, f: Bdd, nvars: u32) -> f64 {
        let mut memo: FxHashMap<u32, f64> = FxHashMap::default();
        self.sat_count_rec(f, &mut memo, nvars) * 2f64.powi(self.level_or(f, nvars) as i32)
    }

    fn level_or(&self, f: Bdd, nvars: u32) -> u32 {
        let l = self.level(f);
        if l == TERMINAL_LEVEL {
            nvars
        } else {
            l
        }
    }

    /// Count of solutions over levels `[level(f) .. nvars)`.
    fn sat_count_rec(&self, f: Bdd, memo: &mut FxHashMap<u32, f64>, nvars: u32) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f.0) {
            return c;
        }
        let n = self.node(f);
        let lo = Bdd(n.lo);
        let hi = Bdd(n.hi);
        let lf = self.level(f);
        let c_lo = self.sat_count_rec(lo, memo, nvars)
            * 2f64.powi((self.level_or(lo, nvars) - lf - 1) as i32);
        let c_hi = self.sat_count_rec(hi, memo, nvars)
            * 2f64.powi((self.level_or(hi, nvars) - lf - 1) as i32);
        let c = c_lo + c_hi;
        memo.insert(f.0, c);
        c
    }

    /// Number of satisfying assignments of `f` counting only the given
    /// variables, which must be sorted ascending and must cover `f`'s
    /// support (checked). Variables in the list but not in the support
    /// contribute a factor of 2 each, as usual.
    pub fn sat_count_over(&self, f: Bdd, vars: &[VarId]) -> f64 {
        debug_assert!(
            self.support(f).iter().all(|v| vars.contains(v)),
            "vars must cover the support of f"
        );
        // Order by the *current* levels so the positional gap arithmetic
        // below works under any variable order.
        let mut ordered: Vec<VarId> = vars.to_vec();
        ordered.sort_unstable_by_key(|v| self.level_of(*v));
        ordered.dedup();
        let mut memo: FxHashMap<u32, f64> = FxHashMap::default();
        self.sat_over_rec(f, &ordered, 0, &mut memo)
    }

    /// Solutions of `f` over `vars[from..]` (f's top level is ≥ vars[from]).
    fn sat_over_rec(
        &self,
        f: Bdd,
        vars: &[VarId],
        from: usize,
        memo: &mut FxHashMap<u32, f64>,
    ) -> f64 {
        // Position of f's top level within vars.
        let pos = match f.is_const() {
            true => vars.len(),
            false => {
                let top_var = self.node(f).var;
                from + vars[from..]
                    .iter()
                    .position(|v| v.0 == top_var)
                    .expect("support not covered by vars")
            }
        };
        let free = (pos - from) as i32;
        let inner = if f.is_false() {
            0.0
        } else if f.is_true() {
            1.0
        } else if let Some(&c) = memo.get(&f.0) {
            c
        } else {
            let n = self.node(f);
            let c = self.sat_over_rec(Bdd(n.lo), vars, pos + 1, memo)
                + self.sat_over_rec(Bdd(n.hi), vars, pos + 1, memo);
            memo.insert(f.0, c);
            c
        };
        inner * 2f64.powi(free)
    }

    /// The cofactor `f[lits]`: substitute the given constant values for
    /// the given variables. `lits` must be sorted by level. Linear in the
    /// size of `f`; uses a per-call memo (no persistent cache pollution).
    pub fn cofactor(&mut self, f: Bdd, lits: &[(VarId, bool)]) -> Bdd {
        crate::budget::expect_budget(self.try_cofactor(f, lits))
    }

    /// Fallible variant of [`Manager::cofactor`].
    #[must_use = "a budget violation is reported through the Result"]
    pub fn try_cofactor(&mut self, f: Bdd, lits: &[(VarId, bool)]) -> Result<Bdd, crate::BddError> {
        // Order by the current levels so the merge-walk below is valid
        // under any variable order.
        let mut ordered: Vec<(VarId, bool)> = lits.to_vec();
        ordered.sort_unstable_by_key(|&(v, _)| self.level_of(v));
        let mut memo: FxHashMap<u32, u32> = FxHashMap::default();
        self.cofactor_rec(f, &ordered, &mut memo)
    }

    fn cofactor_rec(
        &mut self,
        f: Bdd,
        lits: &[(VarId, bool)],
        memo: &mut FxHashMap<u32, u32>,
    ) -> Result<Bdd, crate::BddError> {
        self.tick()?;
        if f.is_const() || lits.is_empty() {
            return Ok(f);
        }
        let top = self.level(f);
        // Skip literals above f.
        let mut lits = lits;
        while let Some(&(v, b)) = lits.first() {
            let lv = self.level_of(v);
            if lv < top {
                lits = &lits[1..];
            } else if lv == top {
                let n = self.node(f);
                let child = Bdd(if b { n.hi } else { n.lo });
                return self.cofactor_rec(child, &lits[1..], memo);
            } else {
                break;
            }
        }
        if lits.is_empty() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f.0) {
            return Ok(Bdd(r));
        }
        let n = self.node(f);
        let lo = self.cofactor_rec(Bdd(n.lo), lits, memo)?;
        let hi = self.cofactor_rec(Bdd(n.hi), lits, memo)?;
        let r = self.mk(n.var, lo, hi);
        memo.insert(f.0, r.0);
        Ok(r)
    }

    /// Number of distinct DAG nodes in `f`, terminals included (CUDD's
    /// `Cudd_DagSize` convention). This is the paper's space metric.
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if seen.insert(i) {
                let n = self.nodes[i as usize];
                if n.var != TERMINAL_LEVEL {
                    stack.push(n.lo);
                    stack.push(n.hi);
                }
            }
        }
        seen.len()
    }

    /// Total distinct DAG nodes across several functions (shared nodes
    /// counted once) — used for the "total program size" series of the
    /// paper's space figures where the program is a set of group relations.
    pub fn node_count_many(&self, fs: &[Bdd]) -> usize {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = fs.iter().map(|f| f.0).collect();
        while let Some(i) = stack.pop() {
            if seen.insert(i) {
                let n = self.nodes[i as usize];
                if n.var != TERMINAL_LEVEL {
                    stack.push(n.lo);
                    stack.push(n.hi);
                }
            }
        }
        seen.len()
    }

    /// The set of variables `f` actually depends on, sorted ascending.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut vars: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![f.0];
        while let Some(i) = stack.pop() {
            if seen.insert(i) {
                let n = self.nodes[i as usize];
                if n.var != TERMINAL_LEVEL {
                    vars.insert(n.var);
                    stack.push(n.lo);
                    stack.push(n.hi);
                }
            }
        }
        let mut out: Vec<VarId> = vars.into_iter().map(VarId).collect();
        out.sort_unstable();
        out
    }

    /// One satisfying partial assignment (a cube) of `f`, as
    /// `(variable, polarity)` pairs sorted by level, or `None` if `f` is
    /// unsatisfiable. Variables not mentioned are don't-cares.
    pub fn pick_cube(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            // Prefer the lo branch when it is satisfiable, hi otherwise;
            // at least one must be (ROBDDs have no all-false internal node).
            if n.lo != 0 {
                cube.push((VarId(n.var), false));
                cur = Bdd(n.lo);
            } else {
                cube.push((VarId(n.var), true));
                cur = Bdd(n.hi);
            }
        }
        Some(cube)
    }

    /// Iterate every cube (path to the `true` terminal) of `f`. Each item
    /// is a sorted list of `(variable, polarity)` pairs; unlisted variables
    /// are don't-cares. The number of cubes can be exponential — callers
    /// use this only over small local-variable predicates (guard
    /// extraction).
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter { mgr: self, stack: if f.is_false() { vec![] } else { vec![(f, Vec::new())] } }
    }
}

/// Iterator over the cubes of a BDD; see [`Manager::cubes`].
pub struct CubeIter<'a> {
    mgr: &'a Manager,
    stack: Vec<(Bdd, Vec<(VarId, bool)>)>,
}

impl<'a> Iterator for CubeIter<'a> {
    type Item = Vec<(VarId, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((f, prefix)) = self.stack.pop() {
            if f.is_true() {
                return Some(prefix);
            }
            if f.is_false() {
                continue;
            }
            let n = self.mgr.node(f);
            let mut hi_prefix = prefix.clone();
            hi_prefix.push((VarId(n.var), true));
            let mut lo_prefix = prefix;
            lo_prefix.push((VarId(n.var), false));
            // Push hi first so cubes come out in lexicographic (lo-first)
            // order, which makes extraction output deterministic.
            self.stack.push((Bdd(n.hi), hi_prefix));
            self.stack.push((Bdd(n.lo), lo_prefix));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Vec<VarId>) {
        let mut m = Manager::new();
        let vs = m.new_vars(4);
        (m, vs)
    }

    #[test]
    fn eval_basic() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.xor(a, b);
        assert!(!m.eval(f, &[false, false]));
        assert!(m.eval(f, &[true, false]));
        assert!(m.eval(f, &[false, true]));
        assert!(!m.eval(f, &[true, true]));
    }

    #[test]
    fn sat_count_matches_truth_table() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let c = m.var(vs[2]);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // over 3 vars: a∧b (2 with c free... ) brute force:
        let mut count = 0;
        for bits in 0..8u32 {
            let asg = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            if m.eval(f, &asg) {
                count += 1;
            }
        }
        assert_eq!(m.sat_count(f, 3), count as f64);
        assert_eq!(m.sat_count(f, 4), (count * 2) as f64);
        assert_eq!(m.sat_count(Bdd::TRUE, 4), 16.0);
        assert_eq!(m.sat_count(Bdd::FALSE, 4), 0.0);
    }

    #[test]
    fn sat_count_over_subset() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let c = m.var(vs[2]);
        let f = m.and(a, c);
        assert_eq!(m.sat_count_over(f, &[vs[0], vs[2]]), 1.0);
        assert_eq!(m.sat_count_over(f, &[vs[0], vs[1], vs[2]]), 2.0);
    }

    #[test]
    fn node_count_shared() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let f = m.xor(a, b);
        // xor over 2 vars: 1 root + 2 nodes for b + 2 terminals = 5
        assert_eq!(m.node_count(f), 5);
        let g = m.iff(a, b);
        // f and g share the b-level nodes and terminals.
        let both = m.node_count_many(&[f, g]);
        assert!(both < m.node_count(f) + m.node_count(g));
    }

    #[test]
    fn support_is_exact() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let d = m.var(vs[3]);
        let f = m.or(a, d);
        assert_eq!(m.support(f), vec![vs[0], vs[3]]);
        assert!(m.support(Bdd::TRUE).is_empty());
    }

    #[test]
    fn pick_cube_satisfies() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let nb = m.nvar(vs[1]);
        let f = m.and(a, nb);
        let cube = m.pick_cube(f).unwrap();
        let mut asg = vec![false; 4];
        for (v, val) in cube {
            asg[v.0 as usize] = val;
        }
        assert!(m.eval(f, &asg));
        assert!(m.pick_cube(Bdd::FALSE).is_none());
    }

    #[test]
    fn cubes_cover_exactly_the_function() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let c = m.var(vs[2]);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // Rebuild f from its cubes and compare.
        let mut rebuilt = Bdd::FALSE;
        for cube in m.cubes(f).collect::<Vec<_>>() {
            let lits: Vec<Bdd> = cube.iter().map(|&(v, val)| m.literal(v, val)).collect();
            let cb = m.and_many(&lits);
            rebuilt = m.or(rebuilt, cb);
        }
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn cofactor_substitutes_constants() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let c = m.var(vs[2]);
        let ab = m.and(a, b);
        let f = m.or(ab, c); // (a ∧ b) ∨ c
                             // f[a := 1] = b ∨ c
        let f_a1 = m.cofactor(f, &[(vs[0], true)]);
        let b_or_c = m.or(b, c);
        assert_eq!(f_a1, b_or_c);
        // f[a := 0, c := 0] = false
        let f_00 = m.cofactor(f, &[(vs[0], false), (vs[2], false)]);
        assert!(f_00.is_false());
        // Cofactor by a variable outside the support is the identity.
        assert_eq!(m.cofactor(f, &[(vs[3], true)]), f);
        // Constants are fixed points.
        assert!(m.cofactor(Bdd::TRUE, &[(vs[0], false)]).is_true());
    }

    #[test]
    fn cofactor_equals_exists_of_conjunction() {
        let (mut m, vs) = setup();
        let a = m.var(vs[0]);
        let b = m.var(vs[1]);
        let c = m.var(vs[2]);
        let x = m.xor(a, b);
        let f = m.iff(x, c);
        for val in [false, true] {
            let direct = m.cofactor(f, &[(vs[1], val)]);
            let lit = m.literal(vs[1], val);
            let conj = m.and(f, lit);
            let set = m.varset(&[vs[1]]);
            let via_exists = m.exists(conj, set);
            assert_eq!(direct, via_exists);
        }
    }

    #[test]
    fn cubes_of_constants() {
        let (m, _vs) = setup();
        assert_eq!(m.cubes(Bdd::FALSE).count(), 0);
        let all: Vec<_> = m.cubes(Bdd::TRUE).collect();
        assert_eq!(all, vec![Vec::new()]);
    }
}
